//! Extension experiment: sensitivity to memory service-time variability.
//!
//! The paper's evaluation treats memory service as uniform transaction
//! time units. Real DRAM is not uniform — a row-buffer conflict costs
//! several times a hit. This experiment re-runs the Fig 6 methodology
//! under three memory models:
//!
//! * `flat(1)` — the paper's abstraction (one transaction time unit),
//! * `flat(4)` — uniform but slower service,
//! * `DRAM` — the open-row model (4-cycle hits, 12-cycle conflicts,
//!   8 banks), which injects *service-time jitter*,
//! * `DRAM closed-page` — the real-time controller policy: every access
//!   pays the full activate cost, restoring service-time determinism.
//!
//! Workload utilization is expressed in channel time, so offered load is
//! comparable across models (the generator target is divided by the
//! model's mean service time).

use crate::runner::InterconnectKind;
use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_baselines::{AxiIcRt, BlueTree, GsmTree, SlotPolicy};
use bluescale_interconnect::system::System;
use bluescale_interconnect::Interconnect;
use bluescale_mem::DramConfig;
use bluescale_noc::NocMemoryInterconnect;
use bluescale_rt::task::TaskSet;
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

/// A memory model under test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryModel {
    /// Label for the report.
    pub name: &'static str,
    /// The DRAM timing configuration.
    pub dram: DramConfig,
    /// Mean service cycles (for load normalization).
    pub mean_service: f64,
}

/// The three models of the experiment.
pub fn models() -> Vec<MemoryModel> {
    vec![
        MemoryModel {
            name: "flat(1)",
            dram: DramConfig::flat(1),
            mean_service: 1.0,
        },
        MemoryModel {
            name: "flat(4)",
            dram: DramConfig::flat(4),
            mean_service: 4.0,
        },
        MemoryModel {
            name: "DRAM 4/12",
            dram: DramConfig::default(),
            // Sequential per-task streams hit often; assume ~2/3 hits.
            mean_service: 4.0 * (2.0 / 3.0) + 12.0 / 3.0,
        },
        MemoryModel {
            name: "DRAM closed-page",
            dram: DramConfig::closed_page(),
            // Every access pays the full activate cost — deterministic.
            mean_service: 12.0,
        },
    ]
}

fn build(kind: InterconnectKind, sets: &[TaskSet], dram: DramConfig) -> Box<dyn Interconnect> {
    let n = sets.len();
    match kind {
        InterconnectKind::AxiIcRt => Box::new(AxiIcRt::with_dram(n, 8, dram)),
        InterconnectKind::BlueTree => Box::new(BlueTree::with_dram(n, 2, dram)),
        InterconnectKind::BlueTreeSmooth => Box::new(BlueTree::smooth_with_dram(n, 2, dram)),
        InterconnectKind::GsmTreeTdm => Box::new(GsmTree::with_dram(n, SlotPolicy::Tdm, dram)),
        InterconnectKind::GsmTreeFbsp => {
            let weights: Vec<f64> = sets.iter().map(|s| s.utilization().max(1e-4)).collect();
            Box::new(GsmTree::with_dram(n, SlotPolicy::Fbsp(weights), dram))
        }
        InterconnectKind::BlueScale => {
            let mut config = BlueScaleConfig::for_clients(n);
            config.work_conserving = true;
            config.dram = Some(dram);
            Box::new(BlueScaleInterconnect::new(config, sets).expect("valid build"))
        }
        InterconnectKind::LegacyNoc => Box::new(NocMemoryInterconnect::with_dram(n, dram)),
    }
}

/// Configuration of the sensitivity sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramConfigSweep {
    /// Clients.
    pub clients: usize,
    /// Trials per (model, interconnect) pair.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for DramConfigSweep {
    fn default() -> Self {
        Self {
            clients: 16,
            trials: 30,
            horizon: 40_000,
            seed: 0xD2A8,
        }
    }
}

/// One result row: miss ratio per interconnect under one memory model.
#[derive(Debug, Clone, PartialEq)]
pub struct DramRow {
    /// Memory model label.
    pub model: &'static str,
    /// Mean miss ratio per interconnect, in [`InterconnectKind::EXTENDED`] order.
    pub miss_ratio: Vec<f64>,
}

/// Runs the sweep: for each memory model, Fig 6-style trials with load
/// normalized to ~60 % of the channel capacity.
pub fn run(config: &DramConfigSweep) -> Vec<DramRow> {
    let mut master = SimRng::seed_from(config.seed);
    models()
        .into_iter()
        .map(|model| {
            let mut miss = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            for _ in 0..config.trials {
                let mut rng = master.fork();
                let synthetic = SyntheticConfig {
                    util_lo: 0.55 / model.mean_service,
                    util_hi: 0.65 / model.mean_service,
                    ..SyntheticConfig::fig6(config.clients)
                };
                let sets = generate(&synthetic, &mut rng);
                for (i, kind) in InterconnectKind::EXTENDED.into_iter().enumerate() {
                    let ic = build(kind, &sets, model.dram);
                    let mut system = System::new(ic, &sets);
                    let m = system.run(config.horizon);
                    miss[i].push(m.miss_ratio());
                }
            }
            DramRow {
                model: model.name,
                miss_ratio: miss.iter().map(OnlineStats::mean).collect(),
            }
        })
        .collect()
}

/// Renders the sweep as a markdown table.
pub fn render(config: &DramConfigSweep, rows: &[DramRow]) -> String {
    let mut s = format!(
        "# Extension: DRAM service-time sensitivity ({} clients, {} trials, \
         ~60% channel load)\n\nDeadline miss ratio per memory model:\n\n",
        config.clients, config.trials
    );
    s.push_str("| Memory model |");
    for k in InterconnectKind::EXTENDED {
        s.push_str(&format!(" {} |", k.name()));
    }
    s.push_str("\n|---|");
    for _ in InterconnectKind::EXTENDED {
        s.push_str("---:|");
    }
    s.push('\n');
    for row in rows {
        s.push_str(&format!("| {} |", row.model));
        for m in &row.miss_ratio {
            s.push_str(&format!(" {:.1}% |", 100.0 * m));
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> DramConfigSweep {
        DramConfigSweep {
            clients: 8,
            trials: 2,
            horizon: 10_000,
            seed: 3,
        }
    }

    #[test]
    fn covers_all_models_and_interconnects() {
        let rows = run(&tiny());
        assert_eq!(rows.len(), 4);
        assert!(rows.iter().all(|r| r.miss_ratio.len() == 7));
    }

    #[test]
    fn mean_service_estimates_are_ordered() {
        let m = models();
        assert!(m[0].mean_service < m[1].mean_service);
        assert!(m[1].mean_service <= m[2].mean_service + 3.0);
        assert_eq!(m[3].mean_service, 12.0);
    }

    #[test]
    fn render_mentions_models() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("flat(1)"));
        assert!(text.contains("DRAM 4/12"));
    }
}
