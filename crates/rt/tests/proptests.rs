//! Randomized property tests of the analysis crate's cross-module
//! invariants.
//!
//! The container has no network access to a crates registry, so instead of
//! `proptest` these properties are exercised with a fixed-seed [`SimRng`]
//! sweep: every case is deterministic and reproducible by seed, and a
//! failure message names the case index so it can be replayed.

use bluescale_rt::demand::dbf_set;
use bluescale_rt::edp::{is_schedulable_edp, EdpResource};
use bluescale_rt::fixed_priority::{
    deadline_monotonic_order, is_schedulable_fp, rbf, response_time,
};
use bluescale_rt::schedulability::is_schedulable;
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_rt::validate::edf_meets_deadlines;
use bluescale_sim::rng::SimRng;

const CASES: usize = 300;

/// A random task mirroring the old proptest strategy: `T ∈ [2, 150)`,
/// `C = min(raw, T)` with `raw ∈ [1, 30)`.
fn random_task(rng: &mut SimRng, id: u32) -> Task {
    let period = rng.range_u64(2, 150);
    let raw_wcet = rng.range_u64(1, 30);
    Task::new(id, period, raw_wcet.min(period)).expect("valid parameters")
}

/// A random task set of 1–3 tasks with `U ≤ 1` (rejection-sampled, like the
/// old `prop_filter_map`).
fn random_taskset(rng: &mut SimRng) -> TaskSet {
    loop {
        let n = rng.range_usize(1, 4);
        let tasks = (0..n).map(|i| random_task(rng, i as u32)).collect();
        if let Ok(set) = TaskSet::new(tasks) {
            return set;
        }
    }
}

/// A random periodic resource with `Π ∈ [1, 40)`, `1 ≤ Θ ≤ Π`.
fn random_resource(rng: &mut SimRng) -> PeriodicResource {
    let period = rng.range_u64(1, 40);
    let budget = rng.range_u64(1, period + 1);
    PeriodicResource::new(period, budget).expect("b ≤ p")
}

/// EDF is optimal on a periodic resource: anything the fixed-priority test
/// admits, the EDF test must admit too.
#[test]
fn fp_admission_implies_edf_admission() {
    let mut rng = SimRng::seed_from(0xA11CE);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let r = random_resource(&mut rng);
        if is_schedulable_fp(&set, &r) {
            assert!(
                is_schedulable(&set, &r),
                "case {case}: FP admitted {set:?} on {r:?} but EDF rejected"
            );
        }
    }
}

/// FP admission also implies the worst-case-supply EDF simulation passes
/// (EDF dominates any fixed-priority order at run time).
#[test]
fn fp_admission_implies_simulation_passes() {
    let mut rng = SimRng::seed_from(0xB0B);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let r = random_resource(&mut rng);
        if is_schedulable_fp(&set, &r) {
            let horizon = set
                .hyperperiod()
                .unwrap_or(10_000)
                .saturating_mul(2)
                .min(100_000);
            assert!(
                edf_meets_deadlines(&set, &r, horizon),
                "case {case}: simulation missed a deadline for {set:?} on {r:?}"
            );
        }
    }
}

/// The request bound function is monotone in t and starts at the task's own
/// WCET.
#[test]
fn rbf_is_monotone() {
    let mut rng = SimRng::seed_from(0xC0FFEE);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let t = rng.range_u64(1, 300);
        let ordered = deadline_monotonic_order(&set);
        for i in 0..ordered.len() {
            assert!(
                rbf(&ordered, i, t + 1) >= rbf(&ordered, i, t),
                "case {case}: rbf not monotone at t={t}"
            );
            assert!(
                rbf(&ordered, i, 1) >= ordered[i].wcet(),
                "case {case}: rbf(1) below own WCET"
            );
        }
    }
}

/// Response times respect priority order economics: on the same resource a
/// task never responds faster than the supply time of its own WCET, and an
/// admitted response never exceeds the deadline.
#[test]
fn response_time_at_least_supply_of_own_wcet() {
    let mut rng = SimRng::seed_from(0xD00D);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let r = random_resource(&mut rng);
        let ordered = deadline_monotonic_order(&set);
        for i in 0..ordered.len() {
            if let Some(rt) = response_time(&ordered, i, &r) {
                assert!(
                    r.sbf(rt) >= ordered[i].wcet(),
                    "case {case}: sbf(rt) below WCET"
                );
                assert!(
                    rt <= ordered[i].deadline(),
                    "case {case}: admitted response beyond deadline"
                );
            }
        }
    }
}

/// Growing the budget never hurts: FP admission is monotone in Θ.
#[test]
fn fp_admission_monotone_in_budget() {
    let mut rng = SimRng::seed_from(0xE66);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let period = rng.range_u64(2, 30);
        let mut admitted = false;
        for budget in 1..=period {
            let r = PeriodicResource::new(period, budget).expect("valid");
            let now = is_schedulable_fp(&set, &r);
            assert!(
                !admitted || now,
                "case {case}: admission lost when Θ grew to {budget}"
            );
            admitted = now;
        }
    }
}

/// For identical (Π, Θ), the EDP supply dominates the periodic supply for
/// every deadline choice, and therefore admits at least as much.
#[test]
fn edp_supply_dominates_periodic() {
    let mut rng = SimRng::seed_from(0xF00);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let r = random_resource(&mut rng);
        let t = rng.range_u64(0, 400);
        // Tightest EDP deadline Δ = Θ.
        let edp = EdpResource::new(r.period(), r.budget(), r.budget()).expect("Θ ≤ Θ ≤ Π");
        assert!(
            edp.sbf(t) >= r.sbf(t),
            "case {case}: EDP supply below periodic at t={t}"
        );
        if is_schedulable(&set, &r) {
            assert!(
                is_schedulable_edp(&set, &edp),
                "case {case}: periodic admitted {set:?} on {r:?} but EDP rejected"
            );
        }
    }
}

/// EDP sbf is monotone and unit-rate bounded for random triples.
#[test]
fn edp_sbf_well_formed() {
    let mut rng = SimRng::seed_from(0x1DEA);
    for case in 0..CASES {
        let period = rng.range_u64(1, 40);
        let budget_frac = rng.range_u64(1, 40);
        let deadline_frac = rng.range_u64(0, 40);
        let t = rng.range_u64(0, 300);
        let budget = (budget_frac % period).max(1);
        let deadline = budget + deadline_frac % (period - budget + 1);
        let r = EdpResource::new(period, budget, deadline).expect("constructed valid");
        assert!(r.sbf(t + 1) >= r.sbf(t), "case {case}: sbf not monotone");
        assert!(
            r.sbf(t + 1) - r.sbf(t) <= 1,
            "case {case}: sbf rate above 1"
        );
        assert!(r.sbf(t) <= t, "case {case}: sbf above identity");
    }
}

/// dbf never exceeds rbf-style total demand: the EDF demand in an interval
/// is at most every task's synchronous releases.
#[test]
fn dbf_bounded_by_release_counts() {
    let mut rng = SimRng::seed_from(0x2BAD);
    for case in 0..CASES {
        let set = random_taskset(&mut rng);
        let t = rng.range_u64(0, 500);
        let upper: u64 = set
            .iter()
            .map(|task| (t / task.period() + 1) * task.wcet())
            .sum();
        assert!(
            dbf_set(&set, t) <= upper,
            "case {case}: dbf exceeds synchronous release bound at t={t}"
        );
    }
}
