//! Fast fault-injection smoke check for `scripts/check.sh`.
//!
//! Drives one BlueScale system through all five fault classes at once
//! with the guard layer fully armed, then asserts request conservation:
//! every accepted request either completed exactly once, never left the
//! client backlog, or is still tracked as guard-outstanding (in flight
//! or lost past the retry limit). Exits non-zero on violation.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin fault_smoke`

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::guard::{GuardConfig, QuarantinePolicy, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_sim::fault::{FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x0051_40CE;
const HORIZON: u64 = 6_000;

fn main() {
    let mut rng = SimRng::seed_from(SEED);
    let sets = generate(&SyntheticConfig::fig6(16), &mut rng);
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, &sets).expect("valid workload");
    let mut sys = System::new(Box::new(ic), &sets);

    let mut plan = FaultPlan::new(SEED);
    plan.push(
        FaultKind::RogueDemand {
            client: 0,
            factor: 4,
        },
        FaultWindow::new(500, 3_000),
    )
    .push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(1_000, 1_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 1,
            port: 0,
        },
        FaultWindow::new(1_500, 1_700),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(0, 4_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 2,
        },
        FaultWindow::new(0, 4_000),
    );
    sys.set_fault_plan(plan);
    // Timeout 256 sits below the fig6 deadline windows on purpose: the
    // smoke wants aggressive re-injection under dropped responses, so it
    // installs through the unchecked path.
    sys.set_guards_unchecked(GuardConfig {
        deadline_miss_detection: true,
        watchdog: Some(WatchdogConfig {
            timeout: 256,
            max_retries: 3,
        }),
        quarantine: Some(QuarantinePolicy {
            miss_threshold: 1_000_000,
        }),
    });

    let total = sys.run(HORIZON);
    let outstanding = sys.guard_outstanding() as u64;
    let merged = sys.merged_registry();
    let injected = merged.counter(ComponentId::System, Counter::FaultsInjected);
    let dropped = merged.counter(ComponentId::System, Counter::ResponsesDropped);
    let retries = merged.counter(ComponentId::System, Counter::Retries);

    println!(
        "fault smoke: issued={} completed={} backlog={} outstanding={} \
         faults_injected={} dropped={} retries={}",
        total.issued(),
        total.completed(),
        total.backlog(),
        outstanding,
        injected,
        dropped,
        retries,
    );

    assert!(injected > 0, "fault plan never fired");
    assert!(dropped > 0, "drop-response fault never fired");
    assert_eq!(
        total.issued(),
        total.completed() + total.backlog() + outstanding,
        "request conservation violated: issued != completed + backlog + outstanding"
    );
    println!("fault smoke: conservation holds");
}
