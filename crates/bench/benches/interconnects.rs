//! Criterion micro-benchmarks of the simulated interconnects: per-cycle
//! stepping cost and end-to-end trial throughput for each architecture.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bluescale_bench::runner::{build, run_trial, InterconnectKind};
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

fn light_sets(n: usize) -> Vec<TaskSet> {
    (0..n)
        .map(|_| TaskSet::new(vec![Task::new(0, 400, 2).expect("valid")]).expect("valid"))
        .collect()
}

fn bench_step_cycle(c: &mut Criterion) {
    let mut group = c.benchmark_group("step_1k_cycles_16_clients");
    let sets = light_sets(16);
    for kind in InterconnectKind::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| {
                b.iter_batched(
                    || build(kind, &sets),
                    |mut ic| {
                        for now in 0..1000 {
                            ic.step(black_box(now));
                        }
                        ic
                    },
                    criterion::BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

fn bench_full_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("trial_5k_cycles_loaded");
    group.sample_size(10);
    let mut rng = SimRng::seed_from(1234);
    let sets = generate(&SyntheticConfig::fig6(16), &mut rng);
    for kind in [InterconnectKind::BlueScale, InterconnectKind::AxiIcRt] {
        group.bench_with_input(
            BenchmarkId::from_parameter(kind.name()),
            &kind,
            |b, &kind| b.iter(|| run_trial(kind, black_box(&sets), 5_000)),
        );
    }
    group.finish();
}

fn bench_mesh_step(c: &mut Criterion) {
    use bluescale_noc::mesh::Packet;
    use bluescale_noc::{Mesh, MeshConfig, NodeId};
    c.bench_function("noc_mesh_9x9_step_loaded", |b| {
        b.iter_batched(
            || {
                let mut mesh: Mesh<u64> = Mesh::new(MeshConfig {
                    width: 9,
                    height: 9,
                    buffer_capacity: 4,
                });
                for i in 0..64u64 {
                    let src = NodeId::new((i % 8 + 1) as usize, (i / 8 + 1) as usize % 9);
                    let _ = mesh.inject(
                        src,
                        Packet {
                            dest: NodeId::new(0, 0),
                            payload: i,
                        },
                    );
                }
                mesh
            },
            |mut mesh| {
                for _ in 0..100 {
                    mesh.step();
                }
                mesh
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

fn bench_bluescale_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("bluescale_build");
    for n in [16usize, 64] {
        let sets = light_sets(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &sets, |b, sets| {
            b.iter(|| build(InterconnectKind::BlueScale, black_box(sets)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_step_cycle,
    bench_full_trial,
    bench_mesh_step,
    bench_bluescale_scaling
);
criterion_main!(benches);
