//! Sharded deterministic parallel simulation over the SoA core.
//!
//! The serial harness ([`System`](bluescale_interconnect::system::System)
//! over [`BlueScaleInterconnect`]) advances the whole tree one cycle at a
//! time. At 65k–1M clients the per-cycle client loop and leaf sweeps
//! dominate wall-clock, and they are embarrassingly parallel across the
//! root's subtrees: a request born under level-1 SE `q` never touches the
//! state of any other subtree until it reaches the root's port `q`, and a
//! response re-enters subtree `q` only through the root's demultiplexer.
//!
//! [`ShardedSystem`] exploits exactly that cut (conservative PDES, DESIGN.md
//! §14). Each level-1 subtree becomes a *shard* — a private
//! [`SoaCore`] covering global depths `1..levels` plus the subtree's traffic
//! generators and metrics delta buffers — advanced by a pool of workers.
//! The coordinator keeps the root SE, the memory controller and the
//! service log, and runs the root's GEDF argmin over the shards' boundary
//! offers between two barrier-fenced parallel regions per cycle. The §11
//! lookahead contract (`next_event_hint`) makes the root-arbitration
//! barrier conservative-safe: no shard can produce a boundary event
//! earlier than its reported hint, so jumping idle stretches in closed
//! form remains exact.
//!
//! The serial engine stays the bit-identity oracle:
//! `tests/shard_differential.rs` pins counts, per-client counts, per-SE
//! forwards, per-port grants/replenishments and full sample sequences
//! identical at 1/2/4/8 workers across dense, sparse, work-conserving,
//! churn and fault scenarios. Worker count is a pure wall-clock knob — the
//! schedule below never depends on it.
//!
//! Not supported in sharded mode (use the serial harness): detail
//! recording (typed events are inherently sequential) and runtime guards.
//!
//! Worker panics are contained: a panic inside a shard advance is caught
//! at the shard boundary, surfaced as [`ShardError::WorkerPanicked`], and
//! the rest of the run continues on the serial engine over the surviving
//! state (`ShardFallbacks` counts the demotion). A degraded run completes
//! but is *not* bit-identical — the interrupted cycle was half-applied.

use crate::network::{BlueScaleInterconnect, BuildError, CompositionReport};
use crate::soa::SoaCore;
use crate::topology::BlueScaleConfig;
use bluescale_interconnect::admission::ChurnPlan;
use bluescale_interconnect::client::TrafficGenerator;
use bluescale_interconnect::metrics::RunMetrics;
use bluescale_interconnect::{ClientId, MemoryRequest, MemoryResponse, ServiceEvent};
use bluescale_mem::{DramConfig, GrantCandidate, MemoryController, MemoryPolicy};
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::{FaultKind, FaultPlan};
use bluescale_sim::metrics::{ComponentId, Counter, Event, MetricsRegistry, SampleKind};
use bluescale_sim::next_event::jump_target;
use bluescale_sim::Cycle;
use bluescale_telemetry::Pipeline;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, PoisonError};

/// A contained shard-worker failure. A panicking worker used to propagate
/// through the scoped-thread join and abort the whole run; it is now caught
/// at the shard boundary, the threaded engine is retired for the remainder
/// of the run, and the serial SoA path drives the surviving state instead
/// (best-effort: the interrupted cycle may have been half-applied, so a
/// degraded run is *not* bit-identical to an undisturbed one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardError {
    /// A worker panicked while advancing `shard` at cycle `at`.
    WorkerPanicked {
        /// The level-1 subtree whose advance panicked.
        shard: usize,
        /// Simulation cycle of the interrupted advance.
        at: Cycle,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::WorkerPanicked { shard, at } => write!(
                f,
                "shard {shard} worker panicked at cycle {at}; \
                 continuing on the serial engine (degraded, not bit-identical)"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// Sentinel for "no worker failure" in [`Ctrl::failed`].
const NO_FAILURE: usize = usize::MAX;

/// Locks a shard, tolerating poison: a contained worker panic poisons the
/// shard's mutex, and both the failure bookkeeping and the serial fallback
/// must still reach the surviving state. The data is a plain simulation
/// core — no invariant depends on the interrupted critical section having
/// completed, beyond the documented loss of bit-identity.
fn lock_shard(shard: &Mutex<Shard>) -> MutexGuard<'_, Shard> {
    shard.lock().unwrap_or_else(PoisonError::into_inner)
}

/// One level-1 subtree: a private slice of the tree plus everything a
/// worker needs to advance it without touching shared state.
///
/// Local coordinates: the shard's core has `levels - 1` levels; its local
/// SE `(d, o)` is the global SE `(d + 1, q·branch^d + o)`. Fault-plan
/// queries use global coordinates (the plan is written against the full
/// tree), metrics deltas are recorded locally and remapped on flush.
struct Shard {
    /// Which root port this subtree feeds (= the level-1 SE's order).
    q: usize,
    branch: usize,
    /// Levels in the *local* core (= global levels - 1).
    levels: usize,
    /// First global client id owned by this subtree.
    client_lo: usize,
    core: SoaCore,
    clients: Vec<TrafficGenerator>,
    /// Read-only clone of the fault plan for worker-side queries
    /// (multipliers, bursts, stuck masks — all stateless lookups).
    faults: FaultPlan,
    have_faults: bool,
    /// Harness-side counters (Issued/Rejected/FaultsInjected), merged into
    /// the coordinator's registry on flush.
    harness_delta: MetricsRegistry,
    /// Fabric-side counters (Enqueued, per-SE fault tallies), merged into
    /// the coordinator's fabric registry on flush.
    fabric_delta: MetricsRegistry,
    /// Responses delivered by this subtree's leaves this cycle, in local
    /// leaf order; the coordinator drains shards in `q` order, which is
    /// exactly the serial engine's global leaf order.
    ready: Vec<MemoryResponse>,
    /// This cycle's boundary offer: the local root's grant, destined for
    /// root port `q`. Pushed by the coordinator after the region-B barrier.
    offer: Option<MemoryRequest>,
    /// Test probe: panic inside the next `advance_front` whose cycle is
    /// `>= panic_at` (fire-once). Exercises the worker-panic containment
    /// path without needing a genuinely buggy kernel.
    panic_at: Option<Cycle>,
}

impl Shard {
    /// Region A: the cycle's client phase plus the subtree's response
    /// demultiplexers — everything that happens before root arbitration
    /// and that touches only this shard's state.
    fn advance_front(&mut self, now: Cycle) {
        if self.panic_at.is_some_and(|at| at <= now) {
            self.panic_at = None;
            panic!("injected shard-worker panic (test probe) at cycle {now}");
        }
        // 1. Client phase (the harness's loop, restricted to this
        //    subtree). Each client owns a dedicated leaf port, so clients
        //    are independent and the per-shard split is exact.
        for client in &mut self.clients {
            if self.have_faults {
                let owner = client.client();
                let factor = self.faults.demand_multiplier(owner, now);
                client.on_cycle_with_factor(now, factor);
                let burst = self.faults.burst_at(owner, now);
                if burst > 0 && client.inject_burst(now, burst) > 0 {
                    self.harness_delta
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.harness_delta
                        .inc(ComponentId::Client(owner), Counter::FaultsInjected);
                }
            } else {
                client.on_cycle(now);
            }
            if let Some(req) = client.take() {
                let owner = req.client;
                let local = owner as usize - self.client_lo;
                match self.core.try_accept(
                    self.levels - 1,
                    local / self.branch,
                    local % self.branch,
                    req,
                ) {
                    Ok(()) => {
                        self.fabric_delta
                            .inc(ComponentId::Client(owner), Counter::Enqueued);
                        self.harness_delta.inc(ComponentId::System, Counter::Issued);
                        self.harness_delta
                            .inc(ComponentId::Client(owner), Counter::Issued);
                    }
                    Err(rejected) => {
                        client.give_back(rejected);
                        self.harness_delta
                            .inc(ComponentId::System, Counter::Rejected);
                        self.harness_delta
                            .inc(ComponentId::Client(owner), Counter::Rejected);
                    }
                }
            }
        }
        // 2. Response path, bottom-up: leaves deliver, inner demuxes route
        //    one response per cycle toward the owning client. Global
        //    depths `levels..1` are local depths `levels-1..0`; the global
        //    depth-0 (root) leg runs coordinator-side after the barrier,
        //    so its push lands here next cycle — the serial order, where
        //    the root demux is processed last.
        for depth in (0..self.levels).rev() {
            if self.core.responses_at_level(depth) == 0 {
                continue;
            }
            for order in 0..self.branch.pow(depth as u32) {
                if depth == self.levels - 1 {
                    if let Some(request) = self.core.pop_response(depth, order) {
                        self.ready.push(MemoryResponse {
                            request,
                            completed_at: now,
                        });
                    }
                } else if let Some(request) = self.core.pop_response(depth, order) {
                    let leaf_order = (request.client as usize - self.client_lo) / self.branch;
                    let child_order =
                        leaf_order / self.branch.pow((self.levels - 2 - depth) as u32);
                    debug_assert_eq!(
                        child_order / self.branch.max(1),
                        order,
                        "response routed through the wrong subtree"
                    );
                    self.core.accept_response(depth + 1, child_order, request);
                }
            }
        }
    }

    /// Region B: the subtree's arbitration sweep. `root_ready` is the
    /// coordinator's post-arbitration `can_accept` verdict for root port
    /// `q`; the local root's grant becomes this cycle's boundary offer.
    fn advance_back(&mut self, now: Cycle, root_ready: bool) {
        debug_assert!(self.offer.is_none(), "boundary offer was not collected");
        self.offer = self.step_local(0, 0, now, root_ready);
        // Deeper levels forward one request per SE toward their parents
        // (global depths `2..levels` — the parents are all shard-local).
        for depth in 1..self.levels {
            for order in 0..self.branch.pow(depth as u32) {
                let parent_order = order / self.branch;
                let port = order % self.branch;
                let ready = self.core.can_accept(depth - 1, parent_order, port);
                if let Some(request) = self.step_local(depth, order, now, ready) {
                    self.core
                        .try_accept(depth - 1, parent_order, port, request)
                        .expect("parent advertised a free slot");
                }
            }
        }
        // Server countdowns for the whole subtree, fused into one sweep.
        self.core.tick_all();
    }

    /// One batched arbitration of local SE `(depth, order)`, with the
    /// fault mask looked up under *global* coordinates and tallied into
    /// the shard's fabric delta.
    fn step_local(
        &mut self,
        depth: usize,
        order: usize,
        now: Cycle,
        ready: bool,
    ) -> Option<MemoryRequest> {
        if self.have_faults {
            let gd = depth + 1;
            let go = self.q * self.branch.pow(depth as u32) + order;
            let mask = self.faults.stuck_mask(gd, go, self.branch, now);
            if mask.is_some() {
                self.fabric_delta
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.fabric_delta.inc(
                    ComponentId::Se {
                        depth: gd,
                        order: go,
                    },
                    Counter::FaultsInjected,
                );
            }
            self.core
                .step_se_batched(depth, order, now, ready, mask.as_deref())
        } else {
            self.core.step_se_batched(depth, order, now, ready, None)
        }
    }

    /// Earliest next release across this shard's clients (fast-forward).
    fn next_client_event(&self, now: Cycle) -> Cycle {
        self.clients
            .iter()
            .map(|c| c.next_event(now))
            .min()
            .unwrap_or(Cycle::MAX)
    }

    fn pending(&self) -> usize {
        self.core.buffered() + self.core.responses_queued() + self.ready.len()
    }
}

/// Everything the coordinator owns: the root SE, the memory side, the
/// registries and the master plans. Split from the shard vector so the
/// coordinator can hold `&mut` state while workers hold the shard locks.
struct Coordinator {
    /// Admission control and composition analysis only — its legacy
    /// elements are never stepped (`soa_core` forced off).
    analysis: BlueScaleInterconnect,
    config: BlueScaleConfig,
    branch: usize,
    num_clients: usize,
    clients_per_shard: usize,
    /// A one-level core holding just the root SE (global `(0,0)`).
    root: SoaCore,
    controller: MemoryController<MemoryRequest>,
    /// Memory-scheduling policy at the root seam — the coordinator-owned
    /// replica of [`BlueScaleConfig::mem_policy`]. Fed absolute cycles
    /// only, so it stays in lock-step with the serial engines.
    policy: Box<dyn MemoryPolicy>,
    service_log: Vec<ServiceEvent>,
    /// Harness-side registry (System/Client aggregates + churn verdicts).
    registry: MetricsRegistry,
    /// Fabric-side registry — the sharded replica of the serial
    /// interconnect's internal one.
    fabric: MetricsRegistry,
    /// Master harness-side plan (client fault announcements, FF bounds).
    faults: FaultPlan,
    /// Master interconnect-side plan; owns the stateful drop-response
    /// bookkeeping, so coordinator-side queries only.
    ic_faults: FaultPlan,
    churn: ChurnPlan,
    now: Cycle,
    fast_forward: bool,
    ff_jumps: u64,
    ff_skipped: u64,
}

/// Shared coordination state for one threaded run.
struct Ctrl {
    barrier: Barrier,
    now: AtomicU64,
    stop: AtomicBool,
    /// Root-port `can_accept` verdicts, written by the coordinator after
    /// root arbitration, read by workers in region B. The barrier between
    /// write and read provides the happens-before edge; `Relaxed` is
    /// enough.
    root_ready: Vec<AtomicBool>,
    /// First failed shard (`NO_FAILURE` = healthy). Written by the first
    /// worker to catch a panic; once set, every worker skips its shard
    /// work but keeps hitting the barriers, so the coordinator can never
    /// deadlock on a dead participant.
    failed: AtomicUsize,
}

impl Coordinator {
    /// Pre-cycle serial work: due reconfigurations, then client-side
    /// fault-window announcements — exactly the serial harness prologue.
    fn pre_phase(&mut self, shards: &[Mutex<Shard>], now: Cycle) {
        if !self.churn.is_empty() {
            while let Some(spec) = self.churn.take_due(now) {
                let tasks = spec.kind.requested_tasks();
                self.apply_reconfiguration(shards, spec.client, &tasks, now);
            }
        }
        if !self.faults.is_empty() {
            self.announce_client_faults(now);
        }
    }

    /// Mid-cycle serial work, between the two parallel regions: the root
    /// demultiplexer, memory completion, root GEDF arbitration and the
    /// memory issue — the serial engine's phases 1 (depth 0 leg), 2 and 3.
    /// Writes the post-arbitration per-port `can_accept` verdicts into
    /// `root_ready`.
    fn mid_phase(&mut self, shards: &[Mutex<Shard>], now: Cycle, root_ready: &mut [bool]) {
        let have_faults = !self.ic_faults.is_empty();
        // Root demux: route one response per cycle into the owning
        // subtree's local root demux (global depth-1 SE `q` *is* shard
        // `q`'s local `(0,0)`). The shard already ran its response sweep
        // this cycle, so the push is observed next cycle — serial order.
        if self.root.responses_at_level(0) > 0 {
            if let Some(request) = self.root.pop_response(0, 0) {
                let q = request.client as usize / self.clients_per_shard;
                lock_shard(&shards[q]).core.accept_response(0, 0, request);
            }
        }
        // Memory completions enter the root's demux — unless a
        // drop-response fault swallows the completion on the way back.
        if let Some(done) = self.controller.poll_complete(now) {
            if have_faults && self.ic_faults.should_drop_response(done.client, now) {
                self.fabric
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.fabric
                    .inc(ComponentId::System, Counter::ResponsesDropped);
                self.fabric
                    .inc(ComponentId::Client(done.client), Counter::ResponsesDropped);
            } else {
                self.root.accept_response(0, 0, done);
            }
        }
        // Root arbitration feeds the memory controller. The root's port
        // queues still hold last cycle's boundary offers — pushes happen
        // in the post phase, after this cycle's arbitration, exactly as
        // the serial phase-4 ordering has it.
        let ready = self.controller.can_accept();
        let passive = self.policy.is_passive();
        let mut mask: Option<Vec<bool>> = None;
        if have_faults {
            mask = self.ic_faults.stuck_mask(0, 0, self.branch, now);
            if mask.is_some() {
                self.fabric
                    .inc(ComponentId::System, Counter::FaultsInjected);
                self.fabric.inc(
                    ComponentId::Se { depth: 0, order: 0 },
                    Counter::FaultsInjected,
                );
            }
        }
        // An active policy widens the stuck mask before arbitration, just
        // like the serial engines: deferred candidates stay queued in the
        // root's port buffers, so conservation and the boundary protocol
        // are untouched.
        if !passive && ready {
            let mut candidates: Vec<GrantCandidate> = Vec::with_capacity(self.branch);
            for port in 0..self.branch {
                if mask.as_ref().is_some_and(|m| m[port]) {
                    continue;
                }
                if let Some(head) = self.root.peek_head(0, 0, port) {
                    let (bank, _) = self.controller.decode(head.addr);
                    candidates.push(GrantCandidate {
                        port,
                        client: head.client,
                        bank,
                        deadline: head.deadline,
                    });
                }
            }
            if !candidates.is_empty() {
                let defer = self.policy.defer_mask(now, &candidates);
                if defer != 0 {
                    let m = mask.get_or_insert_with(|| vec![false; self.branch]);
                    for (i, c) in candidates.iter().enumerate() {
                        if defer & (1 << i) != 0 {
                            m[c.port] = true;
                            self.fabric
                                .inc(ComponentId::Memory, Counter::PolicyDeferred);
                        }
                    }
                }
            }
        }
        let granted = self.root.step_se_batched(0, 0, now, ready, mask.as_deref());
        if let Some(request) = granted {
            let (addr, client, deadline) = (request.addr, request.client, request.deadline);
            let extra = if have_faults {
                let (bank, _) = self.controller.decode(addr);
                let extra = self.ic_faults.dram_jitter(bank, now);
                if extra > 0 {
                    self.fabric
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.fabric
                        .inc(ComponentId::Bank(bank), Counter::FaultsInjected);
                }
                extra
            } else {
                0
            };
            let class = self.policy.service_class(client);
            let duration = self
                .controller
                .accept_classed(request, addr, now, extra, class);
            if !passive {
                let (bank, _) = self.controller.decode(addr);
                self.policy.on_issue(now, client, bank);
            }
            self.service_log.push(ServiceEvent {
                at: now,
                deadline,
                duration,
            });
        }
        // Each boundary offer targets its own dedicated root port, so the
        // verdicts can be taken for all ports at once.
        for (q, slot) in root_ready.iter_mut().enumerate() {
            *slot = self.root.can_accept(0, 0, q);
        }
    }

    /// Post-cycle serial work: collect boundary offers into the root's
    /// ports (shard order = port order), account delivered responses
    /// (shard order = the serial engine's global leaf order), tick the
    /// root's servers, advance time.
    fn post_phase(&mut self, shards: &[Mutex<Shard>], _now: Cycle) {
        for shard in shards {
            let mut s = lock_shard(shard);
            let q = s.q;
            if let Some(request) = s.offer.take() {
                self.root
                    .try_accept(0, 0, q, request)
                    .expect("root advertised a free slot");
            }
            for mut resp in s.ready.drain(..) {
                resp.request.blocked_cycles = blocking_in_window(
                    &self.service_log,
                    resp.request.issued_at,
                    resp.completed_at,
                    resp.request.deadline,
                );
                self.record_response(&resp);
            }
        }
        self.root.tick_all();
        self.now += 1;
    }

    /// Replica of the serial harness's reconfiguration path, with the
    /// engine programming routed to the root/shard cores. Admission is
    /// decided by the analysis interconnect on cloned tables; a rejection
    /// writes nothing anywhere.
    fn apply_reconfiguration(
        &mut self,
        shards: &[Mutex<Shard>],
        client: ClientId,
        tasks: &TaskSet,
        now: Cycle,
    ) -> bool {
        if client as usize >= self.num_clients {
            self.registry
                .inc(ComponentId::System, Counter::AdmissionRejected);
            return false;
        }
        match self.analysis.commit_reconfiguration(client as usize, tasks) {
            Some(trial) => {
                let mut transition_cycles = 0;
                for (depth, order, ifaces) in &trial {
                    transition_cycles += if *depth == 0 {
                        self.root.program_se_deferred(0, 0, ifaces)
                    } else {
                        let per = self.branch.pow((*depth - 1) as u32);
                        shards[order / per]
                            .lock()
                            .unwrap()
                            .core
                            .program_se_deferred(*depth - 1, order % per, ifaces)
                    };
                }
                // Mirror the serial fabric's gauge (the analysis registry
                // itself is never merged).
                self.fabric.set_gauge(
                    ComponentId::System,
                    "root_bandwidth",
                    self.analysis.composition().root_bandwidth,
                );
                let q = client as usize / self.clients_per_shard;
                {
                    let mut s = lock_shard(&shards[q]);
                    let local = client as usize - s.client_lo;
                    s.clients[local].set_tasks(tasks, now);
                }
                for component in [ComponentId::System, ComponentId::Client(client)] {
                    self.registry.inc(component, Counter::Admitted);
                    self.registry.inc(component, Counter::Reconfigurations);
                    if transition_cycles > 0 {
                        self.registry
                            .add(component, Counter::TransitionCycles, transition_cycles);
                    }
                }
                true
            }
            None => {
                for component in [ComponentId::System, ComponentId::Client(client)] {
                    self.registry.inc(component, Counter::AdmissionRejected);
                }
                false
            }
        }
    }

    /// One fault-activation counter per client-side window opening this
    /// cycle (the serial harness's announcement, minus detail events).
    fn announce_client_faults(&mut self, now: Cycle) {
        for spec in self.faults.specs() {
            if let FaultKind::RogueDemand { client, .. } = spec.kind {
                if spec.window.start == now && spec.window.contains(now) {
                    self.registry
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.registry
                        .inc(ComponentId::Client(client), Counter::FaultsInjected);
                }
            }
        }
    }

    /// The serial harness's response accounting, verbatim.
    fn record_response(&mut self, response: &MemoryResponse) {
        let latency = response.latency() as f64;
        let blocking = response.request.blocked_cycles as f64;
        let window = response
            .request
            .deadline
            .saturating_sub(response.request.issued_at)
            .max(1);
        let normalized = latency / window as f64;
        let missed = response.missed_deadline();
        for component in [
            ComponentId::System,
            ComponentId::Client(response.request.client),
        ] {
            self.registry.inc(component, Counter::Completed);
            self.registry
                .sample(component, SampleKind::Latency, latency);
            self.registry
                .sample(component, SampleKind::Blocking, blocking);
            self.registry
                .sample(component, SampleKind::NormalizedResponse, normalized);
            if missed {
                self.registry.inc(component, Counter::Missed);
            }
        }
    }

    /// The split-core replica of the serial `next_event_hint` (§11): busy
    /// anywhere → step now; otherwise the memory completion bounds the
    /// jump, tightened by interconnect-side fault windows.
    fn next_event_hint(&self, shards: &[Mutex<Shard>], now: Cycle) -> Option<Cycle> {
        if !self.root.is_quiescent() {
            return Some(now);
        }
        for shard in shards {
            let s = lock_shard(shard);
            if !s.core.is_quiescent() || !s.ready.is_empty() {
                return Some(now);
            }
        }
        let mut next = self
            .controller
            .next_completion()
            .map_or(Cycle::MAX, |done| done.max(now));
        if !self.ic_faults.is_empty() {
            next = next.min(self.ic_faults.next_activity(now));
        }
        if !self.policy.is_passive() {
            // Mirrors the serial hint: conservative bound, see §16.
            next = next.min(self.policy.next_unblock(now));
        }
        Some(next)
    }

    /// The cycle to jump to when every layer promises nothing happens
    /// before it (the serial `fast_forward_target`, minus guards).
    fn fast_forward_target(&self, shards: &[Mutex<Shard>], horizon: Cycle) -> Option<Cycle> {
        let now = self.now;
        let hint = self.next_event_hint(shards, now)?;
        if hint <= now {
            return None; // busy fabric: veto before the O(clients) scan
        }
        let mut reports = vec![hint];
        if !self.faults.is_empty() {
            reports.push(self.faults.next_activity(now));
        }
        if !self.churn.is_empty() {
            reports.push(self.churn.next_activity(now));
        }
        for shard in shards {
            reports.push(lock_shard(shard).next_client_event(now));
        }
        jump_target(now, horizon, reports)
    }

    /// Replays `delta` provably-idle cycles in closed form on the root
    /// and every shard core.
    fn advance_idle(&mut self, shards: &[Mutex<Shard>], delta: Cycle) {
        self.root.advance_idle(delta);
        for shard in shards {
            lock_shard(shard).core.advance_idle(delta);
        }
    }

    /// Folds every batched tally into the two registries: memory-controller
    /// counters, the root core's deltas (identity coordinates), each shard
    /// core's deltas (remapped to global coordinates) and the per-shard
    /// harness/fabric delta registries.
    fn flush(&mut self, shards: &[Mutex<Shard>]) {
        self.controller.record_metrics(&mut self.fabric);
        self.root.flush_metrics(&mut self.fabric);
        for shard in shards {
            let mut s = lock_shard(shard);
            let (q, branch) = (s.q, s.branch);
            s.core
                .flush_metrics_mapped(&mut self.fabric, |depth, order| {
                    (depth + 1, q * branch.pow(depth as u32) + order)
                });
            self.registry.merge(&s.harness_delta);
            self.fabric.merge(&s.fabric_delta);
            s.harness_delta = MetricsRegistry::new();
            s.fabric_delta = MetricsRegistry::new();
        }
    }
}

/// Blocking latency of a request that waited during `[issued, done)`:
/// total channel time granted to later-deadline requests in that window
/// (the serial harness's measure, over the coordinator's service log).
fn blocking_in_window(log: &[ServiceEvent], issued: Cycle, done: Cycle, deadline: Cycle) -> u64 {
    let start = log.partition_point(|e| e.at < issued);
    log[start..]
        .iter()
        .take_while(|e| e.at < done)
        .filter(|e| e.deadline > deadline)
        .map(|e| e.duration)
        .sum()
}

/// A deterministic parallel twin of the serial harness: same inputs, same
/// seed, bit-identical outputs at any worker count (see the module docs).
pub struct ShardedSystem {
    coord: Coordinator,
    shards: Vec<Mutex<Shard>>,
    workers: usize,
    /// A contained worker failure. Once set, every subsequent advance runs
    /// on the serial engine (`ShardFallbacks` counts the demotion).
    error: Option<ShardError>,
    /// Attached telemetry pipeline, flushed at span boundaries on the
    /// coordinator (never inside a worker or the per-cycle loop).
    telemetry: Option<Pipeline>,
}

impl ShardedSystem {
    /// Builds the sharded system: one shard per level-1 subtree, a
    /// one-level root core, and an analysis-only interconnect for
    /// admission control. `workers` is clamped to the shard count (the
    /// root's branching factor); it never affects results.
    ///
    /// # Errors
    ///
    /// Propagates [`BuildError`] from interface selection, exactly as the
    /// serial constructor does.
    ///
    /// # Panics
    ///
    /// Panics when the topology has fewer than two levels — a single-SE
    /// tree has no level-1 subtrees to shard; use the serial harness.
    pub fn new(
        config: BlueScaleConfig,
        task_sets: &[TaskSet],
        workers: usize,
    ) -> Result<Self, BuildError> {
        let mut acfg = config.clone();
        acfg.soa_core = false;
        let analysis = BlueScaleInterconnect::new(acfg, task_sets)?;
        Ok(Self::with_analysis(config, analysis, task_sets, workers))
    }

    /// Builds the sharded system around a prebuilt analysis interconnect,
    /// skipping interface selection. Construction at large client counts
    /// is dominated by the per-SE selection math, which depends only on
    /// the workload — a sweep comparing worker counts on one workload
    /// pays it once and clones the analysis per call.
    ///
    /// `analysis` should be built with [`BlueScaleConfig::soa_core`]
    /// disabled (it serves admission control only; [`Self::new`] does
    /// exactly that).
    ///
    /// # Panics
    ///
    /// Panics if `analysis` was sized for a different client count than
    /// `task_sets`, if `workers` is zero, or on a single-level topology
    /// (a single-SE tree has no level-1 subtrees to shard; use the
    /// serial harness).
    pub fn with_analysis(
        config: BlueScaleConfig,
        analysis: BlueScaleInterconnect,
        task_sets: &[TaskSet],
        workers: usize,
    ) -> Self {
        assert!(workers >= 1, "at least one worker is required");
        assert_eq!(
            analysis.config().num_clients,
            task_sets.len(),
            "analysis interconnect was sized for a different client count"
        );
        let levels = config.levels();
        assert!(
            levels >= 2,
            "sharded simulation needs >= 2 tree levels (more clients than `branch`); \
             use the serial harness for single-SE topologies"
        );
        let branch = config.branch;
        let interfaces = &analysis.composition().interfaces;

        let mut rcfg = config.clone();
        rcfg.num_clients = branch;
        debug_assert_eq!(rcfg.levels(), 1);
        let root = SoaCore::new(&rcfg, &[interfaces[0].clone()]);

        let clients_per_shard = branch.pow((levels - 1) as u32);
        let mut scfg = config.clone();
        scfg.num_clients = clients_per_shard;
        debug_assert_eq!(scfg.levels(), levels - 1);
        let num_clients = task_sets.len();
        let shards = (0..branch)
            .map(|q| {
                let sub: Vec<Vec<Vec<_>>> = (0..levels - 1)
                    .map(|d| {
                        let per = branch.pow(d as u32);
                        (0..per)
                            .map(|o| interfaces[d + 1][q * per + o].clone())
                            .collect()
                    })
                    .collect();
                let client_lo = q * clients_per_shard;
                let hi = ((q + 1) * clients_per_shard).min(num_clients);
                let clients = (client_lo.min(hi)..hi)
                    .map(|i| TrafficGenerator::new(i as ClientId, &task_sets[i]))
                    .collect();
                Mutex::new(Shard {
                    q,
                    branch,
                    levels: levels - 1,
                    client_lo,
                    core: SoaCore::new(&scfg, &sub),
                    clients,
                    faults: FaultPlan::default(),
                    have_faults: false,
                    harness_delta: MetricsRegistry::new(),
                    fabric_delta: MetricsRegistry::new(),
                    ready: Vec::new(),
                    offer: None,
                    panic_at: None,
                })
            })
            .collect();
        let controller = MemoryController::new(
            config
                .dram
                .unwrap_or_else(|| DramConfig::flat(config.memory_service_cycles)),
        );
        let mut fabric = MetricsRegistry::new();
        fabric.set_gauge(
            ComponentId::System,
            "root_bandwidth",
            analysis.composition().root_bandwidth,
        );
        Self {
            coord: Coordinator {
                analysis,
                branch,
                num_clients,
                clients_per_shard,
                root,
                controller,
                policy: config.mem_policy.build(),
                service_log: Vec::new(),
                registry: MetricsRegistry::new(),
                fabric,
                faults: FaultPlan::default(),
                ic_faults: FaultPlan::default(),
                churn: ChurnPlan::new(0),
                now: 0,
                fast_forward: true,
                ff_jumps: 0,
                ff_skipped: 0,
                config,
            },
            shards,
            workers: workers.min(branch).max(1),
            error: None,
            telemetry: None,
        }
    }

    /// The contained worker failure, if any advance so far panicked in a
    /// worker ([`ShardError::WorkerPanicked`]). A degraded system keeps
    /// running — on the serial engine — and keeps this as the permanent
    /// record of the demotion.
    pub fn shard_error(&self) -> Option<&ShardError> {
        self.error.as_ref()
    }

    /// Test probe: make `shard`'s worker panic at the first region-A
    /// advance whose cycle is `>= at` (fire-once). Exercises the
    /// containment path; not part of the public API surface.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    #[doc(hidden)]
    pub fn inject_worker_panic(&mut self, shard: usize, at: Cycle) {
        assert!(shard < self.shards.len(), "shard out of range");
        self.shards[shard]
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
            .panic_at = Some(at);
    }

    /// Installs a fault plan: the stateful master stays coordinator-side,
    /// each worker gets a read-only clone for its stateless queries.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        let mut ic = plan.clone();
        ic.reset_state();
        self.coord.ic_faults = ic;
        for shard in &mut self.shards {
            let s = shard.get_mut().unwrap_or_else(PoisonError::into_inner);
            let mut copy = plan.clone();
            copy.reset_state();
            s.have_faults = !copy.is_empty();
            s.faults = copy;
        }
        self.coord.faults = plan;
    }

    /// Installs a churn plan (applied-state reset, like the serial setter).
    pub fn set_churn_plan(&mut self, mut plan: ChurnPlan) {
        plan.reset_state();
        self.coord.churn = plan;
    }

    /// Enables or disables next-event fast-forward (on by default;
    /// results are bit-identical either way).
    pub fn set_fast_forward(&mut self, on: bool) {
        self.coord.fast_forward = on;
    }

    /// Idle jumps taken so far.
    pub fn fast_forward_jumps(&self) -> u64 {
        self.coord.ff_jumps
    }

    /// Cycles skipped in closed form so far.
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.coord.ff_skipped
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.coord.now
    }

    /// Effective worker count (clamped to the shard count).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The (global) configuration.
    pub fn config(&self) -> &BlueScaleConfig {
        &self.coord.config
    }

    /// The admission-control composition report.
    pub fn composition(&self) -> &CompositionReport {
        self.coord.analysis.composition()
    }

    /// The harness-level registry (System and Client aggregates). Exact
    /// after a `run`/flush; per-shard deltas may be pending mid-run.
    pub fn registry(&self) -> &MetricsRegistry {
        &self.coord.registry
    }

    /// The fabric registry (per-SE/port/bank tallies under global
    /// coordinates), flushed — the sharded replica of the serial
    /// interconnect's internal registry.
    pub fn fabric_metrics(&mut self) -> &MetricsRegistry {
        self.coord.flush(&self.shards);
        &self.coord.fabric
    }

    /// Harness + fabric in one snapshot, flushed — mirrors the serial
    /// `System::merged_registry`.
    pub fn merged_registry(&mut self) -> MetricsRegistry {
        self.coord.flush(&self.shards);
        let mut merged = self.coord.registry.clone();
        merged.merge(&self.coord.fabric);
        merged
    }

    /// Per-SE forwarded-request counters, `[depth][order]` under global
    /// coordinates — mirrors the serial `forward_counts`.
    pub fn forward_counts(&mut self) -> Vec<Vec<u64>> {
        self.coord.flush(&self.shards);
        let levels = self.coord.config.levels();
        (0..levels)
            .map(|depth| {
                (0..self.coord.branch.pow(depth as u32))
                    .map(|order| {
                        self.coord
                            .fabric
                            .counter(ComponentId::Se { depth, order }, Counter::Forwarded)
                    })
                    .collect()
            })
            .collect()
    }

    /// Metrics broken down per client, from the harness registry's
    /// per-client slices (exact after a `run`).
    pub fn per_client_metrics(&self) -> Vec<RunMetrics> {
        (0..self.coord.num_clients)
            .map(|c| RunMetrics::from_registry(&self.coord.registry, ComponentId::Client(c as u32)))
            .collect()
    }

    /// Requests currently inside the fabric or the memory controller.
    pub fn pending(&self) -> usize {
        let in_service = usize::from(!self.coord.controller.can_accept());
        let root = self.coord.root.buffered() + self.coord.root.responses_queued();
        root + in_service
            + self
                .shards
                .iter()
                .map(|s| lock_shard(s).pending())
                .sum::<usize>()
    }

    /// Runs until `horizon` cycles have elapsed, then accounts
    /// still-pending client-side requests exactly as the serial harness
    /// does. Returns the aggregate metrics.
    pub fn run(&mut self, horizon: Cycle) -> RunMetrics {
        self.advance_to(horizon);
        let coord = &mut self.coord;
        let mut metrics = RunMetrics::from_registry(&coord.registry, ComponentId::System);
        for shard in &self.shards {
            let mut s = lock_shard(shard);
            for client in &mut s.clients {
                while let Some(req) = client.take() {
                    metrics.on_issued();
                    metrics.on_incomplete(req.deadline, horizon);
                    let owner = ComponentId::Client(req.client);
                    coord.registry.inc(owner, Counter::Issued);
                    coord.registry.inc(owner, Counter::Backlog);
                    if req.deadline < horizon {
                        coord.registry.inc(owner, Counter::Missed);
                    }
                }
            }
        }
        metrics
    }

    /// Steps (or fast-forwards) up to `horizon` without end-of-run
    /// accounting, then flushes all batched tallies. With telemetry
    /// attached the span is chunked at flush boundaries; chunking only
    /// moves where the coordinator pauses, never what it computes, so
    /// results stay bit-identical streaming on or off.
    pub fn advance_to(&mut self, horizon: Cycle) {
        if self.telemetry.is_none() {
            self.advance_span(horizon);
            return;
        }
        while self.coord.now < horizon {
            let due = self.telemetry.as_ref().expect("checked above").next_flush();
            let bound = horizon.min(due.max(self.coord.now + 1));
            self.advance_span(bound);
            self.flush_telemetry_due();
        }
    }

    /// Attaches a telemetry pipeline, aligning its first flush one period
    /// past the current cycle. Returns the previously attached pipeline.
    pub fn attach_telemetry(&mut self, mut pipeline: Pipeline) -> Option<Pipeline> {
        pipeline.align(self.coord.now);
        self.telemetry.replace(pipeline)
    }

    /// Detaches and returns the telemetry pipeline, if any.
    pub fn detach_telemetry(&mut self) -> Option<Pipeline> {
        self.telemetry.take()
    }

    /// Whether a telemetry pipeline is attached.
    pub fn telemetry_attached(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Epochs flushed by the attached pipeline (0 when detached).
    pub fn telemetry_epochs(&self) -> u64 {
        self.telemetry.as_ref().map_or(0, Pipeline::epochs_flushed)
    }

    /// Final telemetry flush + sink finalization. Call after the run's
    /// end-of-run accounting so the stream's tail matches the final
    /// registries. Idempotent; no-op when detached.
    pub fn finish_telemetry(&mut self) {
        self.coord.flush(&self.shards);
        let coord = &self.coord;
        if let Some(pipe) = self.telemetry.as_mut() {
            let sources = [("harness", &coord.registry), ("fabric", &coord.fabric)];
            pipe.finish(coord.now, &sources);
        }
    }

    /// Flushes one telemetry epoch if the pipeline's boundary has been
    /// reached. Runs on the coordinator between spans; extraction is
    /// read-only on the (already flushed) registries.
    pub fn flush_telemetry_due(&mut self) {
        let coord = &self.coord;
        if let Some(pipe) = self.telemetry.as_mut() {
            if coord.now < pipe.next_flush() {
                return;
            }
            let sources = [("harness", &coord.registry), ("fabric", &coord.fabric)];
            pipe.flush(coord.now, &sources);
        }
    }

    /// One uninterrupted span: serial-or-threaded advance plus the
    /// coordinator flush that makes the registries exact.
    fn advance_span(&mut self, horizon: Cycle) {
        if self.workers <= 1 || self.error.is_some() {
            self.advance_serial(horizon);
        } else {
            self.advance_threaded(horizon);
            // A contained worker panic leaves the run short of the
            // horizon: finish it on the serial engine. Degraded, not
            // bit-identical — the interrupted cycle was half-applied.
            if self.error.is_some() && self.coord.now < horizon {
                self.advance_serial(horizon);
            }
        }
        self.coord.flush(&self.shards);
    }

    /// Single-worker path: the identical schedule, run inline. Used both
    /// as the 1-worker mode and as the reference the threaded path must
    /// match (they share every phase implementation).
    fn advance_serial(&mut self, horizon: Cycle) {
        const ATTEMPT_BACKOFF: Cycle = 16;
        let coord = &mut self.coord;
        let shards = &self.shards;
        let mut root_ready = vec![false; coord.branch];
        let mut next_attempt = coord.now;
        while coord.now < horizon {
            if coord.fast_forward && coord.now >= next_attempt {
                if let Some(target) = coord.fast_forward_target(shards, horizon) {
                    let delta = target - coord.now;
                    coord.advance_idle(shards, delta);
                    coord.ff_jumps += 1;
                    coord.ff_skipped += delta;
                    coord.now = target;
                    if coord.now >= horizon {
                        break;
                    }
                } else {
                    next_attempt = coord.now + ATTEMPT_BACKOFF;
                }
            }
            let now = coord.now;
            coord.pre_phase(shards, now);
            for shard in shards {
                lock_shard(shard).advance_front(now);
            }
            coord.mid_phase(shards, now, &mut root_ready);
            for shard in shards {
                let mut s = lock_shard(shard);
                let ready = root_ready[s.q];
                s.advance_back(now, ready);
            }
            coord.post_phase(shards, now);
        }
    }

    /// Multi-worker path: persistent scoped threads, four barrier
    /// crossings per stepped cycle (release A, join A, release B, join B).
    /// Workers own shards `q ≡ w (mod workers)` and lock them only inside
    /// their regions; the coordinator runs pre/mid/post between barriers
    /// and fast-forwards while the workers are parked.
    fn advance_threaded(&mut self, horizon: Cycle) {
        const ATTEMPT_BACKOFF: Cycle = 16;
        let coord = &mut self.coord;
        let shards: &[Mutex<Shard>] = &self.shards;
        if coord.now >= horizon {
            return;
        }
        let nworkers = self.workers;
        let ctrl = Ctrl {
            barrier: Barrier::new(nworkers + 1),
            now: AtomicU64::new(coord.now),
            stop: AtomicBool::new(false),
            root_ready: (0..coord.branch).map(|_| AtomicBool::new(false)).collect(),
            failed: AtomicUsize::new(NO_FAILURE),
        };
        let mut failed_at = coord.now;
        std::thread::scope(|scope| {
            for w in 0..nworkers {
                let ctrl = &ctrl;
                scope.spawn(move || loop {
                    ctrl.barrier.wait(); // region A release
                    if ctrl.stop.load(Ordering::Relaxed) {
                        break;
                    }
                    let now = ctrl.now.load(Ordering::Relaxed);
                    // Once any worker has failed, every worker skips its
                    // shard work but keeps hitting all four barriers:
                    // abandoning a barrier would deadlock the coordinator.
                    let mut healthy = ctrl.failed.load(Ordering::Acquire) == NO_FAILURE;
                    if healthy {
                        for q in (w..shards.len()).step_by(nworkers) {
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                lock_shard(&shards[q]).advance_front(now);
                            }));
                            if outcome.is_err() {
                                let _ = ctrl.failed.compare_exchange(
                                    NO_FAILURE,
                                    q,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                );
                                healthy = false;
                                break;
                            }
                        }
                    }
                    ctrl.barrier.wait(); // region A join
                    ctrl.barrier.wait(); // region B release
                    if healthy && ctrl.failed.load(Ordering::Acquire) == NO_FAILURE {
                        for q in (w..shards.len()).step_by(nworkers) {
                            let ready = ctrl.root_ready[q].load(Ordering::Relaxed);
                            let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                                lock_shard(&shards[q]).advance_back(now, ready);
                            }));
                            if outcome.is_err() {
                                let _ = ctrl.failed.compare_exchange(
                                    NO_FAILURE,
                                    q,
                                    Ordering::AcqRel,
                                    Ordering::Acquire,
                                );
                                break;
                            }
                        }
                    }
                    ctrl.barrier.wait(); // region B join
                });
            }
            let mut root_ready = vec![false; coord.branch];
            let mut next_attempt = coord.now;
            while coord.now < horizon {
                if coord.fast_forward && coord.now >= next_attempt {
                    if let Some(target) = coord.fast_forward_target(shards, horizon) {
                        let delta = target - coord.now;
                        coord.advance_idle(shards, delta);
                        coord.ff_jumps += 1;
                        coord.ff_skipped += delta;
                        coord.now = target;
                        if coord.now >= horizon {
                            break;
                        }
                    } else {
                        next_attempt = coord.now + ATTEMPT_BACKOFF;
                    }
                }
                let now = coord.now;
                coord.pre_phase(shards, now);
                ctrl.now.store(now, Ordering::Relaxed);
                ctrl.barrier.wait(); // region A release
                ctrl.barrier.wait(); // region A join
                coord.mid_phase(shards, now, &mut root_ready);
                for (q, &ready) in root_ready.iter().enumerate() {
                    ctrl.root_ready[q].store(ready, Ordering::Relaxed);
                }
                ctrl.barrier.wait(); // region B release
                ctrl.barrier.wait(); // region B join
                coord.post_phase(shards, now);
                // The barrier gives the happens-before edge on `failed`.
                // The interrupted cycle is half-applied; finishing the
                // post phase keeps root offers and time consistent before
                // the serial engine takes over.
                if ctrl.failed.load(Ordering::Acquire) != NO_FAILURE {
                    failed_at = now;
                    break;
                }
            }
            ctrl.stop.store(true, Ordering::Relaxed);
            ctrl.barrier.wait(); // wake workers into the stop check
        });
        let failed = ctrl.failed.load(Ordering::Acquire);
        if failed != NO_FAILURE {
            coord
                .registry
                .inc(ComponentId::System, Counter::ShardFallbacks);
            coord.registry.record(
                failed_at,
                Event::ShardFallback {
                    shard: failed as u32,
                },
            );
            self.error = Some(ShardError::WorkerPanicked {
                shard: failed,
                at: failed_at,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
    use bluescale_interconnect::system::System;
    use bluescale_rt::task::Task;

    fn sets(n: usize, period: u64, wcet: u64) -> Vec<TaskSet> {
        (0..n)
            .map(|_| TaskSet::new(vec![Task::new(0, period, wcet).unwrap()]).unwrap())
            .collect()
    }

    fn serial(sets: &[TaskSet]) -> System<BlueScaleInterconnect> {
        let config = BlueScaleConfig::for_clients(sets.len());
        let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
        System::new(Box::new(ic), sets)
    }

    fn sharded(sets: &[TaskSet], workers: usize) -> ShardedSystem {
        let config = BlueScaleConfig::for_clients(sets.len());
        ShardedSystem::new(config, sets, workers).expect("valid task sets")
    }

    #[test]
    fn with_analysis_matches_the_owning_constructor() {
        // The amortized constructor (one analysis build shared across
        // worker counts) must be indistinguishable from `new`.
        let sets = sets(16, 40, 2);
        let config = BlueScaleConfig::for_clients(16);
        let mut owned = ShardedSystem::new(config.clone(), &sets, 4).expect("valid task sets");

        let mut acfg = config.clone();
        acfg.soa_core = false;
        let analysis = BlueScaleInterconnect::new(acfg, &sets).expect("valid task sets");
        let mut shared = ShardedSystem::with_analysis(config, analysis.clone(), &sets, 4);

        owned.run(4_000);
        shared.run(4_000);
        assert_eq!(
            owned.merged_registry().to_json(),
            shared.merged_registry().to_json()
        );
        // The analysis handed over was cloned — still usable for the
        // next worker count.
        assert_eq!(
            analysis.composition().interfaces.len(),
            shared.config().levels()
        );
    }

    #[test]
    fn matches_serial_aggregates_on_a_dense_workload() {
        let sets = sets(16, 40, 2);
        let mut oracle = serial(&sets);
        let mut a = oracle.run(4_000);
        for workers in [1, 2, 4] {
            let mut sys = sharded(&sets, workers);
            let mut b = sys.run(4_000);
            assert!(a.issued() > 0);
            assert_eq!(a.issued(), b.issued(), "workers={workers}");
            assert_eq!(a.completed(), b.completed(), "workers={workers}");
            assert_eq!(a.missed(), b.missed(), "workers={workers}");
            assert_eq!(a.backlog(), b.backlog(), "workers={workers}");
            assert_eq!(
                a.latency().as_slice(),
                b.latency().as_slice(),
                "workers={workers}"
            );
        }
    }

    #[test]
    fn merged_registry_is_byte_identical_to_serial() {
        let sets = sets(16, 50, 1);
        let mut oracle = serial(&sets);
        oracle.run(3_000);
        let expected = oracle.merged_registry().to_json();
        for workers in [1, 4] {
            let mut sys = sharded(&sets, workers);
            sys.run(3_000);
            assert_eq!(
                sys.merged_registry().to_json(),
                expected,
                "workers={workers}"
            );
        }
    }

    #[test]
    fn churn_is_applied_identically() {
        let sets = sets(16, 400, 2);
        let plan = || {
            let mut plan = ChurnPlan::new(7);
            plan.push(
                500,
                3,
                ChurnKind::UpdateTasks {
                    tasks: TaskSet::new(vec![Task::new(0, 200, 2).unwrap()]).unwrap(),
                },
            )
            .push(900, 9, ChurnKind::Leave);
            plan
        };
        let mut oracle = serial(&sets);
        oracle.set_churn_plan(plan());
        oracle.run(2_000);
        let expected = oracle.merged_registry().to_json();
        let mut sys = sharded(&sets, 4);
        sys.set_churn_plan(plan());
        sys.run(2_000);
        assert_eq!(sys.merged_registry().to_json(), expected);
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::Admitted),
            2
        );
    }

    #[test]
    fn worker_count_is_clamped_to_the_shard_count() {
        let sets = sets(16, 40, 2);
        let sys = sharded(&sets, 8);
        assert_eq!(sys.workers(), 4);
    }

    #[test]
    #[should_panic(expected = "2 tree levels")]
    fn single_level_topologies_are_rejected() {
        let sets = sets(4, 40, 2);
        let config = BlueScaleConfig::for_clients(4);
        let _ = ShardedSystem::new(config, &sets, 2);
    }

    #[test]
    fn worker_panic_falls_back_to_serial() {
        // A shard worker panicking mid-run must not abort the simulation:
        // the failure is contained, recorded, and the remainder of the
        // horizon runs on the serial engine over the surviving state.
        let sets = sets(16, 40, 2);
        let mut sys = sharded(&sets, 4);
        sys.inject_worker_panic(2, 100);
        assert!(sys.shard_error().is_none(), "healthy before the probe");
        let m = sys.run(4_000);
        match sys.shard_error() {
            Some(&ShardError::WorkerPanicked { shard, at }) => {
                assert_eq!(shard, 2);
                assert!((100..4_000).contains(&at), "at={at}");
            }
            other => panic!("expected a contained worker panic, got {other:?}"),
        }
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::ShardFallbacks),
            1,
            "exactly one demotion to the serial engine"
        );
        assert!(
            m.issued() > 0 && m.completed() > 0,
            "the degraded run must still make progress to the horizon"
        );

        // A later advance stays on the serial engine and keeps the error.
        sys.advance_to(5_000);
        assert!(sys.shard_error().is_some());
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::ShardFallbacks),
            1,
            "the demotion is counted once, not per advance"
        );
    }

    #[test]
    fn a_panic_free_run_reports_no_shard_error() {
        let sets = sets(16, 40, 2);
        let mut sys = sharded(&sets, 4);
        sys.run(2_000);
        assert!(sys.shard_error().is_none());
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::ShardFallbacks),
            0
        );
    }
}
