//! Pluggable memory-controller policies.
//!
//! The controller itself stays a dumb single-channel service model
//! ([`MemoryController`](crate::MemoryController)); what the literature
//! calls a "memory scheduling policy" acts one stage earlier, at the seam
//! where an interconnect engine picks the request it offers the channel.
//! [`MemoryPolicy`] captures exactly that seam:
//!
//! * **defer** — before arbitration, the engine shows the policy the
//!   per-port head candidates ([`GrantCandidate`]); the policy may mark a
//!   subset *deferred*. A deferred candidate is hidden from the scheduler
//!   this cycle (the same mechanism as a stuck-grant fault), so the
//!   request stays queued in its random-access buffer — nothing is
//!   dropped, reordered within a port, or double-counted.
//! * **classify** — at issue time the policy assigns a
//!   [`ServiceClass`]: `Inherit` uses the configured
//!   [`PagePolicy`](crate::PagePolicy), `ClosedPage` forces a
//!   deterministic precharged access regardless of row state.
//! * **account** — [`MemoryPolicy::on_issue`] observes every grant that
//!   actually reached the channel, which is where budget windows and
//!   streak counters live.
//!
//! Three policies from the related-work literature are provided alongside
//! the pass-through default:
//!
//! * [`Unregulated`] — today's behavior, bit-identical (it is *passive*:
//!   engines skip the whole peek/defer path).
//! * [`PerBankRegulation`] — per-bank bandwidth budgets over fixed
//!   windows (Sullivan & Yun): a bank that used up its window budget has
//!   its candidates deferred until the next window boundary.
//! * [`Blacklisting`] — streak-based demotion (Subramanian et al.,
//!   BLISS): a client granted `threshold` consecutive channel slots is
//!   blacklisted until the next clearing interval; blacklisted candidates
//!   are deferred only while a non-blacklisted candidate is pending, so
//!   the policy can never starve the channel.
//! * [`DeterministicMemory`] — two-tier service (Farshchi et al.): marked
//!   clients get closed-page, worst-case-free service; best-effort
//!   clients share the open-row fast path.
//!
//! All window/epoch state is derived from the absolute cycle (`now /
//! window`), never from counting calls, so a fast-forwarding harness that
//! jumps the clock lands in exactly the window a per-cycle run would be
//! in. Deferral itself needs a pending candidate, and a pending request
//! already pins the engines to per-cycle stepping.

use bluescale_sim::Cycle;

/// One port-head request as seen by the policy before arbitration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrantCandidate {
    /// Caller-side tag (root port or central-queue index) — opaque to the
    /// policy, which answers in candidate-index space.
    pub port: usize,
    /// Issuing client.
    pub client: u32,
    /// DRAM bank the candidate's address decodes to.
    pub bank: u32,
    /// Absolute request deadline.
    pub deadline: Cycle,
}

/// How the controller should time one accepted request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ServiceClass {
    /// Follow the configured [`PagePolicy`](crate::PagePolicy) (row hits
    /// possible under open-page).
    #[default]
    Inherit,
    /// Deterministic access: pay the full precharge+activate cost and
    /// leave the bank precharged, regardless of the configured policy.
    ClosedPage,
}

/// A memory-scheduling policy mediating the controller seam.
///
/// Implementations must be deterministic functions of their own state and
/// the arguments — engines replicate runs bit-for-bit across execution
/// modes, and a policy that consulted wall-clock time or ambient
/// randomness would break the differential suites.
pub trait MemoryPolicy: std::fmt::Debug + Send {
    /// Short stable name (used in benches and exports).
    fn name(&self) -> &'static str;

    /// A passive policy never defers, never reclassifies and needs no
    /// issue feedback; engines skip the candidate peek entirely, keeping
    /// the hot path byte-identical to the pre-policy code.
    fn is_passive(&self) -> bool {
        false
    }

    /// Bitmask over `candidates` (bit `i` = `candidates[i]`) of the
    /// candidates to defer this cycle. Only called when the channel could
    /// actually accept a grant. At most 64 candidates are presented.
    fn defer_mask(&mut self, _now: Cycle, _candidates: &[GrantCandidate]) -> u64 {
        0
    }

    /// Service class for a request from `client` at issue time.
    fn service_class(&self, _client: u32) -> ServiceClass {
        ServiceClass::Inherit
    }

    /// Observes a grant that reached the channel (bank accounting,
    /// streak tracking).
    fn on_issue(&mut self, _now: Cycle, _client: u32, _bank: u32) {}

    /// Earliest cycle `>= now` at which a currently-deferred candidate
    /// could become eligible again ([`Cycle::MAX`] = no self-imposed
    /// block). Folded into the engines' `next_event` lookahead so a
    /// fast-forward jump can never leap over a window boundary that
    /// would have unblocked a bank.
    fn next_unblock(&self, _now: Cycle) -> Cycle {
        Cycle::MAX
    }

    /// Clones the policy behind the object (engine snapshots clone whole
    /// interconnects).
    fn box_clone(&self) -> Box<dyn MemoryPolicy>;
}

impl Clone for Box<dyn MemoryPolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Serializable policy selection — the configuration-surface twin of the
/// trait objects, so interconnect configs stay `Clone + PartialEq`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum MemPolicyConfig {
    /// Pass-through (today's behavior, bit-identical).
    #[default]
    Unregulated,
    /// Per-bank bandwidth regulation (Sullivan & Yun).
    PerBankRegulation {
        /// Budget window length in cycles.
        window: Cycle,
        /// Grants allowed per bank per window.
        budget: u64,
    },
    /// Streak-based client blacklisting (Subramanian et al., BLISS).
    Blacklisting {
        /// Consecutive grants to one client before it is blacklisted.
        threshold: u64,
        /// Blacklist clearing interval in cycles.
        clear_interval: Cycle,
    },
    /// Two-tier deterministic/best-effort service (Farshchi et al.).
    DeterministicMemory {
        /// Clients whose requests get deterministic closed-page service.
        dm_clients: Vec<u32>,
    },
}

impl MemPolicyConfig {
    /// Instantiates the runtime policy object.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (zero window, budget, threshold or
    /// clearing interval).
    pub fn build(&self) -> Box<dyn MemoryPolicy> {
        match self {
            MemPolicyConfig::Unregulated => Box::new(Unregulated),
            MemPolicyConfig::PerBankRegulation { window, budget } => {
                Box::new(PerBankRegulation::new(*window, *budget))
            }
            MemPolicyConfig::Blacklisting {
                threshold,
                clear_interval,
            } => Box::new(Blacklisting::new(*threshold, *clear_interval)),
            MemPolicyConfig::DeterministicMemory { dm_clients } => {
                Box::new(DeterministicMemory::new(dm_clients.clone()))
            }
        }
    }

    /// The policy's stable name without building it.
    pub fn name(&self) -> &'static str {
        match self {
            MemPolicyConfig::Unregulated => "unregulated",
            MemPolicyConfig::PerBankRegulation { .. } => "per_bank_regulation",
            MemPolicyConfig::Blacklisting { .. } => "blacklisting",
            MemPolicyConfig::DeterministicMemory { .. } => "deterministic_memory",
        }
    }
}

/// The pass-through default: exactly today's controller behavior.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unregulated;

impl MemoryPolicy for Unregulated {
    fn name(&self) -> &'static str {
        "unregulated"
    }

    fn is_passive(&self) -> bool {
        true
    }

    fn box_clone(&self) -> Box<dyn MemoryPolicy> {
        Box::new(*self)
    }
}

/// Per-bank bandwidth regulation (Sullivan & Yun): each bank may receive
/// at most `budget` grants per `window` cycles; over-budget banks'
/// candidates are deferred to the next window boundary.
///
/// The window index is `now / window` — a pure function of absolute time,
/// so jumped clocks resynchronize for free.
#[derive(Debug, Clone)]
pub struct PerBankRegulation {
    window: Cycle,
    budget: u64,
    epoch: Cycle,
    used: Vec<u64>,
}

impl PerBankRegulation {
    /// Creates the regulator.
    ///
    /// # Panics
    ///
    /// Panics if `window` or `budget` is zero (a zero budget could never
    /// grant anything; deferral must always have a future unblock).
    pub fn new(window: Cycle, budget: u64) -> Self {
        assert!(window > 0, "regulation window must be positive");
        assert!(budget > 0, "per-bank budget must be positive");
        Self {
            window,
            budget,
            epoch: 0,
            used: Vec::new(),
        }
    }

    fn resync(&mut self, now: Cycle) {
        let epoch = now / self.window;
        if epoch != self.epoch {
            self.epoch = epoch;
            self.used.fill(0);
        }
    }

    fn used_mut(&mut self, bank: u32) -> &mut u64 {
        let bank = bank as usize;
        if bank >= self.used.len() {
            self.used.resize(bank + 1, 0);
        }
        &mut self.used[bank]
    }
}

impl MemoryPolicy for PerBankRegulation {
    fn name(&self) -> &'static str {
        "per_bank_regulation"
    }

    fn defer_mask(&mut self, now: Cycle, candidates: &[GrantCandidate]) -> u64 {
        self.resync(now);
        let mut mask = 0u64;
        for (i, c) in candidates.iter().enumerate() {
            if *self.used_mut(c.bank) >= self.budget {
                mask |= 1 << i;
            }
        }
        mask
    }

    fn on_issue(&mut self, now: Cycle, _client: u32, bank: u32) {
        self.resync(now);
        *self.used_mut(bank) += 1;
    }

    fn next_unblock(&self, now: Cycle) -> Cycle {
        // Conservative: any saturated bank (even from a stale epoch —
        // resync happens on the next defer/issue) pins the lookahead to
        // the next window boundary. An early wake-up is harmless; a late
        // one would delay a deferred grant.
        if self.used.iter().any(|&u| u >= self.budget) {
            (now / self.window + 1) * self.window
        } else {
            Cycle::MAX
        }
    }

    fn box_clone(&self) -> Box<dyn MemoryPolicy> {
        Box::new(self.clone())
    }
}

/// Streak-based blacklisting (Subramanian et al., BLISS): a client
/// granted `threshold` consecutive channel slots is blacklisted; its
/// candidates are deferred **only while a non-blacklisted candidate is
/// pending** (so the channel never idles on account of the policy), and
/// the blacklist clears every `clear_interval` cycles.
#[derive(Debug, Clone)]
pub struct Blacklisting {
    threshold: u64,
    clear_interval: Cycle,
    epoch: Cycle,
    streak_client: Option<u32>,
    streak: u64,
    blacklisted: Vec<u32>,
}

impl Blacklisting {
    /// Creates the blacklister.
    ///
    /// # Panics
    ///
    /// Panics if `threshold` or `clear_interval` is zero.
    pub fn new(threshold: u64, clear_interval: Cycle) -> Self {
        assert!(threshold > 0, "blacklist threshold must be positive");
        assert!(clear_interval > 0, "clearing interval must be positive");
        Self {
            threshold,
            clear_interval,
            epoch: 0,
            streak_client: None,
            streak: 0,
            blacklisted: Vec::new(),
        }
    }

    fn resync(&mut self, now: Cycle) {
        let epoch = now / self.clear_interval;
        if epoch != self.epoch {
            self.epoch = epoch;
            self.blacklisted.clear();
        }
    }

    /// Clients currently blacklisted (test/bench introspection).
    pub fn blacklisted(&self) -> &[u32] {
        &self.blacklisted
    }
}

impl MemoryPolicy for Blacklisting {
    fn name(&self) -> &'static str {
        "blacklisting"
    }

    fn defer_mask(&mut self, now: Cycle, candidates: &[GrantCandidate]) -> u64 {
        self.resync(now);
        if self.blacklisted.is_empty() {
            return 0;
        }
        let mut mask = 0u64;
        let mut any_clean = false;
        for (i, c) in candidates.iter().enumerate() {
            if self.blacklisted.contains(&c.client) {
                mask |= 1 << i;
            } else {
                any_clean = true;
            }
        }
        // Starvation guard: with every candidate blacklisted, deferring
        // would stall the channel for the rest of the interval. Serve the
        // blacklisted traffic instead (BLISS falls back to baseline order
        // among blacklisted applications).
        if any_clean {
            mask
        } else {
            0
        }
    }

    fn on_issue(&mut self, now: Cycle, client: u32, _bank: u32) {
        self.resync(now);
        if self.streak_client == Some(client) {
            self.streak += 1;
        } else {
            self.streak_client = Some(client);
            self.streak = 1;
        }
        if self.streak >= self.threshold {
            if !self.blacklisted.contains(&client) {
                self.blacklisted.push(client);
            }
            self.streak = 0;
        }
    }

    fn next_unblock(&self, now: Cycle) -> Cycle {
        if self.blacklisted.is_empty() {
            Cycle::MAX
        } else {
            (now / self.clear_interval + 1) * self.clear_interval
        }
    }

    fn box_clone(&self) -> Box<dyn MemoryPolicy> {
        Box::new(self.clone())
    }
}

/// Two-tier deterministic/best-effort service (Farshchi et al.,
/// DeterministicMemory): requests from `dm_clients` are serviced
/// closed-page — every access pays the full precharge+activate cost and
/// leaves the bank precharged, so their latency is independent of any
/// other client's row-buffer footprint. Best-effort clients keep the
/// open-row fast path.
#[derive(Debug, Clone)]
pub struct DeterministicMemory {
    dm_clients: Vec<u32>,
}

impl DeterministicMemory {
    /// Creates the two-tier classifier.
    pub fn new(dm_clients: Vec<u32>) -> Self {
        Self { dm_clients }
    }
}

impl MemoryPolicy for DeterministicMemory {
    fn name(&self) -> &'static str {
        "deterministic_memory"
    }

    fn service_class(&self, client: u32) -> ServiceClass {
        if self.dm_clients.contains(&client) {
            ServiceClass::ClosedPage
        } else {
            ServiceClass::Inherit
        }
    }

    fn box_clone(&self) -> Box<dyn MemoryPolicy> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cand(port: usize, client: u32, bank: u32, deadline: Cycle) -> GrantCandidate {
        GrantCandidate {
            port,
            client,
            bank,
            deadline,
        }
    }

    #[test]
    fn unregulated_is_passive_and_inert() {
        let mut p = Unregulated;
        assert!(p.is_passive());
        assert_eq!(p.defer_mask(0, &[cand(0, 0, 0, 10)]), 0);
        assert_eq!(p.service_class(3), ServiceClass::Inherit);
        assert_eq!(p.next_unblock(5), Cycle::MAX);
    }

    #[test]
    fn config_builds_matching_names() {
        for cfg in [
            MemPolicyConfig::Unregulated,
            MemPolicyConfig::PerBankRegulation {
                window: 100,
                budget: 4,
            },
            MemPolicyConfig::Blacklisting {
                threshold: 4,
                clear_interval: 1_000,
            },
            MemPolicyConfig::DeterministicMemory {
                dm_clients: vec![0, 1],
            },
        ] {
            assert_eq!(cfg.build().name(), cfg.name());
        }
        assert_eq!(MemPolicyConfig::default(), MemPolicyConfig::Unregulated);
    }

    #[test]
    fn per_bank_budget_defers_saturated_bank_only() {
        let mut p = PerBankRegulation::new(100, 2);
        p.on_issue(0, 0, 3);
        p.on_issue(1, 0, 3);
        // Bank 3 exhausted its budget; bank 5 untouched.
        let cands = [cand(0, 0, 3, 50), cand(1, 1, 5, 60)];
        assert_eq!(p.defer_mask(2, &cands), 0b01);
        assert_eq!(p.next_unblock(2), 100, "unblocks at the window boundary");
    }

    #[test]
    fn per_bank_window_resets_at_boundary() {
        let mut p = PerBankRegulation::new(100, 1);
        p.on_issue(10, 0, 0);
        assert_eq!(p.defer_mask(20, &[cand(0, 0, 0, 99)]), 0b1);
        // Next window (even reached by a fast-forward jump): clean slate.
        assert_eq!(p.defer_mask(250, &[cand(0, 0, 0, 300)]), 0);
        assert_eq!(p.next_unblock(250), Cycle::MAX);
    }

    #[test]
    fn blacklisting_trips_on_streak_and_clears() {
        let mut p = Blacklisting::new(3, 1_000);
        for now in 0..3 {
            p.on_issue(now, 7, 0);
        }
        assert_eq!(p.blacklisted(), &[7]);
        // Deferred only while a clean candidate is pending.
        let mixed = [cand(0, 7, 0, 50), cand(1, 2, 1, 60)];
        assert_eq!(p.defer_mask(5, &mixed), 0b01);
        let only_blacklisted = [cand(0, 7, 0, 50)];
        assert_eq!(
            p.defer_mask(6, &only_blacklisted),
            0,
            "never starve the channel"
        );
        assert_eq!(p.next_unblock(6), 1_000);
        // The clearing boundary wipes the list.
        assert_eq!(p.defer_mask(1_000, &mixed), 0);
        assert!(p.blacklisted().is_empty());
    }

    #[test]
    fn blacklisting_streak_resets_on_interleaving() {
        let mut p = Blacklisting::new(3, 1_000);
        p.on_issue(0, 7, 0);
        p.on_issue(1, 7, 0);
        p.on_issue(2, 2, 0); // breaks the streak
        p.on_issue(3, 7, 0);
        p.on_issue(4, 7, 0);
        assert!(p.blacklisted().is_empty());
    }

    #[test]
    fn deterministic_memory_classifies_by_client() {
        let mut p = DeterministicMemory::new(vec![1, 4]);
        assert_eq!(p.service_class(1), ServiceClass::ClosedPage);
        assert_eq!(p.service_class(4), ServiceClass::ClosedPage);
        assert_eq!(p.service_class(0), ServiceClass::Inherit);
        assert_eq!(p.defer_mask(0, &[cand(0, 1, 0, 10)]) & 0b1, 0);
    }

    #[test]
    fn boxed_policies_clone() {
        let p: Box<dyn MemoryPolicy> = MemPolicyConfig::PerBankRegulation {
            window: 10,
            budget: 1,
        }
        .build();
        let q = p.clone();
        assert_eq!(q.name(), "per_bank_regulation");
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn zero_window_rejected() {
        let _ = PerBankRegulation::new(0, 1);
    }

    #[test]
    #[should_panic(expected = "budget must be positive")]
    fn zero_budget_rejected() {
        let _ = PerBankRegulation::new(10, 0);
    }
}
