//! Randomized tests of the hardware cost model, swept exhaustively over the
//! parameter ranges (the ranges are small enough that the former proptest
//! sampling is replaced by full coverage).

use bluescale_hwcost::frequency::{max_frequency_mhz, FrequencyTarget};
use bluescale_hwcost::{area_fraction, interconnect_cost, legacy_system_cost, Architecture};

/// Cost is monotone in the client count for every architecture.
#[test]
fn cost_monotone_in_clients() {
    for n in 1usize..200 {
        for arch in Architecture::ALL {
            let small = interconnect_cost(arch, n);
            let large = interconnect_cost(arch, n + 1);
            assert!(large.luts >= small.luts, "{arch:?} LUTs at {n}");
            assert!(large.registers >= small.registers, "{arch:?} regs at {n}");
            assert!(
                large.power_mw >= small.power_mw - 1e-9,
                "{arch:?} power at {n}"
            );
        }
    }
}

/// Area fractions are consistent with raw LUT counts.
#[test]
fn area_fraction_scales_with_luts() {
    for n in 1usize..256 {
        let legacy = legacy_system_cost(n);
        let f = area_fraction(&legacy);
        assert!(
            (f * bluescale_hwcost::VC707_LUTS as f64 - legacy.luts as f64).abs() < 1.0,
            "n={n}"
        );
    }
}

/// Frequencies are positive and the centralized arbiter only slows down as
/// it grows.
#[test]
fn frequencies_positive_and_axi_monotone() {
    for n in 1usize..500 {
        for target in [
            FrequencyTarget::Legacy,
            FrequencyTarget::AxiIcRt,
            FrequencyTarget::BlueScale,
        ] {
            assert!(max_frequency_mhz(target, n) > 0.0, "{target:?} at n={n}");
        }
        assert!(
            max_frequency_mhz(FrequencyTarget::AxiIcRt, n)
                >= max_frequency_mhz(FrequencyTarget::AxiIcRt, n + 1),
            "AXI frequency rose from n={n}"
        );
    }
}

/// At the paper's sweep points (powers of two, Fig 5) the quadtree always
/// beats the centralized switch box on LUTs. (At awkward intermediate
/// counts just above a power of four the extra SE level can cost more —
/// e.g. 17 clients — which the paper never sweeps.)
#[test]
fn bluescale_cheaper_than_axi_at_powers_of_two() {
    for eta in 1u32..10 {
        let n = 1usize << eta;
        let bs = interconnect_cost(Architecture::BlueScale, n);
        let axi = interconnect_cost(Architecture::AxiIcRt, n);
        assert!(bs.luts < axi.luts, "n={n}: {} vs {}", bs.luts, axi.luts);
    }
}
