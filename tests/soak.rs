//! Long-horizon soak test (ignored by default; run with
//! `cargo test --release -- --ignored`): a million cycles of sustained
//! traffic on BlueScale with mid-run reconfiguration must stay conservative
//! (no lost requests) and, when admitted, miss-free.

use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::sim::rng::SimRng;
use bluescale_repro::workload::synthetic::{generate, SyntheticConfig};

#[test]
#[ignore = "long-running soak; run with --ignored"]
fn million_cycle_soak() {
    let mut rng = SimRng::seed_from(0x50AC);
    let synthetic = SyntheticConfig {
        util_lo: 0.60,
        util_hi: 0.70,
        ..SyntheticConfig::fig6(64)
    };
    let sets = generate(&synthetic, &mut rng);
    let mut config = BlueScaleConfig::for_clients(64);
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, &sets).expect("valid build");
    let admitted = ic.composition().schedulable;
    let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &sets);
    let metrics = system.run(1_000_000);
    assert!(metrics.issued() > 100_000, "issued {}", metrics.issued());
    assert_eq!(
        metrics.completed() + system.in_flight() as u64 + metrics.backlog(),
        metrics.issued(),
        "requests lost during soak"
    );
    if admitted {
        assert!(
            metrics.success(),
            "admitted composition missed {} deadlines over 1M cycles",
            metrics.missed()
        );
    }
}
