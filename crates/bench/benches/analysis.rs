//! Micro-benchmarks of the analysis path: SBF/DBF evaluation,
//! schedulability testing and interface selection — the computation the
//! interface selector's datapath (ALU + scratchpad) performs in hardware.
//!
//! Plain timing harness (`harness = false`): the container has no registry
//! access for criterion. Run with `cargo bench -p bluescale-bench`.

use std::hint::black_box;
use std::time::Instant;

use bluescale_rt::demand::dbf_set;
use bluescale_rt::fixed_priority::is_schedulable_fp;
use bluescale_rt::interface::{select_interface, select_se_interfaces, SelectionContext};
use bluescale_rt::schedulability::is_schedulable;
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_rt::validate::edf_meets_deadlines;
use bluescale_sim::rng::SimRng;
use bluescale_workload::uunifast::taskset_with_utilization;

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    // Warm-up.
    for _ in 0..iters.div_ceil(10).min(100) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() / iters as u128;
    println!("{name:<42} {per_iter:>12} ns/iter ({iters} iters)");
}

fn sample_set(tasks: usize, seed: u64) -> TaskSet {
    let mut rng = SimRng::seed_from(seed);
    taskset_with_utilization(tasks, 0.4, 100, 2000, &mut rng)
}

fn main() {
    let set8 = sample_set(8, 1);
    time("dbf_set/8tasks/t=10k", 100_000, || {
        dbf_set(black_box(&set8), black_box(10_000))
    });

    let r = PeriodicResource::new(50, 17).expect("valid");
    time("sbf/t=10k", 100_000, || {
        black_box(&r).sbf(black_box(10_000))
    });

    for tasks in [2usize, 4, 8] {
        let set = sample_set(tasks, tasks as u64);
        let r = PeriodicResource::new(16, 8).expect("valid");
        time(&format!("is_schedulable/{tasks}tasks"), 10_000, || {
            is_schedulable(black_box(&set), black_box(&r))
        });
    }

    for tasks in [1usize, 2, 4] {
        let set = sample_set(tasks, 10 + tasks as u64);
        let ctx = SelectionContext::isolated(&set);
        time(&format!("select_interface/{tasks}tasks"), 200, || {
            select_interface(black_box(&set), black_box(&ctx)).expect("feasible")
        });
    }

    // Sizing a full SE (4 clients) — the per-element cost of the
    // distributed reconfiguration property.
    let clients: Vec<TaskSet> = (0..4)
        .map(|i| {
            TaskSet::new(vec![Task::new(0, 400 + 50 * i, 8).expect("valid")]).expect("valid set")
        })
        .collect();
    time("select_se_interfaces/4clients", 50, || {
        select_se_interfaces(black_box(&clients)).expect("feasible")
    });

    let set4 = sample_set(4, 21);
    let r = PeriodicResource::new(16, 10).expect("valid");
    time("is_schedulable_fp/4tasks", 10_000, || {
        is_schedulable_fp(black_box(&set4), black_box(&r))
    });

    let set3 = sample_set(3, 31);
    let r = PeriodicResource::new(8, 6).expect("valid");
    time("edf_simulate/3tasks/5k", 1_000, || {
        edf_meets_deadlines(black_box(&set3), black_box(&r), 5_000)
    });
}
