//! Independent validation of the analysis by discrete schedule simulation.
//!
//! [`edf_meets_deadlines`] simulates EDF execution of a task set on the
//! *worst-case supply pattern* of a periodic resource: the first budget is
//! delivered as early as possible and every later budget as late as
//! possible, creating the maximal `2(Π−Θ)` blackout right when the tasks
//! arrive — the exact scenario the supply bound function `sbf` describes.
//!
//! Since [`is_schedulable`](crate::schedulability::is_schedulable) is a
//! *sound* test (it guarantees deadlines under **every** legal supply),
//! any set it admits must survive this particular supply. The property
//! tests in this module and the repository's integration suite exercise
//! that implication on thousands of random instances — an executable
//! cross-check of Theorem 1's bound and of the `sbf` formula itself.

use crate::supply::PeriodicResource;
use crate::task::TaskSet;
use crate::Time;

/// Upper bound on simulated steps, to keep pathological hyperperiods from
/// stalling validation.
pub const MAX_SIMULATED_STEPS: Time = 1_000_000;

/// Whether the resource supplies one execution unit during time slot
/// `[t, t+1)` of the worst-case pattern: budget `Θ` early in period 0
/// (slots `[0, Θ)`), and as late as possible (`[kΠ − Θ, kΠ)`) in every
/// later period `k ≥ 1`. Tasks arrive at time `Θ` (just after the early
/// budget), so they face the full `2(Π−Θ)` blackout.
fn supplies(resource: &PeriodicResource, t: Time) -> bool {
    let period = resource.period();
    let budget = resource.budget();
    let k = t / period;
    let offset = t % period;
    if k == 0 {
        offset < budget
    } else {
        offset >= period - budget
    }
}

/// Simulates EDF on the worst-case supply of `resource` for `horizon`
/// time units after the synchronous release (capped at
/// [`MAX_SIMULATED_STEPS`]). Returns `true` iff no job misses its
/// deadline within the horizon.
///
/// Jobs released less than their deadline before the horizon end are not
/// judged (their deadline lies beyond the observation window).
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::supply::PeriodicResource;
/// use bluescale_rt::validate::edf_meets_deadlines;
/// use bluescale_rt::schedulability::is_schedulable;
///
/// let set = TaskSet::new(vec![Task::new(0, 20, 2)?])?;
/// let good = PeriodicResource::new(5, 2).expect("valid");
/// assert!(is_schedulable(&set, &good));
/// assert!(edf_meets_deadlines(&set, &good, 500));
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn edf_meets_deadlines(set: &TaskSet, resource: &PeriodicResource, horizon: Time) -> bool {
    first_miss(set, resource, horizon).is_none()
}

/// Like [`edf_meets_deadlines`], but returns the absolute time of the
/// first deadline miss (useful in diagnostics and tests).
pub fn first_miss(set: &TaskSet, resource: &PeriodicResource, horizon: Time) -> Option<Time> {
    if set.is_empty() {
        return None;
    }
    let release_origin = resource.budget(); // tasks arrive after the early budget
    let horizon = horizon.min(MAX_SIMULATED_STEPS);

    // Active jobs: (absolute deadline, remaining work, task index).
    let mut jobs: Vec<(Time, Time, usize)> = Vec::new();
    let mut next_release: Vec<Time> = set.iter().map(|_| release_origin).collect();

    for t in 0..horizon {
        // Releases at time t.
        for (i, task) in set.iter().enumerate() {
            if next_release[i] == t {
                jobs.push((t + task.deadline(), task.wcet(), i));
                next_release[i] += task.period();
            }
        }
        // Misses: any active job whose deadline has arrived with work left.
        if jobs
            .iter()
            .any(|&(d, remaining, _)| d <= t && remaining > 0)
        {
            return Some(t);
        }
        // Supply slot: run the earliest-deadline job.
        if supplies(resource, t) {
            if let Some(job) = jobs
                .iter_mut()
                .filter(|(_, remaining, _)| *remaining > 0)
                .min_by_key(|&&mut (d, _, i)| (d, i))
            {
                job.1 -= 1;
            }
        }
        jobs.retain(|&(_, remaining, _)| remaining > 0);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulability::is_schedulable;
    use crate::task::Task;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn worst_case_supply_pattern_matches_sbf_blackout() {
        // Π = 10, Θ = 3: early budget in [0,3), then [17,20), [27,30), …
        let r = PeriodicResource::new(10, 3).unwrap();
        let supplied: Vec<Time> = (0..40).filter(|&t| supplies(&r, t)).collect();
        assert_eq!(supplied, vec![0, 1, 2, 17, 18, 19, 27, 28, 29, 37, 38, 39]);
        // From the release origin (t = 3), the first supply arrives at 17:
        // a blackout of 14 = 2(Π−Θ) time units — the sbf worst case.
    }

    #[test]
    fn cumulative_supply_dominates_sbf() {
        // From the release origin, the simulated supply over any prefix
        // must be at least sbf (sbf is the guaranteed minimum).
        for (p, b) in [(10u64, 3u64), (7, 2), (5, 4), (8, 1)] {
            let r = PeriodicResource::new(p, b).unwrap();
            let origin = r.budget();
            let mut cumulative = 0;
            for t in 0..300 {
                if supplies(&r, origin + t) {
                    cumulative += 1;
                }
                assert!(
                    cumulative >= r.sbf(t + 1),
                    "supply {cumulative} below sbf({}) = {} for Π={p}, Θ={b}",
                    t + 1,
                    r.sbf(t + 1)
                );
            }
        }
    }

    #[test]
    fn admitted_sets_survive_worst_case_supply() {
        let cases = [
            (set(&[(20, 2)]), PeriodicResource::new(5, 2).unwrap()),
            (
                set(&[(10, 1), (25, 3)]),
                PeriodicResource::new(4, 2).unwrap(),
            ),
            (
                set(&[(30, 5), (40, 8)]),
                PeriodicResource::new(6, 3).unwrap(),
            ),
        ];
        for (s, r) in cases {
            assert!(is_schedulable(&s, &r), "precondition: analysis admits");
            assert!(
                edf_meets_deadlines(&s, &r, 2_000),
                "admitted set missed under worst-case supply: {s:?} on {r:?}"
            );
        }
    }

    #[test]
    fn overloaded_set_misses() {
        // Demand 0.5, bandwidth 0.25: must miss quickly.
        let s = set(&[(10, 5)]);
        let r = PeriodicResource::new(4, 1).unwrap();
        assert!(!is_schedulable(&s, &r));
        let miss = first_miss(&s, &r, 2_000);
        assert!(miss.is_some());
    }

    #[test]
    fn blackout_longer_than_deadline_misses() {
        // 2(Π−Θ) = 18 > deadline 10.
        let s = set(&[(10, 1)]);
        let r = PeriodicResource::new(12, 3).unwrap();
        assert!(!is_schedulable(&s, &r));
        assert!(!edf_meets_deadlines(&s, &r, 500));
    }

    #[test]
    fn empty_set_never_misses() {
        let r = PeriodicResource::new(5, 1).unwrap();
        assert!(edf_meets_deadlines(&TaskSet::empty(), &r, 100));
    }

    #[test]
    fn dedicated_resource_runs_everything() {
        let s = set(&[(4, 2), (8, 4)]); // U = 1.0
        let r = PeriodicResource::dedicated(1);
        assert!(edf_meets_deadlines(&s, &r, 1_000));
    }

    #[test]
    fn constrained_deadlines_respected() {
        let s = TaskSet::new(vec![Task::with_deadline(0, 20, 8, 4).unwrap()]).unwrap();
        // A fine-grained, high-bandwidth resource schedules it…
        let good = PeriodicResource::new(4, 3).unwrap();
        assert!(is_schedulable(&s, &good));
        assert!(edf_meets_deadlines(&s, &good, 1_000));
        // …but a resource whose blackout exceeds D = 8 cannot.
        let bad = PeriodicResource::new(10, 4).unwrap();
        assert!(!is_schedulable(&s, &bad));
        assert!(!edf_meets_deadlines(&s, &bad, 1_000));
    }
}
