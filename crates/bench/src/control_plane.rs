//! Control-plane benchmark: sustained admission throughput, p99 decision
//! latency under overload, and crash-recovery fidelity
//! (`results/BENCH_control_plane.json`).
//!
//! Four phases against a live [`Daemon`] on loopback TCP:
//!
//! 1. **Calibration** — one closed-loop client measures the sustainable
//!    decision rate (join/leave pairs, every op journaled + fsynced).
//! 2. **Overload** — thousands of tenant identities, served by a bounded
//!    pool of concurrent connections, offer admissions at
//!    `overload_factor ×` the calibrated rate. The daemon must keep
//!    guaranteed-tenant decisions inside the deadline (p99 reported) and
//!    answer everything else with an explicit verdict — shed, reject or
//!    timed-out; never a stall, never a silent drop (asserted via the
//!    daemon's conservation invariant).
//! 3. **Recovery** — the overloaded daemon is killed mid-run and
//!    restarted; the journal replay must reproduce the pre-crash
//!    admission state digest bit-identically.
//! 4. **Faults** — a fresh daemon is driven by clients that sever their
//!    connection after every Nth request frame (responses lost in
//!    flight); bounded deadline-aware retries must land every operation
//!    exactly once.

use bluescale_ctl::client::{CtlClient, RetryPolicy};
use bluescale_ctl::proto::{Response, TaskSpec, TenantClass};
use bluescale_ctl::server::{Daemon, DaemonConfig};
use bluescale_sim::metrics::Counter;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Configuration of the control-plane benchmark.
#[derive(Debug, Clone)]
pub struct ControlPlaneConfig {
    /// Registry slots (concurrently *admitted* tenants).
    pub capacity: usize,
    /// Daemon queue bound; small enough that overload sheds.
    pub queue_depth: usize,
    /// Tenant identities contending during the overload phase.
    pub tenants: usize,
    /// Concurrent client connections serving those identities.
    pub connections: usize,
    /// Admission requests per tenant identity in the overload phase.
    pub requests_per_tenant: usize,
    /// Offered load as a multiple of the calibrated sustainable rate.
    pub overload_factor: u64,
    /// Calibration ops (join/leave pairs count as two).
    pub calibration_ops: usize,
    /// Per-request decision deadline.
    pub queue_deadline: Duration,
    /// Fault phase: sever the connection after every Nth sent frame.
    pub fault_every: u64,
    /// Fault phase: tenants driven through the faulty clients.
    pub fault_tenants: usize,
    /// Master seed for client retry jitter.
    pub seed: u64,
}

impl Default for ControlPlaneConfig {
    fn default() -> Self {
        ControlPlaneConfig {
            capacity: 64,
            queue_depth: 64,
            tenants: 2048,
            connections: 128,
            requests_per_tenant: 2,
            overload_factor: 10,
            calibration_ops: 400,
            queue_deadline: Duration::from_millis(500),
            fault_every: 2,
            fault_tenants: 32,
            seed: 0xC7_1BEEF,
        }
    }
}

/// What the benchmark measured.
#[derive(Debug, Clone)]
pub struct ControlPlaneResult {
    /// Calibrated sustainable decision rate (journaled ops/sec).
    pub sustained_per_sec: f64,
    /// Offered rate during the overload phase (requests/sec).
    pub offered_per_sec: f64,
    /// Overload-phase request dispositions (from the daemon).
    pub admitted: u64,
    /// Typed rejections (capacity, inadmissible, conflicts, quarantine).
    pub rejected: u64,
    /// Explicitly shed requests.
    pub shed: u64,
    /// Queue-deadline expiries.
    pub timed_out: u64,
    /// Requests that arrived flagged as retries.
    pub retries: u64,
    /// p99 client-observed decision latency for guaranteed-tenant
    /// admissions, microseconds.
    pub guaranteed_p99_us: f64,
    /// p99 across every answered request, microseconds.
    pub overall_p99_us: f64,
    /// Guaranteed admissions that beat the decision deadline, and total.
    pub guaranteed_within_deadline: (u64, u64),
    /// The daemon's conservation invariant after quiescing.
    pub conserved: bool,
    /// Client-side transport failures during overload (must be 0 — the
    /// daemon never stalls).
    pub client_errors: u64,
    /// Pre-kill and post-restart admission digests.
    pub digest_before: u64,
    /// Digest after recovery replay.
    pub digest_after: u64,
    /// Journal records replayed on restart.
    pub recovery_replays: u64,
    /// Fault phase: operations completed through injected faults.
    pub faulted_ops: u64,
    /// Fault phase: retries the faults forced.
    pub faulted_retries: u64,
    /// Fault phase: conservation after quiescing.
    pub faulted_conserved: bool,
}

impl ControlPlaneResult {
    /// The headline robustness verdict: explicit verdicts for everything,
    /// guaranteed decisions inside the deadline, bit-identical recovery,
    /// and fault-riddled clients still converging.
    pub fn holds(&self) -> bool {
        let (met, total) = self.guaranteed_within_deadline;
        self.conserved
            && self.client_errors == 0
            && self.shed > 0
            && total > 0
            && met == total
            && self.digest_before == self.digest_after
            && self.faulted_conserved
            && self.faulted_retries > 0
    }
}

fn spec(period: u64, wcet: u64) -> TaskSpec {
    TaskSpec { period, wcet }
}

fn daemon_config(config: &ControlPlaneConfig) -> DaemonConfig {
    DaemonConfig {
        capacity: config.capacity,
        queue_depth: config.queue_depth,
        batch_max: 32,
        sim_cycles_per_batch: 16,
        compact_every: 256,
        queue_deadline: config.queue_deadline,
        ..DaemonConfig::default()
    }
}

fn bench_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bluescale-ctl-bench-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Phase 1: one closed-loop client, join/leave pairs, every decision
/// journaled and group-committed. Returns decisions/sec.
fn calibrate(daemon: &Daemon, config: &ControlPlaneConfig) -> f64 {
    let mut client = CtlClient::new(daemon.addr(), RetryPolicy::default(), config.seed);
    let pairs = (config.calibration_ops / 2).max(1);
    let t0 = Instant::now();
    for i in 0..pairs {
        let tenant = 1_000_000 + (i % config.capacity.max(1)) as u64;
        let joined = client
            .join(tenant, TenantClass::Guaranteed, vec![spec(4000, 1)])
            .expect("calibration join transport");
        assert!(
            matches!(joined, Response::Admitted { .. }),
            "calibration join must admit, got {joined:?}"
        );
        let left = client.leave(tenant).expect("calibration leave transport");
        assert!(matches!(left, Response::Admitted { .. }));
    }
    let secs = t0.elapsed().as_secs_f64().max(1e-9);
    (pairs * 2) as f64 / secs
}

struct OverloadTally {
    latencies_us: Vec<u64>,
    guaranteed_us: Vec<u64>,
    guaranteed_admits: u64,
    client_errors: u64,
}

/// Phase 2: `connections` worker threads sweep `tenants` identities,
/// pacing their aggregate offered load at `offered_per_sec`. Guaranteed
/// tenants (every 8th identity) join and stay; best-effort identities
/// churn join/renegotiate. Returns client-side latency tallies.
fn overload(daemon: &Daemon, config: &ControlPlaneConfig, offered_per_sec: f64) -> OverloadTally {
    let tally = Arc::new(Mutex::new(OverloadTally {
        latencies_us: Vec::new(),
        guaranteed_us: Vec::new(),
        guaranteed_admits: 0,
        client_errors: 0,
    }));
    let per_conn_gap =
        Duration::from_secs_f64((config.connections as f64 / offered_per_sec.max(1.0)).min(0.05));
    let addr = daemon.addr();
    std::thread::scope(|scope| {
        for conn in 0..config.connections {
            let tally = Arc::clone(&tally);
            let config = &*config;
            scope.spawn(move || {
                // Transport retries stay bounded and inside the decision
                // deadline; verdicts (shed/reject/timeout) are final.
                let policy = RetryPolicy {
                    max_attempts: 3,
                    deadline: config.queue_deadline * 4,
                    ..RetryPolicy::default()
                };
                let mut client = CtlClient::new(addr, policy, config.seed ^ (conn as u64) << 20);
                let mut local = OverloadTally {
                    latencies_us: Vec::new(),
                    guaranteed_us: Vec::new(),
                    guaranteed_admits: 0,
                    client_errors: 0,
                };
                let mut tenant = conn;
                while tenant < config.tenants {
                    let id = tenant as u64;
                    let guaranteed = tenant % 8 == 0;
                    for round in 0..config.requests_per_tenant {
                        let t0 = Instant::now();
                        let outcome = if guaranteed {
                            client.join(id, TenantClass::Guaranteed, vec![spec(4000, 1)])
                        } else if round == 0 {
                            client.join(id, TenantClass::BestEffort, vec![spec(2000, 1)])
                        } else {
                            client.renegotiate(id, vec![spec(2000 + round as u64, 1)])
                        };
                        let us = t0.elapsed().as_micros() as u64;
                        match outcome {
                            Ok(response) => {
                                local.latencies_us.push(us);
                                if guaranteed {
                                    local.guaranteed_us.push(us);
                                    if matches!(response, Response::Admitted { .. }) {
                                        local.guaranteed_admits += 1;
                                    }
                                }
                            }
                            Err(_) => local.client_errors += 1,
                        }
                        std::thread::sleep(per_conn_gap);
                    }
                    tenant += config.connections;
                }
                let mut t = tally.lock().expect("tally");
                t.latencies_us.extend(local.latencies_us);
                t.guaranteed_us.extend(local.guaranteed_us);
                t.guaranteed_admits += local.guaranteed_admits;
                t.client_errors += local.client_errors;
            });
        }
    });
    Arc::try_unwrap(tally)
        .map(|m| m.into_inner().expect("tally"))
        .unwrap_or_else(|_| panic!("tally still shared"))
}

fn percentile_us(samples: &mut [u64], p: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_unstable();
    let rank = ((samples.len() as f64 - 1.0) * p).round() as usize;
    samples[rank.min(samples.len() - 1)] as f64
}

/// Phase 4: clients that drop their connection after every Nth sent
/// frame. Returns (ops completed, retries forced, conserved).
fn faulted_phase(config: &ControlPlaneConfig) -> (u64, u64, bool) {
    let dir = bench_dir("faults");
    let daemon = Daemon::start(&dir, daemon_config(config)).expect("fault daemon");
    let policy = RetryPolicy {
        drop_after_send_every: Some(config.fault_every),
        deadline: Duration::from_secs(10),
        max_attempts: 8,
        ..RetryPolicy::default()
    };
    let mut ops = 0u64;
    let mut client = CtlClient::new(daemon.addr(), policy, config.seed ^ 0xFA17);
    for t in 0..config.fault_tenants {
        let id = 5_000_000 + t as u64;
        let joined = client
            .join(id, TenantClass::BestEffort, vec![spec(4000, 1)])
            .expect("faulted join must converge");
        assert!(
            matches!(joined, Response::Admitted { .. }),
            "faulted join verdict: {joined:?}"
        );
        ops += 1;
        if t % 2 == 0 {
            let left = client.leave(id).expect("faulted leave must converge");
            assert!(matches!(left, Response::Admitted { .. }));
            ops += 1;
        }
    }
    let retries = daemon.sim_counter(Counter::Retries);
    let stats = daemon.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    (ops, retries, stats.conservation_holds())
}

/// Runs the full benchmark.
///
/// # Panics
///
/// Panics when a phase cannot complete at all (daemon fails to start,
/// calibration transport fails) — *verdict*-level regressions are
/// reported through [`ControlPlaneResult::holds`], not panics.
pub fn run(config: &ControlPlaneConfig) -> ControlPlaneResult {
    let dir = bench_dir("main");
    let daemon = Daemon::start(&dir, daemon_config(config)).expect("start daemon");

    // Phase 1: sustainable rate.
    let sustained_per_sec = calibrate(&daemon, config);
    let offered_per_sec = sustained_per_sec * config.overload_factor as f64;

    // Phase 2: overload at overload_factor × sustainable.
    let mut tally = overload(&daemon, config, offered_per_sec);
    let overall_p99_us = percentile_us(&mut tally.latencies_us, 0.99);
    let guaranteed_p99_us = percentile_us(&mut tally.guaranteed_us, 0.99);
    let deadline_us = (config.queue_deadline * 4).as_micros() as u64;
    let met = tally
        .guaranteed_us
        .iter()
        .filter(|&&us| us <= deadline_us)
        .count() as u64;
    let total = tally.guaranteed_us.len() as u64;

    // Phase 3: kill mid-bench state, restart, compare digests.
    let digest_before = daemon.state_digest();
    let stats = daemon.kill();
    let revived = Daemon::start(&dir, daemon_config(config)).expect("restart daemon");
    let digest_after = revived.state_digest();
    let recovery_replays = revived.sim_counter(Counter::RecoveryReplays);
    revived.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 4: injected connection faults on a fresh daemon.
    let (faulted_ops, faulted_retries, faulted_conserved) = faulted_phase(config);

    ControlPlaneResult {
        sustained_per_sec,
        offered_per_sec,
        admitted: stats.admitted,
        rejected: stats.rejected,
        shed: stats.shed,
        timed_out: stats.timed_out,
        retries: stats.retries,
        guaranteed_p99_us,
        overall_p99_us,
        guaranteed_within_deadline: (met, total),
        conserved: stats.conservation_holds(),
        client_errors: tally.client_errors,
        digest_before,
        digest_after,
        recovery_replays,
        faulted_ops,
        faulted_retries,
        faulted_conserved,
    }
}

/// Renders the result as the `BENCH_control_plane.json` artefact
/// (hand-rolled JSON; the container has no serde).
pub fn render_json(config: &ControlPlaneConfig, result: &ControlPlaneResult) -> String {
    let (met, total) = result.guaranteed_within_deadline;
    format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"control_plane\",\n",
            "  \"seed\": {},\n",
            "  \"capacity\": {},\n",
            "  \"queue_depth\": {},\n",
            "  \"tenants\": {},\n",
            "  \"connections\": {},\n",
            "  \"overload_factor\": {},\n",
            "  \"sustained_per_sec\": {:.1},\n",
            "  \"offered_per_sec\": {:.1},\n",
            "  \"admitted\": {},\n",
            "  \"rejected\": {},\n",
            "  \"shed\": {},\n",
            "  \"timed_out\": {},\n",
            "  \"retries\": {},\n",
            "  \"guaranteed_p99_us\": {:.1},\n",
            "  \"overall_p99_us\": {:.1},\n",
            "  \"guaranteed_within_deadline\": [{}, {}],\n",
            "  \"conserved\": {},\n",
            "  \"client_errors\": {},\n",
            "  \"digest_before\": \"{:#018x}\",\n",
            "  \"digest_after\": \"{:#018x}\",\n",
            "  \"recovery_bit_identical\": {},\n",
            "  \"recovery_replays\": {},\n",
            "  \"faulted_ops\": {},\n",
            "  \"faulted_retries\": {},\n",
            "  \"faulted_conserved\": {},\n",
            "  \"holds\": {}\n",
            "}}\n",
        ),
        config.seed,
        config.capacity,
        config.queue_depth,
        config.tenants,
        config.connections,
        config.overload_factor,
        result.sustained_per_sec,
        result.offered_per_sec,
        result.admitted,
        result.rejected,
        result.shed,
        result.timed_out,
        result.retries,
        result.guaranteed_p99_us,
        result.overall_p99_us,
        met,
        total,
        result.conserved,
        result.client_errors,
        result.digest_before,
        result.digest_after,
        result.digest_before == result.digest_after,
        result.recovery_replays,
        result.faulted_ops,
        result.faulted_retries,
        result.faulted_conserved,
        result.holds(),
    )
}

/// Renders the headline numbers as a table for stdout.
pub fn render_table(result: &ControlPlaneResult) -> String {
    let (met, total) = result.guaranteed_within_deadline;
    format!(
        "| Sustained/s | Offered/s | Admitted | Rejected | Shed | TimedOut | G p99 (us) | G in-deadline | Recovery |\n\
         |---:|---:|---:|---:|---:|---:|---:|---:|---:|\n\
         | {:.0} | {:.0} | {} | {} | {} | {} | {:.0} | {}/{} | {} |\n",
        result.sustained_per_sec,
        result.offered_per_sec,
        result.admitted,
        result.rejected,
        result.shed,
        result.timed_out,
        result.guaranteed_p99_us,
        met,
        total,
        if result.digest_before == result.digest_after {
            "bit-identical"
        } else {
            "DIVERGED"
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ControlPlaneConfig {
        ControlPlaneConfig {
            capacity: 8,
            queue_depth: 8,
            tenants: 48,
            connections: 12,
            requests_per_tenant: 2,
            calibration_ops: 20,
            queue_deadline: Duration::from_millis(250),
            fault_tenants: 4,
            ..ControlPlaneConfig::default()
        }
    }

    #[test]
    fn tiny_bench_holds() {
        let r = run(&tiny());
        assert!(r.conserved, "conservation: {r:?}");
        assert_eq!(r.client_errors, 0, "daemon stalled: {r:?}");
        assert_eq!(r.digest_before, r.digest_after, "recovery diverged");
        assert!(r.faulted_conserved);
        assert!(r.faulted_retries > 0, "fault injection was inert");
    }

    #[test]
    fn json_is_well_formed() {
        let cfg = tiny();
        let json = render_json(&cfg, &run(&cfg));
        assert!(json.contains("\"benchmark\": \"control_plane\""));
        assert_eq!(json.matches("\"holds\"").count(), 1);
        assert!(json.contains("\"recovery_bit_identical\""));
    }
}
