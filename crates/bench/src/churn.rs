//! Extension experiment: online tenant churn — incremental vs full
//! interface re-selection, and the disturbance a live transition causes.
//!
//! Two measurements, both exported to `results/BENCH_admission.json`:
//!
//! 1. **Admission cost.** A seeded stream of join/leave/update requests is
//!    admission-tested twice per event: with the path-local
//!    [`IncrementalSelection`] cache and with a from-scratch
//!    [`full_selection`] over the whole tree. The two must make
//!    bit-identical admission decisions (asserted, not assumed); the sweep
//!    reports the wall-clock gap and the SEs analyzed per event, per tree
//!    depth.
//! 2. **Transition disturbance.** A live [`System`] over the real
//!    BlueScale fabric runs a [`ChurnPlan`]; the mode-change protocol's
//!    promise is that already-admitted tenants never miss a deadline
//!    across a transition, so the report carries the deadline misses of
//!    every *non-churned* client (expected: zero) next to the staged
//!    transition latencies.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::system::System;
use bluescale_rt::incremental::{full_selection, IncrementalSelection, InterfaceTree};
use bluescale_rt::interface::root_admissible;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry};
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use std::time::Instant;

/// Configuration of the churn sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Client counts to sweep (each maps to a tree depth).
    pub client_counts: Vec<usize>,
    /// Churn events admission-tested per point.
    pub events: usize,
    /// Master seed.
    pub seed: u64,
    /// Horizon of the live disturbance run, in cycles.
    pub horizon: Cycle,
}

impl Default for ChurnConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![16, 64, 256],
            events: 40,
            seed: 0xC4A2,
            horizon: 30_000,
        }
    }
}

/// One admission-cost sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPoint {
    /// Number of clients.
    pub clients: usize,
    /// Tree depth (SE levels).
    pub levels: usize,
    /// Churn events tested.
    pub events: usize,
    /// Events admitted (identical under both re-selection strategies).
    pub admitted: usize,
    /// Events rejected (infeasible selection or inadmissible root).
    pub rejected: usize,
    /// Mean wall-clock microseconds per incremental admission test.
    pub incremental_us: f64,
    /// Mean wall-clock microseconds per full re-selection.
    pub full_us: f64,
    /// Mean SEs analyzed per incremental event (≤ tree depth: a probe
    /// rejected at the leaf never climbs further).
    pub ses_incremental: f64,
    /// SEs analyzed per full re-selection (the whole tree).
    pub ses_full: u64,
}

impl ChurnPoint {
    /// Wall-clock speed-up of the incremental path.
    pub fn speedup(&self) -> f64 {
        self.full_us / self.incremental_us.max(1e-9)
    }
}

/// Disturbance of a live churn run over the BlueScale fabric.
#[derive(Debug, Clone, PartialEq)]
pub struct DisturbanceReport {
    /// Clients in the live system.
    pub clients: usize,
    /// Reconfigurations applied.
    pub reconfigurations: u64,
    /// Requests admitted by the online admission test.
    pub admitted: u64,
    /// Requests rejected and rolled back.
    pub rejected: u64,
    /// Cycles spent waiting for replenishment boundaries, summed over all
    /// staged parameter swaps.
    pub transition_cycles: u64,
    /// Deadline misses among clients the plan never touched (the
    /// zero-disturbance claim: this must be 0).
    pub missed_untouched: u64,
    /// Total requests issued.
    pub issued: u64,
}

/// `n` single-task clients at ~10% combined utilization: feasible at every
/// tree depth, with headroom for churn to be admitted against.
fn light_sets(n: usize, rng: &mut SimRng) -> Vec<TaskSet> {
    let base = 25 * n as u64;
    (0..n)
        .map(|_| {
            let period = base + 10 * rng.range_u64(0, 8);
            let wcet = 1 + rng.range_u64(0, 3);
            TaskSet::new(vec![Task::new(0, period, wcet).expect("valid task")])
                .expect("single task cannot collide")
        })
        .collect()
}

/// Draws the next churn request: a mix of feasible retasks, leaves, and
/// occasional hogs that must be rejected.
fn draw_event(clients: usize, rng: &mut SimRng) -> (usize, TaskSet) {
    let client = rng.range_usize(0, clients);
    let tasks = match rng.range_u64(0, 8) {
        0 => TaskSet::empty(), // leave
        1 => {
            // A hog demanding most of one SE: the admission test must
            // reject it (and both strategies must agree it does).
            TaskSet::new(vec![Task::new(0, 10, 9).expect("valid task")]).expect("valid set")
        }
        _ => {
            let base = 25 * clients as u64;
            let period = base + 10 * rng.range_u64(0, 8);
            TaskSet::new(vec![
                Task::new(0, period, 1 + rng.range_u64(0, 3)).expect("valid task")
            ])
            .expect("valid set")
        }
    };
    (client, tasks)
}

/// Admission decision of a from-scratch re-selection over `sets` with
/// `client` retasked: feasible selection everywhere *and* an exactly
/// admissible root.
fn full_decision(
    sets: &[TaskSet],
    client: usize,
    tasks: &TaskSet,
    branch: usize,
) -> (bool, Option<InterfaceTree>) {
    let mut trial = sets.to_vec();
    trial[client] = tasks.clone();
    match full_selection(&trial, branch, 1) {
        Ok(tree) => {
            let root: Vec<_> = tree[0][0].iter().flatten().copied().collect();
            if root_admissible(&root) {
                (true, Some(tree))
            } else {
                (false, None)
            }
        }
        Err(_) => (false, None),
    }
}

/// Runs the admission-cost sweep.
///
/// # Panics
///
/// Panics if the incremental and full strategies ever disagree on an
/// admission decision, or on the selected interfaces after a commit —
/// the sweep's timings are only meaningful while the two are equivalent.
pub fn run(config: &ChurnConfig) -> Vec<ChurnPoint> {
    let branch = 4;
    let mut master = SimRng::seed_from(config.seed);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut rng = master.fork();
            let mut sets = light_sets(clients, &mut rng);
            let mut inc = IncrementalSelection::new(sets.clone(), branch, 1)
                .expect("light workload is feasible");
            let (mut admitted, mut rejected) = (0usize, 0usize);
            let (mut inc_total, mut full_total) = (0.0f64, 0.0f64);
            for _ in 0..config.events {
                let (client, tasks) = draw_event(clients, &mut rng);

                let start = Instant::now();
                let inc_admitted = inc.admit_update(client, tasks.clone()).unwrap_or(false);
                inc_total += start.elapsed().as_secs_f64() * 1e6;

                let start = Instant::now();
                let (full_admitted, full_tree) = full_decision(&sets, client, &tasks, branch);
                full_total += start.elapsed().as_secs_f64() * 1e6;

                assert_eq!(
                    inc_admitted, full_admitted,
                    "strategies disagree on client {client}"
                );
                if inc_admitted {
                    admitted += 1;
                    sets[client] = tasks;
                    assert_eq!(
                        inc.interfaces(),
                        &full_tree.expect("admitted events carry a tree"),
                        "committed interfaces diverged on client {client}"
                    );
                } else {
                    rejected += 1;
                }
            }
            let ses_full = inc
                .interfaces()
                .iter()
                .map(|level| level.len() as u64)
                .sum::<u64>();
            ChurnPoint {
                clients,
                levels: inc.levels(),
                events: config.events,
                admitted,
                rejected,
                incremental_us: inc_total / config.events as f64,
                full_us: full_total / config.events as f64,
                ses_incremental: inc.ses_analyzed() as f64 / config.events as f64,
                ses_full,
            }
        })
        .collect()
}

/// Runs the live disturbance measurement: a [`ChurnPlan`] of feasible
/// retasks against the real fabric, reporting the misses of every client
/// the plan never touched.
pub fn run_disturbance(config: &ChurnConfig) -> DisturbanceReport {
    let clients = 16;
    let mut rng = SimRng::seed_from(config.seed ^ 0xD157);
    let sets = light_sets(clients, &mut rng);
    let mut bs = BlueScaleConfig::for_clients(clients);
    bs.work_conserving = true;
    let ic = BlueScaleInterconnect::new(bs, &sets).expect("light workload builds");
    let mut sys = System::new(Box::new(ic), &sets);

    // Churn clients 3 and 7 only; every other client must ride through
    // all four transitions without a single miss.
    let churned = [3u32, 7u32];
    let mut plan = ChurnPlan::new(config.seed);
    let retask = TaskSet::new(vec![
        Task::new(0, 25 * clients as u64, 2).expect("valid task")
    ])
    .expect("valid set");
    plan.push(
        config.horizon / 5,
        churned[0],
        ChurnKind::UpdateTasks {
            tasks: retask.clone(),
        },
    );
    plan.push(2 * config.horizon / 5, churned[1], ChurnKind::Leave);
    plan.push(
        3 * config.horizon / 5,
        churned[1],
        ChurnKind::Join {
            tasks: sets[churned[1] as usize].clone(),
        },
    );
    plan.push(
        4 * config.horizon / 5,
        churned[0],
        ChurnKind::UpdateTasks {
            tasks: sets[churned[0] as usize].clone(),
        },
    );
    sys.set_churn_plan(plan);
    let m = sys.run(config.horizon);
    let missed_untouched = sys
        .per_client_metrics()
        .iter()
        .enumerate()
        .filter(|(c, _)| !churned.contains(&(*c as u32)))
        .map(|(_, m)| m.missed())
        .sum();
    // Churn accounting is single-owner (harness registry), so the merged
    // view reads the same totals a harness-only read would.
    let reg = sys.merged_registry();
    DisturbanceReport {
        clients,
        reconfigurations: reg.counter(ComponentId::System, Counter::Reconfigurations),
        admitted: reg.counter(ComponentId::System, Counter::Admitted),
        rejected: reg.counter(ComponentId::System, Counter::AdmissionRejected),
        transition_cycles: reg.counter(ComponentId::System, Counter::TransitionCycles),
        missed_untouched,
        issued: m.issued(),
    }
}

/// Records the sweep into a registry for the JSON snapshot
/// (`results/BENCH_admission.json`).
pub fn record_into(
    registry: &mut MetricsRegistry,
    points: &[ChurnPoint],
    disturbance: &DisturbanceReport,
) {
    for (i, p) in points.iter().enumerate() {
        let series = ComponentId::Series(i as u16);
        registry.set_gauge(series, "clients", p.clients as f64);
        registry.set_gauge(series, "levels", p.levels as f64);
        registry.set_gauge(series, "incremental_us", p.incremental_us);
        registry.set_gauge(series, "full_us", p.full_us);
        registry.set_gauge(series, "speedup", p.speedup());
        registry.set_gauge(series, "ses_incremental", p.ses_incremental);
        registry.set_gauge(series, "ses_full", p.ses_full as f64);
        registry.add(series, Counter::Admitted, p.admitted as u64);
        registry.add(series, Counter::AdmissionRejected, p.rejected as u64);
        registry.add(series, Counter::Trials, p.events as u64);
    }
    let sys = ComponentId::System;
    registry.add(sys, Counter::Reconfigurations, disturbance.reconfigurations);
    registry.add(sys, Counter::Admitted, disturbance.admitted);
    registry.add(sys, Counter::AdmissionRejected, disturbance.rejected);
    registry.add(
        sys,
        Counter::TransitionCycles,
        disturbance.transition_cycles,
    );
    registry.add(sys, Counter::Missed, disturbance.missed_untouched);
    registry.set_gauge(sys, "disturbance_issued", disturbance.issued as f64);
}

/// Renders both measurements as markdown.
pub fn render(
    config: &ChurnConfig,
    points: &[ChurnPoint],
    disturbance: &DisturbanceReport,
) -> String {
    let mut s = format!(
        "# Extension: online churn — incremental admission vs full \
         re-selection ({} events/point)\n\n",
        config.events
    );
    s.push_str(
        "| Clients | Depth | Admitted | Rejected | SEs/event (inc) | \
         SEs/event (full) | Incremental (µs) | Full (µs) | Speed-up |\n",
    );
    s.push_str("|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n");
    for p in points {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {:.1} | {} | {:.1} | {:.1} | {:.1}× |\n",
            p.clients,
            p.levels,
            p.admitted,
            p.rejected,
            p.ses_incremental,
            p.ses_full,
            p.incremental_us,
            p.full_us,
            p.speedup(),
        ));
    }
    s.push_str(&format!(
        "\nLive transition disturbance ({} clients, horizon {}): \
         {} reconfigurations ({} admitted, {} rejected), {} staged \
         transition cycles, **{} deadline misses among untouched clients** \
         over {} requests.\n",
        disturbance.clients,
        config.horizon,
        disturbance.reconfigurations,
        disturbance.admitted,
        disturbance.rejected,
        disturbance.transition_cycles,
        disturbance.missed_untouched,
        disturbance.issued,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ChurnConfig {
        ChurnConfig {
            client_counts: vec![16, 64],
            events: 12,
            seed: 9,
            horizon: 10_000,
        }
    }

    #[test]
    fn strategies_agree_and_incremental_analyzes_fewer_ses() {
        // `run` itself asserts decision and interface equality per event.
        let pts = run(&tiny());
        for p in &pts {
            assert_eq!(p.admitted + p.rejected, p.events);
            assert!(p.admitted > 0, "some churn must be admitted");
            assert!(p.rejected > 0, "hogs must be rejected");
            assert!(
                p.ses_incremental < p.ses_full as f64,
                "path re-analysis must beat the whole tree"
            );
        }
        // 4× the clients adds one level to the path but 4× the tree.
        assert_eq!(pts[1].levels, pts[0].levels + 1);
        assert!(pts[1].ses_full > 4 * pts[0].ses_full);
    }

    #[test]
    fn live_churn_leaves_untouched_clients_unharmed() {
        let d = run_disturbance(&tiny());
        assert_eq!(d.missed_untouched, 0, "transitions must not disturb");
        assert_eq!(d.admitted, 4, "all four planned events are feasible");
        assert_eq!(d.rejected, 0);
        assert!(d.transition_cycles > 0, "swaps wait for the boundary");
    }

    #[test]
    fn render_reports_speedup_and_disturbance() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg), &run_disturbance(&cfg));
        assert!(text.contains("Speed-up"));
        assert!(text.contains("deadline misses among untouched"));
    }
}
