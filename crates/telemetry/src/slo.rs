//! Per-tenant SLO derivation at flush boundaries.
//!
//! The [`SloTracker`] folds each [`EpochDelta`] into per-tenant rings of
//! recent epochs and derives three windowed values:
//!
//! * `slo_miss_rate` — deadline misses per issued request over the ring;
//! * `slo_p99_normalized` — the 99th percentile of normalized response
//!   time (latency / deadline window) over the ring's raw observations;
//! * `slo_overrun_rate` — budget overruns per completed request over the
//!   ring (overruns are attributed to tenants through the leaf-port map
//!   when one is configured, and through `Client`-scoped counters always).
//!
//! Values are derived from the stream and *emitted into* the stream; they
//! are never written back into a registry, so SLO tracking cannot perturb
//! the simulation or its end-of-run snapshot.

use crate::delta::{EpochDelta, SloRecord};
use bluescale_sim::metrics::{ComponentId, Counter, SampleKind};
use std::collections::{BTreeMap, VecDeque};

/// Maps fabric leaf-port components to tenant (client) ids.
///
/// In a BlueScale tree with `branch`-way SEs, client `c` attaches to the
/// leaf SE at `(depth, c / branch)`, port `c % branch`; the inverse is
/// `client = order * branch + port`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeafPortMap {
    /// Tree depth of the leaf SEs (`levels - 1`).
    pub depth: usize,
    /// Fan-in of each SE.
    pub branch: usize,
}

impl LeafPortMap {
    fn client_of(&self, component: ComponentId) -> Option<u32> {
        match component {
            ComponentId::Port { depth, order, port } if depth == self.depth => {
                Some((order * self.branch + port) as u32)
            }
            _ => None,
        }
    }
}

/// SLO derivation parameters.
#[derive(Debug, Clone, Copy)]
pub struct SloConfig {
    /// Number of recent epochs each tenant's window covers.
    pub window_epochs: usize,
    /// Optional attribution of fabric per-port budget overruns to tenants.
    pub leaf_ports: Option<LeafPortMap>,
}

impl Default for SloConfig {
    fn default() -> Self {
        Self {
            window_epochs: 16,
            leaf_ports: None,
        }
    }
}

/// One tenant's slice of one epoch.
#[derive(Debug, Default, Clone)]
struct EpochPoint {
    issued: i64,
    completed: i64,
    missed: i64,
    overruns: i64,
    normalized: Vec<f64>,
}

/// Windowed per-tenant SLO state (see the module docs).
#[derive(Debug)]
pub struct SloTracker {
    config: SloConfig,
    rings: BTreeMap<u32, VecDeque<EpochPoint>>,
}

impl SloTracker {
    /// Creates a tracker with empty rings.
    pub fn new(config: SloConfig) -> Self {
        let config = SloConfig {
            window_epochs: config.window_epochs.max(1),
            ..config
        };
        Self {
            config,
            rings: BTreeMap::new(),
        }
    }

    /// Folds one epoch into the rings and derives SLO records for every
    /// tenant active in the current window. Call once per flush, in epoch
    /// order, *before* handing the delta to sinks.
    pub fn on_epoch(&mut self, delta: &EpochDelta) -> Vec<SloRecord> {
        // Gather this epoch's per-tenant slice from the delta.
        let mut points: BTreeMap<u32, EpochPoint> = BTreeMap::new();
        for c in &delta.counters {
            let (tenant, field): (u32, fn(&mut EpochPoint) -> &mut i64) =
                match (c.component, c.counter) {
                    (ComponentId::Client(t), Counter::Issued) => (t, |p| &mut p.issued),
                    (ComponentId::Client(t), Counter::Completed) => (t, |p| &mut p.completed),
                    (ComponentId::Client(t), Counter::Missed) => (t, |p| &mut p.missed),
                    (ComponentId::Client(t), Counter::BudgetOverruns) => (t, |p| &mut p.overruns),
                    (component, Counter::BudgetOverruns) => {
                        match self.config.leaf_ports.and_then(|m| m.client_of(component)) {
                            Some(t) => (t, |p| &mut p.overruns),
                            None => continue,
                        }
                    }
                    _ => continue,
                };
            *field(points.entry(tenant).or_default()) += c.delta;
        }
        for w in &delta.windows {
            if let (ComponentId::Client(t), SampleKind::NormalizedResponse) = (w.component, w.kind)
            {
                points
                    .entry(t)
                    .or_default()
                    .normalized
                    .extend_from_slice(&w.values);
            }
        }

        // Advance every ring (tenants idle this epoch age out too).
        for &tenant in points.keys() {
            self.rings.entry(tenant).or_default();
        }
        let window = self.config.window_epochs;
        for (tenant, ring) in &mut self.rings {
            let point = points.remove(tenant).unwrap_or_default();
            if ring.len() >= window {
                ring.pop_front();
            }
            ring.push_back(point);
        }

        // Derive windowed values for tenants with any activity in window.
        let mut out = Vec::new();
        self.rings.retain(|&tenant, ring| {
            let issued: i64 = ring.iter().map(|p| p.issued).sum();
            let completed: i64 = ring.iter().map(|p| p.completed).sum();
            let missed: i64 = ring.iter().map(|p| p.missed).sum();
            let overruns: i64 = ring.iter().map(|p| p.overruns).sum();
            let norm_count: usize = ring.iter().map(|p| p.normalized.len()).sum();
            if issued == 0 && completed == 0 && missed == 0 && overruns == 0 && norm_count == 0 {
                // Fully idle across the whole window: drop the ring so a
                // departed tenant stops emitting (and stops costing memory).
                return false;
            }
            out.push(SloRecord {
                tenant,
                metric: "slo_miss_rate",
                value: ratio(missed, issued),
            });
            out.push(SloRecord {
                tenant,
                metric: "slo_p99_normalized",
                value: p99(ring),
            });
            out.push(SloRecord {
                tenant,
                metric: "slo_overrun_rate",
                value: ratio(overruns, completed),
            });
            true
        });
        out
    }
}

fn ratio(num: i64, den: i64) -> f64 {
    if den <= 0 {
        0.0
    } else {
        (num.max(0) as f64) / den as f64
    }
}

/// Nearest-rank p99 over the ring's normalized-response observations
/// (the same `⌈p/100·n⌉` rule as [`bluescale_sim::stats::Samples`]).
fn p99(ring: &VecDeque<EpochPoint>) -> f64 {
    let mut all: Vec<f64> = ring
        .iter()
        .flat_map(|p| p.normalized.iter().copied())
        .collect();
    if all.is_empty() {
        return 0.0;
    }
    all.sort_by(|a, b| a.partial_cmp(b).expect("NaN in normalized response"));
    let n = all.len();
    let rank = (99.0 * n as f64 / 100.0).ceil() as usize;
    all[rank.clamp(1, n) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::delta::{CounterDelta, SampleRecord};
    use bluescale_sim::metrics::Counter;

    fn delta_with(
        epoch: u64,
        counters: Vec<CounterDelta>,
        windows: Vec<SampleRecord>,
    ) -> EpochDelta {
        EpochDelta {
            epoch,
            cycle: epoch * 100,
            counters,
            gauges: Vec::new(),
            stats: Vec::new(),
            windows,
            slo: Vec::new(),
        }
    }

    fn counter(tenant: u32, counter: Counter, delta: i64) -> CounterDelta {
        CounterDelta {
            source: "harness",
            component: ComponentId::Client(tenant),
            counter,
            delta,
            total: delta.max(0) as u64,
        }
    }

    #[test]
    fn miss_rate_is_windowed() {
        let mut t = SloTracker::new(SloConfig {
            window_epochs: 2,
            leaf_ports: None,
        });
        let r0 = t.on_epoch(&delta_with(
            0,
            vec![
                counter(0, Counter::Issued, 10),
                counter(0, Counter::Missed, 5),
            ],
            vec![],
        ));
        let miss = r0.iter().find(|r| r.metric == "slo_miss_rate").unwrap();
        assert_eq!(miss.value, 0.5);
        // A clean epoch halves the windowed rate...
        let r1 = t.on_epoch(&delta_with(
            1,
            vec![counter(0, Counter::Issued, 10)],
            vec![],
        ));
        let miss = r1.iter().find(|r| r.metric == "slo_miss_rate").unwrap();
        assert_eq!(miss.value, 0.25);
        // ...and once the bad epoch ages out of the 2-epoch window the
        // rate recovers completely.
        let r2 = t.on_epoch(&delta_with(
            2,
            vec![counter(0, Counter::Issued, 10)],
            vec![],
        ));
        let miss = r2.iter().find(|r| r.metric == "slo_miss_rate").unwrap();
        assert_eq!(miss.value, 0.0);
    }

    #[test]
    fn idle_tenants_age_out_entirely() {
        let mut t = SloTracker::new(SloConfig {
            window_epochs: 2,
            leaf_ports: None,
        });
        t.on_epoch(&delta_with(0, vec![counter(3, Counter::Issued, 1)], vec![]));
        // Two fully idle epochs: the ring drains and the tenant vanishes.
        t.on_epoch(&delta_with(1, vec![], vec![]));
        let r = t.on_epoch(&delta_with(2, vec![], vec![]));
        assert!(r.is_empty());
    }

    #[test]
    fn p99_over_ring_window() {
        let mut t = SloTracker::new(SloConfig::default());
        let window = SampleRecord {
            source: "harness",
            component: ComponentId::Client(1),
            kind: SampleKind::NormalizedResponse,
            values: (1..=100).map(|v| v as f64 / 100.0).collect(),
            dropped: 0,
        };
        let r = t.on_epoch(&delta_with(0, vec![], vec![window]));
        let p99 = r.iter().find(|r| r.metric == "slo_p99_normalized").unwrap();
        assert_eq!(p99.tenant, 1);
        assert_eq!(p99.value, 0.99);
    }

    #[test]
    fn leaf_port_map_attributes_overruns() {
        let mut t = SloTracker::new(SloConfig {
            window_epochs: 4,
            leaf_ports: Some(LeafPortMap {
                depth: 2,
                branch: 4,
            }),
        });
        let overrun = CounterDelta {
            source: "fabric",
            component: ComponentId::Port {
                depth: 2,
                order: 1,
                port: 3,
            },
            counter: Counter::BudgetOverruns,
            delta: 2,
            total: 2,
        };
        // order 1 * branch 4 + port 3 = client 7.
        let r = t.on_epoch(&delta_with(
            0,
            vec![counter(7, Counter::Completed, 10), overrun],
            vec![],
        ));
        let rate = r.iter().find(|r| r.metric == "slo_overrun_rate").unwrap();
        assert_eq!(rate.tenant, 7);
        assert_eq!(rate.value, 0.2);
    }
}
