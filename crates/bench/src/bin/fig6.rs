//! Regenerates the paper's Fig 6 (blocking latency and deadline miss
//! ratio under synthetic traffic).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin fig6 -- [--clients 16,64] [--trials N] [--horizon N] [--json DIR]`
//!
//! With `--json DIR`, a metrics snapshot `fig6{_N}_metrics.json` is written
//! per panel (series indices follow `InterconnectKind::ALL` order).
//!
//! Paper-scale statistics: `--trials 200`.

use bluescale_bench::fig6::{render, run_with_threads_registry, Fig6Config};
use bluescale_bench::{arg_u64, arg_usize_list, arg_value, export};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let clients = arg_usize_list(&args, "--clients", &[16, 64]);
    let json_dir = arg_value(&args, "--json");
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    for n in clients {
        let mut config = Fig6Config::new(n);
        config.trials = arg_u64(&args, "--trials", config.trials);
        config.horizon = arg_u64(&args, "--horizon", config.horizon);
        config.phased = args.iter().any(|a| a == "--phased");
        let (rows, mut registry) = run_with_threads_registry(&config, threads);
        println!("{}", render(&config, &rows));
        if let Some(dir) = &json_dir {
            let name = if n == 16 {
                "fig6_metrics.json".to_owned()
            } else {
                format!("fig6_{n}_metrics.json")
            };
            let path = Path::new(dir).join(name);
            match export::write_snapshot(&path, &mut registry) {
                Ok(()) => eprintln!("wrote {}", path.display()),
                Err(e) => eprintln!("failed to write {}: {e}", path.display()),
            }
        }
    }
}
