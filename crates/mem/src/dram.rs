//! DRAM organization and timing parameters.

/// Row-buffer management policy.
///
/// Real-time memory controllers (e.g. the predictable controllers the
/// paper's related work builds on) often run *closed-page*: the row is
/// precharged after every access, making every service take the same,
/// worst-case-free duration — determinism bought with average bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Keep rows open: hits are fast, conflicts slow (higher average
    /// throughput, service-time jitter).
    #[default]
    Open,
    /// Precharge after every access: every request costs
    /// [`DramConfig::row_miss_cycles`], deterministically.
    Closed,
}

/// Timing and geometry of the DRAM module behind the memory controller.
///
/// Defaults model a single-rank DDR3-style module at the interconnect's
/// 100 MHz clock: a row-buffer hit costs 4 interconnect cycles, a conflict
/// 12, with 8 banks and 8 KiB rows — coarse, but the interconnect
/// experiments only depend on the *service rate*, which these defaults put
/// at the same order as the paper's platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Cycles to serve a request that hits the open row of its bank.
    pub row_hit_cycles: u64,
    /// Cycles to serve a request that must precharge + activate first.
    pub row_miss_cycles: u64,
    /// Number of banks (row buffers).
    pub banks: u32,
    /// Row size in bytes (determines how many consecutive addresses hit).
    pub row_bytes: u64,
    /// Row-buffer management policy.
    pub page_policy: PagePolicy,
}

impl DramConfig {
    /// A flat-latency configuration: every request takes `cycles`. Useful
    /// for experiments that must not be confounded by row-buffer locality.
    pub fn flat(cycles: u64) -> Self {
        Self {
            row_hit_cycles: cycles,
            row_miss_cycles: cycles,
            ..Self::default()
        }
    }

    /// A closed-page real-time configuration: deterministic
    /// `row_miss_cycles` per access (default timings otherwise).
    pub fn closed_page() -> Self {
        Self {
            page_policy: PagePolicy::Closed,
            ..Self::default()
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        Self {
            row_hit_cycles: 4,
            row_miss_cycles: 12,
            banks: 8,
            row_bytes: 8192,
            page_policy: PagePolicy::Open,
        }
    }
}

/// Maps physical addresses to `(bank, row)` using row-interleaving: banks
/// rotate every row so that sequential streams spread across banks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    banks: u32,
    row_bytes: u64,
}

impl AddressMap {
    /// Builds the map for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration has zero banks or a zero row size.
    pub fn new(config: &DramConfig) -> Self {
        assert!(config.banks > 0, "at least one bank required");
        assert!(config.row_bytes > 0, "row size must be positive");
        Self {
            banks: config.banks,
            row_bytes: config.row_bytes,
        }
    }

    /// Number of banks this map distributes rows across.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Decodes an address into `(bank, row)`.
    pub fn decode(&self, addr: u64) -> (u32, u64) {
        let row_index = addr / self.row_bytes;
        let bank = (row_index % self.banks as u64) as u32;
        let row = row_index / self.banks as u64;
        (bank, row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sane() {
        let c = DramConfig::default();
        assert!(c.row_hit_cycles < c.row_miss_cycles);
        assert!(c.banks > 0);
    }

    #[test]
    fn flat_equalizes_latencies() {
        let c = DramConfig::flat(6);
        assert_eq!(c.row_hit_cycles, 6);
        assert_eq!(c.row_miss_cycles, 6);
    }

    #[test]
    fn closed_page_config() {
        let c = DramConfig::closed_page();
        assert_eq!(c.page_policy, PagePolicy::Closed);
        assert_eq!(DramConfig::default().page_policy, PagePolicy::Open);
    }

    #[test]
    fn same_row_same_decode() {
        let map = AddressMap::new(&DramConfig::default());
        assert_eq!(map.decode(0), map.decode(8191));
        assert_ne!(map.decode(0), map.decode(8192));
    }

    #[test]
    fn rows_interleave_across_banks() {
        let cfg = DramConfig {
            banks: 4,
            row_bytes: 1024,
            ..DramConfig::default()
        };
        let map = AddressMap::new(&cfg);
        let banks: Vec<u32> = (0..4).map(|i| map.decode(i * 1024).0).collect();
        assert_eq!(banks, vec![0, 1, 2, 3]);
        // Fifth row wraps to bank 0 with the next row index.
        assert_eq!(map.decode(4 * 1024), (0, 1));
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let cfg = DramConfig {
            banks: 0,
            ..DramConfig::default()
        };
        let _ = AddressMap::new(&cfg);
    }
}
