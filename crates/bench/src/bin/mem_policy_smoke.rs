//! Fast memory-policy smoke check for `scripts/check.sh`.
//!
//! Two properties, asserted in seconds:
//!
//! 1. **Conservation under every active policy.** Each of the three
//!    active policies (calibrated per-bank regulation, blacklisting,
//!    deterministic memory) drives one BlueScale system through all five
//!    fault classes at once; every issued request must have completed,
//!    still be queued, or be guard-tracked — a deferred grant stays in
//!    its RAB, so deferral can never leak requests.
//! 2. **Victims miss-free under regulation.** On AXI-IC^RT (no budget
//!    gating of its own) an 8× rogue flood measurably degrades victims
//!    unregulated, while the declared-demand-calibrated per-bank budget
//!    keeps every victim miss-free.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin mem_policy_smoke`

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_baselines::AxiIcRt;
use bluescale_bench::mem_policy::{pick_target, policies, regulation_for, scenario_plan};
use bluescale_interconnect::guard::{GuardConfig, WatchdogConfig};
use bluescale_interconnect::system::System;
use bluescale_mem::{DramConfig, MemPolicyConfig};
use bluescale_sim::fault::{FaultClass, FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0x3E9;
const HORIZON: u64 = 6_000;
const WINDOW: u64 = 1_000;

fn five_fault_plan() -> FaultPlan {
    let mut plan = FaultPlan::new(SEED ^ 0xF001);
    plan.push(
        FaultKind::RogueDemand {
            client: 1,
            factor: 4,
        },
        FaultWindow::new(500, 3_000),
    )
    .push(
        FaultKind::RequestBurst {
            client: 2,
            requests: 24,
        },
        FaultWindow::new(1_000, 1_001),
    )
    .push(
        FaultKind::StuckGrant {
            depth: 1,
            order: 0,
            port: 0,
        },
        FaultWindow::new(1_500, 1_700),
    )
    .push(
        FaultKind::DramJitter {
            bank: 0,
            max_extra_cycles: 4,
        },
        FaultWindow::new(0, 4_000),
    )
    .push(
        FaultKind::DropResponse {
            client: 3,
            every: 2,
        },
        FaultWindow::new(0, 4_000),
    );
    plan
}

fn main() {
    let dram = DramConfig::default();
    let mut rng = SimRng::seed_from(SEED);
    let synthetic = SyntheticConfig {
        util_lo: 0.10,
        util_hi: 0.125,
        ..SyntheticConfig::fig6(8)
    };
    let sets = generate(&synthetic, &mut rng);

    // Part 1: conservation under each active policy, all five fault
    // classes at once, on BlueScale.
    for policy in policies(&sets, WINDOW, dram.banks).into_iter().skip(1) {
        let mut config = BlueScaleConfig::for_clients(sets.len());
        config.work_conserving = true;
        config.dram = Some(dram);
        config.mem_policy = policy.clone();
        let ic = BlueScaleInterconnect::new(config, &sets).expect("valid workload");
        let mut sys = System::new(Box::new(ic), &sets);
        sys.set_bank_partition(dram.banks, dram.row_bytes);
        sys.set_fault_plan(five_fault_plan());
        sys.set_guards(GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: 4_096,
                max_retries: 4,
            }),
            quarantine: None,
        })
        .expect("watchdog timeout clears the deadline windows");

        let total = sys.run(HORIZON);
        let outstanding = sys.guard_outstanding() as u64;
        let merged = sys.merged_registry();
        let injected = merged.counter(ComponentId::System, Counter::FaultsInjected);
        let deferred = merged.counter(ComponentId::Memory, Counter::PolicyDeferred);
        println!(
            "mem policy smoke [{}]: issued={} completed={} backlog={} \
             outstanding={} deferred={} faults_injected={}",
            policy.name(),
            total.issued(),
            total.completed(),
            total.backlog(),
            outstanding,
            deferred,
            injected,
        );
        assert!(injected > 0, "[{}] fault plan never fired", policy.name());
        assert_eq!(
            total.issued(),
            total.completed() + total.backlog() + outstanding,
            "[{}] conservation violated: issued != completed + backlog + \
             outstanding",
            policy.name()
        );
    }

    // Part 2: victims miss-free under regulation on AXI-IC^RT, while the
    // unregulated controller measurably degrades them.
    let target = pick_target(&sets);
    let regulation = regulation_for(&sets, WINDOW, dram.banks);
    let mut victim_missed = Vec::new();
    for policy in [MemPolicyConfig::Unregulated, regulation] {
        let ic = AxiIcRt::with_dram_policy(sets.len(), 8, dram, &policy);
        let mut sys = System::new(Box::new(ic), &sets);
        sys.set_bank_partition(dram.banks, dram.row_bytes);
        sys.set_fault_plan(scenario_plan(
            FaultClass::RogueDemand,
            HORIZON,
            SEED,
            target,
        ));
        sys.run(HORIZON);
        let missed: u64 = sys
            .per_client_metrics()
            .iter()
            .enumerate()
            .filter(|&(c, _)| c != target as usize)
            .map(|(_, m)| m.missed())
            .sum();
        println!(
            "mem policy smoke [axi rogue/{}]: victim_missed={}",
            policy.name(),
            missed
        );
        victim_missed.push(missed);
    }
    assert!(
        victim_missed[0] > 0,
        "the unregulated rogue must measurably degrade AXI victims"
    );
    assert_eq!(
        victim_missed[1], 0,
        "per-bank regulation must keep AXI victims miss-free under the rogue"
    );
    println!("mem policy smoke: conservation + regulated isolation hold");
}
