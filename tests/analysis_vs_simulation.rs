//! The reproduction's central soundness check: when the compositional
//! analysis admits a system (`CompositionReport::schedulable`), the
//! simulated hardware meets every deadline; and the analytic quantities
//! (root bandwidth, interfaces) are consistent with observed behaviour.

use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::rt::task::TaskSet;
use bluescale_repro::sim::rng::SimRng;
use bluescale_repro::workload::casestudy::{generate, CaseStudyConfig};
use bluescale_repro::workload::synthetic::{generate as synth, SyntheticConfig};
use bluescale_repro::workload::total_utilization;

fn build(sets: &[TaskSet], work_conserving: bool) -> BlueScaleInterconnect {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = work_conserving;
    BlueScaleInterconnect::new(config, sets).expect("build succeeds")
}

#[test]
fn schedulable_case_studies_meet_all_deadlines() {
    for seed in 0..5u64 {
        for &target in &[0.3, 0.5, 0.7] {
            let mut rng = SimRng::seed_from(1000 + seed);
            let sets = generate(&CaseStudyConfig::fig7(16, target), &mut rng);
            let ic = build(&sets, true);
            if !ic.composition().schedulable {
                continue; // admission declined: no guarantee to check
            }
            let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &sets);
            let m = system.run(30_000);
            assert!(
                m.success(),
                "seed {seed}, target {target}: schedulable composition \
                 missed {} of {} deadlines",
                m.missed(),
                m.issued()
            );
        }
    }
}

#[test]
fn strict_budget_gating_also_meets_deadlines_when_admitted() {
    // The guarantee must hold even without the work-conserving bonus
    // supply — budgets alone are sufficient when admission passes.
    for seed in 0..3u64 {
        let mut rng = SimRng::seed_from(2000 + seed);
        let sets = generate(&CaseStudyConfig::fig7(16, 0.4), &mut rng);
        let ic = build(&sets, false);
        if !ic.composition().schedulable {
            continue;
        }
        let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &sets);
        let m = system.run(30_000);
        assert!(
            m.success(),
            "seed {seed}: strict gating missed {} of {}",
            m.missed(),
            m.issued()
        );
    }
}

#[test]
fn root_bandwidth_covers_utilization() {
    // Allocated bandwidth can never be below the real demand it serves.
    for seed in 0..10u64 {
        let mut rng = SimRng::seed_from(3000 + seed);
        let sets = synth(&SyntheticConfig::fig6(16), &mut rng);
        let ic = build(&sets, true);
        let comp = ic.composition();
        if comp.analysis_ok {
            assert!(
                comp.root_bandwidth >= total_utilization(&sets) - 1e-9,
                "seed {seed}: root bandwidth {} below utilization {}",
                comp.root_bandwidth,
                total_utilization(&sets)
            );
        }
    }
}

#[test]
fn admission_declines_overload() {
    // Demand beyond the channel: composition must not claim schedulability.
    let mut rng = SimRng::seed_from(7);
    let sets = generate(&CaseStudyConfig::fig7(16, 0.99), &mut rng);
    if total_utilization(&sets) > 0.97 {
        let ic = build(&sets, true);
        // Either the analysis fell back (analysis_ok = false) or the root
        // check failed; in both cases no guarantee is claimed.
        assert!(!ic.composition().schedulable || ic.composition().root_bandwidth <= 1.0 + 1e-9);
    }
}

#[test]
fn interfaces_on_idle_ports_are_absent() {
    // 5 clients on a 16-leaf quadtree: 11 leaf ports idle.
    let sets: Vec<TaskSet> = {
        let mut rng = SimRng::seed_from(5);
        synth(&SyntheticConfig::fig6(5), &mut rng)
    };
    let ic = build(&sets, true);
    let comp = ic.composition();
    let leaf_level = &comp.interfaces[ic.config().levels() - 1];
    let programmed: usize = leaf_level.iter().flatten().filter(|i| i.is_some()).count();
    assert_eq!(programmed, 5, "exactly one interface per real client");
}

#[test]
fn reconfiguration_preserves_running_traffic() {
    // Update a client's tasks mid-run: the interconnect keeps routing
    // in-flight requests and the new parameters take effect.
    let mut rng = SimRng::seed_from(11);
    let sets = synth(&SyntheticConfig::fig6(16), &mut rng);
    let mut ic = build(&sets, true);
    use bluescale_repro::interconnect::{AccessKind, MemoryRequest};
    // Preload traffic on several clients.
    for c in 0..8u32 {
        ic.inject(
            MemoryRequest {
                id: c as u64,
                client: c,
                task: 0,
                addr: 0,
                kind: AccessKind::Read,
                issued_at: 0,
                deadline: 10_000,
                blocked_cycles: 0,
            },
            0,
        )
        .expect("space");
    }
    for now in 0..10 {
        ic.step(now);
    }
    let new_tasks = {
        let mut rng = SimRng::seed_from(12);
        synth(&SyntheticConfig::fig6(1), &mut rng).remove(0)
    };
    ic.update_client_tasks(3, new_tasks)
        .expect("update succeeds");
    let mut done = 0;
    for now in 10..5_000 {
        ic.step(now);
        while ic.pop_response().is_some() {
            done += 1;
        }
    }
    assert_eq!(done, 8, "all preloaded requests completed");
}
