//! Synthetic traffic-generator workloads (paper, Section 6.3).
//!
//! "The workloads on the traffic generators were randomly generated
//! offline, with specified periods and implicit deadlines, bounding the
//! interconnect utilization between 70 % and 90 % in each experimental
//! trial."

use crate::uunifast::{taskset_with_utilization, uunifast};
use bluescale_rt::task::TaskSet;
use bluescale_sim::rng::SimRng;
use std::fmt;

/// Parameters of one synthetic trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SyntheticConfig {
    /// Number of traffic generators (16 or 64 in the paper).
    pub clients: usize,
    /// Lower bound on total interconnect utilization.
    pub util_lo: f64,
    /// Upper bound on total interconnect utilization.
    pub util_hi: f64,
    /// Tasks per client (1..=this, drawn per client).
    pub max_tasks_per_client: usize,
    /// Shortest task period in cycles.
    pub period_min: u64,
    /// Longest task period in cycles.
    pub period_max: u64,
    /// Per-client utilization floor. UUniFast can hand a client an
    /// arbitrarily small share, which would round to a zero-WCET task;
    /// shares below this floor are raised to it. At large client counts
    /// the raises add up and *densify* the workload beyond the drawn
    /// target — [`generate`] tolerates that silently (compatible with the
    /// historical fixed `1e-4` floor); [`try_generate`] reports it as
    /// [`GenerateError::FloorClamped`] instead. Sweeps that care about
    /// sparse large-N workloads should build task sets directly (e.g. the
    /// scalability bench's uniform constructor) rather than go through
    /// UUniFast.
    pub util_floor: f64,
}

impl SyntheticConfig {
    /// The paper's Fig 6 setup for `clients` traffic generators:
    /// interconnect utilization in [0.70, 0.90], up to 3 tasks per client,
    /// periods 200–4000 cycles.
    pub fn fig6(clients: usize) -> Self {
        Self {
            clients,
            util_lo: 0.70,
            util_hi: 0.90,
            max_tasks_per_client: 3,
            period_min: 200,
            period_max: 4000,
            util_floor: 1e-4,
        }
    }
}

/// Why [`try_generate`] refused to produce a trial.
#[derive(Debug, Clone, PartialEq)]
pub enum GenerateError {
    /// UUniFast assigned at least one client a utilization below
    /// [`SyntheticConfig::util_floor`]; honouring the floor would silently
    /// densify the workload above the drawn target.
    FloorClamped {
        /// Clients whose share was below the floor.
        clamped_clients: usize,
        /// Total utilization the floor would have added.
        added_utilization: f64,
    },
}

impl fmt::Display for GenerateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenerateError::FloorClamped {
                clamped_clients,
                added_utilization,
            } => write!(
                f,
                "utilization floor would clamp {clamped_clients} client(s), \
                 silently adding {added_utilization:.6} utilization"
            ),
        }
    }
}

impl std::error::Error for GenerateError {}

/// Generates one synthetic trial: a task set per traffic generator whose
/// combined utilization falls in `[util_lo, util_hi]`.
///
/// Clients whose UUniFast share falls below
/// [`SyntheticConfig::util_floor`] are raised to the floor *silently*
/// (the historical behaviour); use [`try_generate`] to turn that into an
/// error instead.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero clients, empty
/// utilization interval, empty period range, negative floor).
///
/// # Example
///
/// ```
/// use bluescale_sim::rng::SimRng;
/// use bluescale_workload::synthetic::{generate, SyntheticConfig};
/// use bluescale_workload::total_utilization;
///
/// let mut rng = SimRng::seed_from(42);
/// let sets = generate(&SyntheticConfig::fig6(16), &mut rng);
/// assert_eq!(sets.len(), 16);
/// let u = total_utilization(&sets);
/// assert!(u > 0.6 && u < 1.0);
/// ```
pub fn generate(config: &SyntheticConfig, rng: &mut SimRng) -> Vec<TaskSet> {
    generate_impl(config, rng).0
}

/// Like [`generate`], but errors instead of silently clamping: if any
/// client's UUniFast share falls below [`SyntheticConfig::util_floor`],
/// the trial is rejected with the clamp's size, so densification of
/// sparse large-N workloads cannot go unnoticed.
///
/// The RNG is consumed identically to [`generate`] either way, so a
/// caller that retries with a forked seed stays reproducible.
///
/// # Errors
///
/// [`GenerateError::FloorClamped`] when the floor would have raised at
/// least one client's share.
///
/// # Panics
///
/// As [`generate`].
pub fn try_generate(
    config: &SyntheticConfig,
    rng: &mut SimRng,
) -> Result<Vec<TaskSet>, GenerateError> {
    let (sets, clamped_clients, added_utilization) = generate_impl(config, rng);
    if clamped_clients > 0 {
        return Err(GenerateError::FloorClamped {
            clamped_clients,
            added_utilization,
        });
    }
    Ok(sets)
}

fn generate_impl(config: &SyntheticConfig, rng: &mut SimRng) -> (Vec<TaskSet>, usize, f64) {
    assert!(config.clients > 0, "at least one client required");
    assert!(
        config.util_lo > 0.0 && config.util_lo <= config.util_hi,
        "bad utilization interval"
    );
    assert!(config.max_tasks_per_client >= 1, "need at least one task");
    assert!(config.util_floor >= 0.0, "negative utilization floor");
    let target = rng.range_f64(config.util_lo, config.util_hi);
    // Split the total over clients with UUniFast, then within each client
    // over its tasks.
    let per_client = uunifast(config.clients, target, rng);
    let mut clamped = 0;
    let mut added = 0.0;
    let sets = per_client
        .into_iter()
        .map(|u| {
            if u < config.util_floor {
                clamped += 1;
                added += config.util_floor - u;
            }
            let u = u.max(config.util_floor);
            let tasks = rng.range_usize(1, config.max_tasks_per_client + 1);
            taskset_with_utilization(tasks, u, config.period_min, config.period_max, rng)
        })
        .collect();
    (sets, clamped, added)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::total_utilization;

    #[test]
    fn generates_requested_clients() {
        let mut rng = SimRng::seed_from(1);
        let sets = generate(&SyntheticConfig::fig6(64), &mut rng);
        assert_eq!(sets.len(), 64);
        assert!(sets.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn utilization_in_band() {
        let mut rng = SimRng::seed_from(2);
        for _ in 0..20 {
            let u = total_utilization(&generate(&SyntheticConfig::fig6(16), &mut rng));
            // Integer rounding can push slightly past the band edges.
            assert!(u > 0.55 && u < 1.05, "total utilization {u}");
        }
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(9));
        let b = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(9));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(1));
        let b = generate(&SyntheticConfig::fig6(16), &mut SimRng::seed_from(2));
        assert_ne!(a, b);
    }

    #[test]
    fn periods_respect_range() {
        let mut rng = SimRng::seed_from(4);
        let cfg = SyntheticConfig::fig6(16);
        for set in generate(&cfg, &mut rng) {
            for t in &set {
                assert!(t.period() >= cfg.period_min);
                assert!(t.period() <= cfg.period_max);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn zero_clients_panics() {
        let mut rng = SimRng::seed_from(0);
        let _ = generate(&SyntheticConfig::fig6(0), &mut rng);
    }

    #[test]
    fn try_generate_matches_generate_when_no_clamping() {
        // Moderate client count at fig6 density: every share clears the
        // tiny floor, so the checked path returns the identical trial.
        let cfg = SyntheticConfig::fig6(16);
        let a = generate(&cfg, &mut SimRng::seed_from(11));
        let b = try_generate(&cfg, &mut SimRng::seed_from(11)).expect("no clamping at fig6/16");
        assert_eq!(a, b);
    }

    #[test]
    fn try_generate_rejects_silent_densification() {
        // A sparse target spread over many clients: with an aggressive
        // floor, UUniFast's small shares must clamp and the checked path
        // must say so instead of densifying silently.
        let cfg = SyntheticConfig {
            clients: 64,
            util_lo: 0.05,
            util_hi: 0.06,
            max_tasks_per_client: 1,
            period_min: 2_000,
            period_max: 4_000,
            util_floor: 0.01,
        };
        let mut hit = false;
        for seed in 0..10 {
            if let Err(GenerateError::FloorClamped {
                clamped_clients,
                added_utilization,
            }) = try_generate(&cfg, &mut SimRng::seed_from(seed))
            {
                assert!(clamped_clients > 0);
                assert!(added_utilization > 0.0);
                hit = true;
            }
        }
        assert!(hit, "0.05/64 with a 1% floor must clamp on some seed");
    }

    #[test]
    fn configurable_floor_actually_applies() {
        // With the floor at a visible level, every client's set must carry
        // at least that much utilization.
        let cfg = SyntheticConfig {
            util_floor: 0.02,
            ..SyntheticConfig::fig6(16)
        };
        for set in generate(&cfg, &mut SimRng::seed_from(3)) {
            let u: f64 = set
                .iter()
                .map(|t| t.wcet() as f64 / t.period() as f64)
                .sum();
            // Integer WCET rounding can dip slightly below the exact floor.
            assert!(u > 0.01, "client utilization {u} below the floor");
        }
    }
}
