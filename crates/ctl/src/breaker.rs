//! Per-tenant admission circuit breaker.
//!
//! A tenant that flaps — hammering the admission queue with requests
//! that keep getting rejected — burns decision bandwidth every other
//! tenant needs. The breaker watches each tenant's recent admission
//! outcomes and, past a rejection threshold, **opens**: further requests
//! fast-fail with [`RejectReason::Quarantined`](crate::proto::RejectReason)
//! before touching the registry, and the daemon trips the tenant's slot
//! into the guard quarantine path
//! ([`ControlRegistry::quarantine`](crate::registry::ControlRegistry::quarantine)).
//!
//! The clock is the daemon's **operation counter**, not wall time: the
//! breaker's decisions depend only on the sequence of outcomes, so a
//! replayed request stream trips it at exactly the same point.
//!
//! State machine per tenant: `Closed` (sliding window of the last
//! `window` outcomes; ≥ `trip_threshold` rejections opens) → `Open`
//! (fast-fail until `cooldown` further global operations pass) →
//! `HalfOpen` (one probe request runs the real admission; success closes,
//! rejection re-opens).

use std::collections::{BTreeMap, VecDeque};

/// Breaker tuning. Window and cooldown are in admission operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Sliding outcome window per tenant.
    pub window: u32,
    /// Rejections within the window that open the breaker.
    pub trip_threshold: u32,
    /// Global operations the breaker stays open before a probe.
    pub cooldown: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 16,
            trip_threshold: 8,
            cooldown: 64,
        }
    }
}

#[derive(Debug)]
enum State {
    Closed { recent: VecDeque<bool> },
    Open { until_op: u64 },
    HalfOpen,
}

/// Deterministic per-tenant breaker over a global operation clock.
#[derive(Debug)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    ops_seen: u64,
    tenants: BTreeMap<u64, State>,
    trips: u64,
}

impl CircuitBreaker {
    /// Builds a breaker with the given tuning.
    pub fn new(config: BreakerConfig) -> Self {
        CircuitBreaker {
            config,
            ops_seen: 0,
            tenants: BTreeMap::new(),
            trips: 0,
        }
    }

    /// Total times any tenant's breaker opened.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Must requests from `tenant` fast-fail right now? Transitions
    /// `Open → HalfOpen` when the cooldown has elapsed (the caller's
    /// current request becomes the probe).
    pub fn is_open(&mut self, tenant: u64) -> bool {
        match self.tenants.get_mut(&tenant) {
            Some(State::Open { until_op }) => {
                if self.ops_seen >= *until_op {
                    self.tenants.insert(tenant, State::HalfOpen);
                    false
                } else {
                    true
                }
            }
            _ => false,
        }
    }

    /// Records the outcome of an admission operation that ran (fast-fails
    /// are NOT recorded — an open breaker must not feed itself). Returns
    /// true when this outcome trips the breaker open, at which point the
    /// caller quarantines the tenant's slot.
    pub fn record(&mut self, tenant: u64, rejected: bool) -> bool {
        self.ops_seen += 1;
        let state = self.tenants.entry(tenant).or_insert_with(|| State::Closed {
            recent: VecDeque::new(),
        });
        match state {
            State::Closed { recent } => {
                recent.push_back(rejected);
                if recent.len() > self.config.window as usize {
                    recent.pop_front();
                }
                let rejections = recent.iter().filter(|&&r| r).count() as u32;
                if rejections >= self.config.trip_threshold {
                    *state = State::Open {
                        until_op: self.ops_seen + self.config.cooldown,
                    };
                    self.trips += 1;
                    true
                } else {
                    false
                }
            }
            State::HalfOpen => {
                if rejected {
                    *state = State::Open {
                        until_op: self.ops_seen + self.config.cooldown,
                    };
                    self.trips += 1;
                    true
                } else {
                    *state = State::Closed {
                        recent: VecDeque::new(),
                    };
                    false
                }
            }
            // A racing record for an open tenant (request dequeued before
            // the trip): ignore, the breaker is already open.
            State::Open { .. } => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker() -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig {
            window: 8,
            trip_threshold: 4,
            cooldown: 10,
        })
    }

    #[test]
    fn trips_at_the_rejection_threshold() {
        let mut b = breaker();
        assert!(!b.record(1, true));
        assert!(!b.record(1, true));
        assert!(!b.record(1, true));
        assert!(b.record(1, true), "4th rejection in the window trips");
        assert!(b.is_open(1));
        assert_eq!(b.trips(), 1);
    }

    #[test]
    fn successes_age_rejections_out_of_the_window() {
        let mut b = breaker();
        for _ in 0..3 {
            b.record(2, true);
        }
        for _ in 0..8 {
            assert!(!b.record(2, false), "successes refill the window");
        }
        for _ in 0..3 {
            assert!(!b.record(2, true), "old rejections aged out");
        }
    }

    #[test]
    fn cooldown_leads_to_half_open_probe() {
        let mut b = breaker();
        for _ in 0..4 {
            b.record(3, true);
        }
        assert!(b.is_open(3));
        // Other tenants' traffic advances the global op clock.
        for _ in 0..10 {
            b.record(4, false);
        }
        assert!(!b.is_open(3), "cooldown elapsed: half-open probe allowed");
        // Probe fails → re-open immediately.
        assert!(b.record(3, true));
        assert!(b.is_open(3));
        // Next cooldown, probe succeeds → closed.
        for _ in 0..10 {
            b.record(4, false);
        }
        assert!(!b.is_open(3));
        assert!(!b.record(3, false));
        assert!(!b.is_open(3));
        for _ in 0..3 {
            b.record(3, true);
        }
        assert!(!b.is_open(3), "closed state starts with a fresh window");
    }

    #[test]
    fn tenants_are_isolated() {
        let mut b = breaker();
        for _ in 0..4 {
            b.record(7, true);
        }
        assert!(b.is_open(7));
        assert!(!b.is_open(8), "tenant 8 unaffected");
    }
}
