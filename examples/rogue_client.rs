//! Temporal isolation demo: one client floods the interconnect with 16×
//! its declared demand. BlueScale's server budgets contain the damage to
//! the rogue itself; the victims keep their guarantees.
//!
//! ```text
//! cargo run --release --example rogue_client
//! ```

use bluescale_repro::baselines::BlueTree;
use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::rt::task::{Task, TaskSet};

fn task_sets() -> Vec<TaskSet> {
    (0..16)
        .map(|i| {
            // Client 0 declares a heavier task — and will flood 16× it.
            let (period, wcet) = if i == 0 {
                (200, 12)
            } else {
                (200 + 20 * i as u64, 6)
            };
            TaskSet::new(vec![Task::new(0, period, wcet).expect("valid task")]).expect("valid set")
        })
        .collect()
}

fn report(label: &str, make: impl Fn(&[TaskSet]) -> Box<dyn Interconnect>) {
    let sets = task_sets();
    println!("== {label} ==");
    for &rogue_active in &[false, true] {
        let mut system = System::new(make(&sets), &sets);
        if rogue_active {
            system.set_misbehaviour_factor(0, 16);
        }
        system.run(30_000);
        let per_client = system.per_client_metrics();
        let rogue = &per_client[0];
        let (mut victim_missed, mut victim_issued) = (0u64, 0u64);
        for m in &per_client[1..] {
            victim_missed += m.missed();
            victim_issued += m.issued();
        }
        println!(
            "  rogue {}: victims missed {:>4} of {:>6} ({:.2}%), \
             rogue missed {:>5} of {:>6}",
            if rogue_active { "ACTIVE " } else { "passive" },
            victim_missed,
            victim_issued,
            100.0 * victim_missed as f64 / victim_issued.max(1) as f64,
            rogue.missed(),
            rogue.issued(),
        );
    }
    println!();
}

fn main() {
    println!(
        "Client 0 goes rogue: every job issues 16× the demand it declared\n\
         to the interconnect's admission analysis.\n"
    );
    report("BlueScale, strict budget gating", |sets| {
        let config = BlueScaleConfig::for_clients(sets.len());
        Box::new(BlueScaleInterconnect::new(config, sets).expect("valid build"))
    });
    report("BlueScale, work-conserving", |sets| {
        let mut config = BlueScaleConfig::for_clients(sets.len());
        config.work_conserving = true;
        Box::new(BlueScaleInterconnect::new(config, sets).expect("valid build"))
    });
    report("BlueTree (static blocking-factor heuristic)", |sets| {
        Box::new(BlueTree::new(sets.len(), 2, 1))
    });
    println!(
        "Strictly budget-gated BlueScale isolates perfectly: the flood\n\
         queues at the rogue's own port and only its excess misses. The\n\
         work-conserving variant trades a sliver of that isolation (idle\n\
         cycles granted to the rogue consume its subtree's shared budget\n\
         upstream) for much lower average latency — the classic\n\
         throughput/isolation trade-off, quantified by the ablation\n\
         experiment."
    );
}
