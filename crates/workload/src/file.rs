//! A portable text format for workloads, so an exact experimental trial
//! (e.g. one that exposed a deadline miss) can be saved, shared and
//! replayed bit-identically.
//!
//! The format is line-based and versioned:
//!
//! ```text
//! # bluescale workload v1
//! client 0
//! task 0 period 400 deadline 400 wcet 4
//! task 1 period 1000 deadline 900 wcet 25
//! client 1
//! ```
//!
//! Blank lines and `#` comments are ignored. A `client` line with no
//! following `task` lines declares an idle client (empty task set).

use bluescale_rt::task::{Task, TaskSet};
use bluescale_rt::Error as RtError;
use std::fmt;
use std::fs;
use std::path::Path;

/// Errors raised while parsing a workload file.
#[derive(Debug)]
pub enum ParseWorkloadError {
    /// The version header is missing or unsupported.
    BadHeader,
    /// A line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// Task parameters were rejected by the analysis layer.
    InvalidTask(RtError),
    /// Reading the file failed.
    Io(std::io::Error),
}

impl fmt::Display for ParseWorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseWorkloadError::BadHeader => {
                write!(f, "missing or unsupported workload header")
            }
            ParseWorkloadError::BadLine { line, reason } => {
                write!(f, "line {line}: {reason}")
            }
            ParseWorkloadError::InvalidTask(e) => write!(f, "invalid task: {e}"),
            ParseWorkloadError::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for ParseWorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseWorkloadError::InvalidTask(e) => Some(e),
            ParseWorkloadError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RtError> for ParseWorkloadError {
    fn from(e: RtError) -> Self {
        ParseWorkloadError::InvalidTask(e)
    }
}

impl From<std::io::Error> for ParseWorkloadError {
    fn from(e: std::io::Error) -> Self {
        ParseWorkloadError::Io(e)
    }
}

const HEADER: &str = "# bluescale workload v1";

/// Serializes per-client task sets into the workload text format.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_workload::file::{to_string, from_str};
///
/// let sets = vec![TaskSet::new(vec![Task::new(0, 100, 5)?])?, TaskSet::empty()];
/// let text = to_string(&sets);
/// assert_eq!(from_str(&text)?, sets);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn to_string(sets: &[TaskSet]) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    for (client, set) in sets.iter().enumerate() {
        out.push_str(&format!("client {client}\n"));
        for task in set {
            out.push_str(&format!(
                "task {} period {} deadline {} wcet {}\n",
                task.id(),
                task.period(),
                task.deadline(),
                task.wcet()
            ));
        }
    }
    out
}

/// Parses the workload text format back into per-client task sets.
///
/// # Errors
///
/// Returns a [`ParseWorkloadError`] for a missing header, malformed
/// lines, task lines outside a client block, or invalid task parameters.
pub fn from_str(text: &str) -> Result<Vec<TaskSet>, ParseWorkloadError> {
    let mut lines = text.lines().enumerate();
    // Header must be the first non-blank, non-comment... it IS a comment,
    // so check it verbatim as the first non-empty line.
    let header = lines
        .by_ref()
        .map(|(_, l)| l.trim())
        .find(|l| !l.is_empty())
        .ok_or(ParseWorkloadError::BadHeader)?;
    if header != HEADER {
        return Err(ParseWorkloadError::BadHeader);
    }
    let mut sets: Vec<TaskSet> = Vec::new();
    let mut current: Option<Vec<Task>> = None;
    for (idx, raw) in lines {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut words = line.split_whitespace();
        match words.next() {
            Some("client") => {
                let id: usize = parse_field(&mut words, "client id", idx)?;
                if id != sets.len() + usize::from(current.is_some()) {
                    return Err(ParseWorkloadError::BadLine {
                        line: idx + 1,
                        reason: format!("client ids must be dense; expected {}", sets.len()),
                    });
                }
                if let Some(tasks) = current.take() {
                    sets.push(TaskSet::new(tasks)?);
                }
                current = Some(Vec::new());
            }
            Some("task") => {
                let tasks = current.as_mut().ok_or(ParseWorkloadError::BadLine {
                    line: idx + 1,
                    reason: "task line before any client line".to_owned(),
                })?;
                let id: u32 = parse_field(&mut words, "task id", idx)?;
                expect_keyword(&mut words, "period", idx)?;
                let period: u64 = parse_field(&mut words, "period", idx)?;
                expect_keyword(&mut words, "deadline", idx)?;
                let deadline: u64 = parse_field(&mut words, "deadline", idx)?;
                expect_keyword(&mut words, "wcet", idx)?;
                let wcet: u64 = parse_field(&mut words, "wcet", idx)?;
                tasks.push(Task::with_deadline(id, period, deadline, wcet)?);
            }
            Some(other) => {
                return Err(ParseWorkloadError::BadLine {
                    line: idx + 1,
                    reason: format!("unknown directive `{other}`"),
                })
            }
            None => unreachable!("blank lines are skipped"),
        }
    }
    if let Some(tasks) = current.take() {
        sets.push(TaskSet::new(tasks)?);
    }
    Ok(sets)
}

fn expect_keyword<'a>(
    words: &mut impl Iterator<Item = &'a str>,
    keyword: &str,
    idx: usize,
) -> Result<(), ParseWorkloadError> {
    match words.next() {
        Some(w) if w == keyword => Ok(()),
        other => Err(ParseWorkloadError::BadLine {
            line: idx + 1,
            reason: format!("expected `{keyword}`, found {other:?}"),
        }),
    }
}

fn parse_field<'a, T: std::str::FromStr>(
    words: &mut impl Iterator<Item = &'a str>,
    what: &str,
    idx: usize,
) -> Result<T, ParseWorkloadError> {
    words
        .next()
        .ok_or_else(|| ParseWorkloadError::BadLine {
            line: idx + 1,
            reason: format!("missing {what}"),
        })?
        .parse()
        .map_err(|_| ParseWorkloadError::BadLine {
            line: idx + 1,
            reason: format!("unparsable {what}"),
        })
}

/// Saves a workload to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save(path: impl AsRef<Path>, sets: &[TaskSet]) -> Result<(), ParseWorkloadError> {
    fs::write(path, to_string(sets))?;
    Ok(())
}

/// Loads a workload from `path`.
///
/// # Errors
///
/// Propagates I/O failures and parse errors.
pub fn load(path: impl AsRef<Path>) -> Result<Vec<TaskSet>, ParseWorkloadError> {
    from_str(&fs::read_to_string(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{generate, SyntheticConfig};
    use bluescale_sim::rng::SimRng;

    fn sample() -> Vec<TaskSet> {
        vec![
            TaskSet::new(vec![
                Task::new(0, 100, 5).unwrap(),
                Task::with_deadline(1, 200, 150, 10).unwrap(),
            ])
            .unwrap(),
            TaskSet::empty(),
            TaskSet::new(vec![Task::new(0, 80, 4).unwrap()]).unwrap(),
        ]
    }

    #[test]
    fn round_trip_preserves_everything() {
        let sets = sample();
        let text = to_string(&sets);
        assert_eq!(from_str(&text).unwrap(), sets);
    }

    #[test]
    fn round_trip_of_generated_workload() {
        let mut rng = SimRng::seed_from(42);
        let sets = generate(&SyntheticConfig::fig6(16), &mut rng);
        let text = to_string(&sets);
        assert_eq!(from_str(&text).unwrap(), sets);
    }

    #[test]
    fn header_is_required() {
        assert!(matches!(
            from_str("client 0\n"),
            Err(ParseWorkloadError::BadHeader)
        ));
        assert!(matches!(from_str(""), Err(ParseWorkloadError::BadHeader)));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "# bluescale workload v1\n\n# a comment\nclient 0\n\ntask 0 period 10 deadline 10 wcet 1\n";
        let sets = from_str(text).unwrap();
        assert_eq!(sets.len(), 1);
        assert_eq!(sets[0].len(), 1);
    }

    #[test]
    fn task_before_client_rejected() {
        let text = "# bluescale workload v1\ntask 0 period 10 deadline 10 wcet 1\n";
        assert!(matches!(
            from_str(text),
            Err(ParseWorkloadError::BadLine { line: 2, .. })
        ));
    }

    #[test]
    fn sparse_client_ids_rejected() {
        let text = "# bluescale workload v1\nclient 1\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn malformed_numbers_rejected() {
        let text = "# bluescale workload v1\nclient 0\ntask x period 10 deadline 10 wcet 1\n";
        assert!(from_str(text).is_err());
    }

    #[test]
    fn invalid_task_parameters_rejected() {
        // wcet > deadline.
        let text = "# bluescale workload v1\nclient 0\ntask 0 period 10 deadline 5 wcet 6\n";
        assert!(matches!(
            from_str(text),
            Err(ParseWorkloadError::InvalidTask(_))
        ));
    }

    #[test]
    fn save_and_load_file() {
        let dir = std::env::temp_dir().join("bluescale-workload-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trial.bsw");
        let sets = sample();
        save(&path, &sets).unwrap();
        assert_eq!(load(&path).unwrap(), sets);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn error_display_is_informative() {
        let e = ParseWorkloadError::BadLine {
            line: 3,
            reason: "nope".to_owned(),
        };
        assert!(e.to_string().contains("line 3"));
        assert!(!ParseWorkloadError::BadHeader.to_string().is_empty());
    }
}
