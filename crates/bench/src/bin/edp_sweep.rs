//! Runs the hierarchical EDP deadline-laxity sweep (extension).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin edp_sweep -- [--clients N] [--trials N]`

use bluescale_bench::edp_sweep::{render, run, EdpSweepConfig};
use bluescale_bench::{arg_u64, arg_usize};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = EdpSweepConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    let points = run(&config);
    println!("{}", render(&config, &points));
}
