//! Runs the online-churn extension: incremental vs full re-selection and
//! live transition disturbance, exporting `results/BENCH_admission.json`.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin churn -- [--events N] [--clients 16,64,256]`

use bluescale_bench::churn::{record_into, render, run, run_disturbance, ChurnConfig};
use bluescale_bench::{arg_usize, arg_usize_list, export};
use bluescale_sim::metrics::MetricsRegistry;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ChurnConfig::default();
    config.client_counts = arg_usize_list(&args, "--clients", &config.client_counts.clone());
    config.events = arg_usize(&args, "--events", config.events);
    let points = run(&config);
    let disturbance = run_disturbance(&config);
    println!("{}", render(&config, &points, &disturbance));
    let mut registry = MetricsRegistry::new();
    record_into(&mut registry, &points, &disturbance);
    let path = Path::new("results/BENCH_admission.json");
    export::write_snapshot(path, &mut registry).expect("snapshot written");
    println!("wrote {}", path.display());
}
