//! Tier-1 smoke test for the scalability sweep's fast-forward points.
//!
//! Runs the bench crate's speedup sweep at its two smallest sizes (4 and
//! 16 clients, shortened horizon) so the per-cycle-vs-fast-forward
//! equality assertion inside [`run_fastforward`] executes on every test
//! run — not only when the full benchmark binary is invoked — and
//! additionally pins a fig6-style point through both stepping modes with
//! a full [`RunMetrics`] comparison.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_bench::scalability::{run_fastforward, FastForwardConfig};
use bluescale_interconnect::system::System;
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};

#[test]
fn sweep_smoke_points_verify_and_jump() {
    let cfg = FastForwardConfig {
        client_counts: vec![4, 16],
        horizon_override: Some(12_000),
        ..Default::default()
    };
    // run_fastforward itself panics if the two modes diverge; the
    // assertions here pin that the comparison was non-vacuous.
    let points = run_fastforward(&cfg);
    assert_eq!(points.len(), 2);
    for p in &points {
        assert!(p.verified, "{} clients: modes must agree", p.clients);
        assert!(p.jumps > 0, "{} clients: no jumps taken", p.clients);
        assert!(p.completed > 0, "{} clients: no traffic", p.clients);
    }
}

#[test]
fn fig6_point_has_identical_run_metrics_in_both_modes() {
    let mut rng = SimRng::seed_from(0x5CA1E);
    let sets = generate(&SyntheticConfig::fig6(4), &mut rng);
    let build = || {
        let mut config = BlueScaleConfig::for_clients(sets.len());
        config.work_conserving = true;
        let ic = BlueScaleInterconnect::new(config, &sets).expect("valid task sets");
        System::new(Box::new(ic), &sets)
    };
    let mut fast = build();
    let mut slow = build();
    fast.set_fast_forward(true);
    slow.set_fast_forward(false);
    let mut a = fast.run(15_000);
    let mut b = slow.run(15_000);
    assert_eq!(
        (a.issued(), a.completed(), a.missed(), a.backlog()),
        (b.issued(), b.completed(), b.missed(), b.backlog())
    );
    assert_eq!(a.latency().as_slice(), b.latency().as_slice());
    assert_eq!(a.blocking().as_slice(), b.blocking().as_slice());
    assert_eq!(
        a.normalized_response().as_slice(),
        b.normalized_response().as_slice()
    );
    assert_eq!(slow.fast_forward_jumps(), 0, "the oracle must not jump");
}
