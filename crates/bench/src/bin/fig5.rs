//! Regenerates the paper's Fig 5 (area, power, max frequency vs η).
//!
//! Usage: `cargo run -p bluescale-bench --bin fig5`

fn main() {
    print!("{}", bluescale_bench::fig5::render());
}
