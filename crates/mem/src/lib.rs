//! Memory substrate: a DRAM timing model and a single-channel memory
//! controller.
//!
//! The paper's evaluation platform has "a 4 GB DRAM module and a memory
//! controller" at the root of every interconnect. Everything the
//! interconnect experiments need from it is a *service-time* model: how many
//! interconnect cycles the controller occupies the channel per request. We
//! model an open-row DRAM: a request hitting the currently open row of its
//! bank is fast, a row conflict pays precharge+activate.
//!
//! The controller is generic over the payload it carries so that the
//! interconnect crates can thread their own request types through without a
//! dependency cycle.
//!
//! # Example
//!
//! ```
//! use bluescale_mem::{DramConfig, MemoryController};
//!
//! let mut mc: MemoryController<&str> = MemoryController::new(DramConfig::default());
//! assert!(mc.can_accept());
//! mc.accept("req-1", 0x1000, 0);
//! assert!(!mc.can_accept());
//! // Nothing completes before the service time has elapsed.
//! assert_eq!(mc.poll_complete(1), None);
//! let done = (2..100).find_map(|t| mc.poll_complete(t).map(|p| (t, p)));
//! assert!(done.is_some());
//! ```

#![warn(missing_docs)]

pub mod dram;
pub mod policy;

pub use dram::{AddressMap, DramConfig, PagePolicy};
pub use policy::{GrantCandidate, MemPolicyConfig, MemoryPolicy, ServiceClass};

use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry};
use bluescale_sim::next_event::NextEvent;
use bluescale_sim::Cycle;

/// Statistics accumulated by a [`MemoryController`] over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ControllerStats {
    /// Requests accepted.
    pub accepted: u64,
    /// Requests completed.
    pub completed: u64,
    /// Row-buffer hits among completed requests.
    pub row_hits: u64,
    /// Row-buffer misses (conflicts or cold rows) among completed requests.
    pub row_misses: u64,
    /// Cycles the channel spent busy.
    pub busy_cycles: u64,
}

impl ControllerStats {
    /// Row-hit ratio over completed requests; 0 when nothing completed.
    pub fn hit_ratio(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.completed as f64
        }
    }

    /// Mirrors these tallies into `registry` under
    /// [`ComponentId::Memory`]. The stats are absolute, so the registry
    /// counters are overwritten, not incremented — calling this repeatedly
    /// is idempotent.
    pub fn record_into(&self, registry: &mut MetricsRegistry) {
        let m = ComponentId::Memory;
        registry.set_counter(m, Counter::MemAccepted, self.accepted);
        registry.set_counter(m, Counter::MemCompleted, self.completed);
        registry.set_counter(m, Counter::RowHits, self.row_hits);
        registry.set_counter(m, Counter::RowMisses, self.row_misses);
        registry.set_counter(m, Counter::BusyCycles, self.busy_cycles);
    }
}

/// A single-channel memory controller with one request in service at a time
/// (the serialization point every interconnect in the paper contends for).
///
/// Service time per request comes from the [`DramConfig`] row-buffer model.
#[derive(Debug, Clone)]
pub struct MemoryController<T> {
    config: DramConfig,
    address_map: AddressMap,
    open_rows: Vec<Option<u64>>,
    in_service: Option<InService<T>>,
    stats: ControllerStats,
    /// Requests accepted per bank (bandwidth-accounting granularity of
    /// per-bank regulation schemes).
    bank_accepted: Vec<u64>,
}

#[derive(Debug, Clone)]
struct InService<T> {
    payload: T,
    done_at: Cycle,
}

impl<T> MemoryController<T> {
    /// Creates an idle controller with all row buffers closed.
    pub fn new(config: DramConfig) -> Self {
        let address_map = AddressMap::new(&config);
        Self {
            open_rows: vec![None; config.banks as usize],
            bank_accepted: vec![0; config.banks as usize],
            config,
            address_map,
            in_service: None,
            stats: ControllerStats::default(),
        }
    }

    /// The timing configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Whether a new request can start service this cycle.
    pub fn can_accept(&self) -> bool {
        self.in_service.is_none()
    }

    /// Starts servicing a request for `addr` at cycle `now` and returns
    /// the service duration in cycles (row hit vs conflict).
    ///
    /// # Panics
    ///
    /// Panics if the controller is busy (callers must check
    /// [`can_accept`](Self::can_accept) first — the channel has no queue of
    /// its own; queueing is the interconnect's job).
    pub fn accept(&mut self, payload: T, addr: u64, now: Cycle) -> Cycle {
        self.accept_with_extra(payload, addr, now, 0)
    }

    /// [`accept`](Self::accept) plus `extra` service cycles — the hook for
    /// deterministic DRAM timing-jitter faults. With `extra == 0` this *is*
    /// `accept`: identical row-buffer transitions, statistics and service
    /// time, so a zero-jitter fault plan cannot perturb the baseline.
    ///
    /// # Panics
    ///
    /// Panics if the controller is busy (see [`accept`](Self::accept)).
    pub fn accept_with_extra(&mut self, payload: T, addr: u64, now: Cycle, extra: Cycle) -> Cycle {
        self.accept_classed(payload, addr, now, extra, ServiceClass::Inherit)
    }

    /// [`accept_with_extra`](Self::accept_with_extra) with an explicit
    /// per-request [`ServiceClass`] — the hook for two-tier policies such
    /// as deterministic memory. `Inherit` follows the configured
    /// [`PagePolicy`]; `ClosedPage` pays the full precharge+activate cost
    /// and leaves the bank precharged regardless of configuration, so a
    /// deterministic request's latency never depends on another client's
    /// row-buffer footprint.
    ///
    /// # Panics
    ///
    /// Panics if the controller is busy (see [`accept`](Self::accept)).
    pub fn accept_classed(
        &mut self,
        payload: T,
        addr: u64,
        now: Cycle,
        extra: Cycle,
        class: ServiceClass,
    ) -> Cycle {
        assert!(
            self.in_service.is_none(),
            "memory controller accept() while busy"
        );
        let (bank, row) = self.address_map.decode(addr);
        let open = &mut self.open_rows[bank as usize];
        let closed_page = class == ServiceClass::ClosedPage
            || self.config.page_policy == dram::PagePolicy::Closed;
        let hit = !closed_page && *open == Some(row);
        let service = if hit {
            self.stats.row_hits += 1;
            self.config.row_hit_cycles
        } else {
            self.stats.row_misses += 1;
            // A closed-page access (configured or per-request) precharges
            // the bank on the way out; only open-page leaves the row open.
            *open = if closed_page { None } else { Some(row) };
            self.config.row_miss_cycles
        } + extra;
        self.stats.accepted += 1;
        self.stats.busy_cycles += service;
        self.bank_accepted[bank as usize] += 1;
        self.in_service = Some(InService {
            payload,
            done_at: now + service,
        });
        service
    }

    /// The absolute cycle the in-flight request finishes service, or `None`
    /// when the channel is idle. The service timer is a precomputed absolute
    /// deadline (`done_at`), not a countdown, so a fast-forwarding harness
    /// can jump the clock straight to this cycle without touching DRAM
    /// state: [`poll_complete`](Self::poll_complete) at the target cycle
    /// behaves exactly as it would after unit-stepping.
    pub fn next_completion(&self) -> Option<Cycle> {
        self.in_service.as_ref().map(|s| s.done_at)
    }

    /// Returns the serviced payload if its service completed by `now`.
    pub fn poll_complete(&mut self, now: Cycle) -> Option<T> {
        match &self.in_service {
            Some(s) if s.done_at <= now => {
                self.stats.completed += 1;
                self.in_service.take().map(|s| s.payload)
            }
            _ => None,
        }
    }

    /// The `(bank, row)` an address maps to — exposed so callers (fault
    /// plans, bank-aware regulation) can reason about bank targeting
    /// without duplicating the address-map layout.
    pub fn decode(&self, addr: u64) -> (u32, u64) {
        self.address_map.decode(addr)
    }

    /// Run statistics so far.
    pub fn stats(&self) -> ControllerStats {
        self.stats
    }

    /// Requests accepted per bank so far.
    pub fn bank_accepted(&self) -> &[u64] {
        &self.bank_accepted
    }

    /// The row currently open in `bank`, or `None` when the bank is
    /// precharged. Policies that reason about row-buffer state (and the
    /// closed-page regression tests) read this instead of re-deriving it
    /// from timing.
    pub fn open_row(&self, bank: u32) -> Option<u64> {
        self.open_rows.get(bank as usize).copied().flatten()
    }

    /// Mirrors controller statistics into `registry`: the scalar tallies
    /// under [`ComponentId::Memory`] and per-bank accept counts under
    /// [`ComponentId::Bank`]. Absolute values (idempotent; see
    /// [`ControllerStats::record_into`]).
    pub fn record_metrics(&self, registry: &mut MetricsRegistry) {
        self.stats.record_into(registry);
        // Every bank is written unconditionally: skipping zero banks would
        // leave a stale non-zero value behind in a merged or reused
        // registry, breaking the absolute/idempotent contract.
        for (bank, &accepted) in self.bank_accepted.iter().enumerate() {
            registry.set_counter(
                ComponentId::Bank(bank as u32),
                Counter::MemAccepted,
                accepted,
            );
        }
    }
}

impl<T> NextEvent for MemoryController<T> {
    /// Idle → [`Cycle::MAX`]; busy → the in-flight completion cycle
    /// (clamped to `now` for a completion the caller has not polled yet).
    fn next_event(&self, now: Cycle) -> Cycle {
        match self.next_completion() {
            Some(done) => done.max(now),
            None => Cycle::MAX,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform(service: Cycle) -> DramConfig {
        DramConfig {
            row_hit_cycles: service,
            row_miss_cycles: service,
            ..DramConfig::default()
        }
    }

    #[test]
    fn accepts_when_idle_only() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        assert!(mc.can_accept());
        mc.accept(1, 0, 0);
        assert!(!mc.can_accept());
    }

    #[test]
    #[should_panic(expected = "while busy")]
    fn accept_while_busy_panics() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        mc.accept(1, 0, 0);
        mc.accept(2, 64, 0);
    }

    #[test]
    fn completion_after_service_time() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        mc.accept(7, 0, 10);
        assert_eq!(mc.poll_complete(13), None);
        assert_eq!(mc.poll_complete(14), Some(7));
        assert!(mc.can_accept());
        // Nothing more to complete.
        assert_eq!(mc.poll_complete(20), None);
    }

    #[test]
    fn next_completion_tracks_in_flight_service() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        assert_eq!(mc.next_completion(), None);
        assert_eq!(mc.next_event(0), Cycle::MAX);
        mc.accept(7, 0, 10);
        assert_eq!(mc.next_completion(), Some(14));
        assert_eq!(mc.next_event(10), 14);
        // Jumping the clock straight to the reported cycle completes the
        // request exactly as unit-stepping would.
        assert_eq!(mc.poll_complete(14), Some(7));
        assert_eq!(mc.next_completion(), None);
    }

    #[test]
    fn row_hit_is_faster_than_miss() {
        let cfg = DramConfig {
            row_hit_cycles: 2,
            row_miss_cycles: 8,
            ..DramConfig::default()
        };
        let mut mc: MemoryController<u32> = MemoryController::new(cfg);
        // First access to a row: miss.
        mc.accept(1, 0x0, 0);
        assert_eq!(mc.poll_complete(7), None);
        assert_eq!(mc.poll_complete(8), Some(1));
        // Same row again: hit, completes in 2 cycles.
        mc.accept(2, 0x8, 8);
        assert_eq!(mc.poll_complete(10), Some(2));
        let s = mc.stats();
        assert_eq!(s.row_hits, 1);
        assert_eq!(s.row_misses, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn different_banks_have_independent_rows() {
        let cfg = DramConfig {
            row_hit_cycles: 1,
            row_miss_cycles: 10,
            banks: 2,
            ..DramConfig::default()
        };
        let map = AddressMap::new(&cfg);
        // Find two addresses in different banks.
        let a = 0u64;
        let b = (0..1 << 20)
            .map(|i| i * 8)
            .find(|&x| map.decode(x).0 != map.decode(a).0)
            .expect("two banks must exist");
        let mut mc: MemoryController<u32> = MemoryController::new(cfg);
        mc.accept(1, a, 0);
        let _ = mc.poll_complete(100).unwrap();
        mc.accept(2, b, 100);
        let _ = mc.poll_complete(200).unwrap();
        // Returning to bank of `a`, same row: still open -> hit.
        mc.accept(3, a, 200);
        assert_eq!(mc.poll_complete(201), Some(3));
    }

    #[test]
    fn closed_page_service_is_deterministic() {
        let cfg = DramConfig {
            row_hit_cycles: 2,
            row_miss_cycles: 8,
            page_policy: dram::PagePolicy::Closed,
            ..DramConfig::default()
        };
        let mut mc: MemoryController<u32> = MemoryController::new(cfg);
        // Same row twice: under closed page, both accesses pay the full
        // activate cost.
        assert_eq!(mc.accept(1, 0x0, 0), 8);
        let _ = mc.poll_complete(100).unwrap();
        assert_eq!(mc.accept(2, 0x8, 100), 8);
        let _ = mc.poll_complete(200).unwrap();
        assert_eq!(mc.stats().row_hits, 0);
    }

    #[test]
    fn closed_page_leaves_bank_precharged() {
        let cfg = DramConfig {
            row_hit_cycles: 2,
            row_miss_cycles: 8,
            page_policy: dram::PagePolicy::Closed,
            ..DramConfig::default()
        };
        let mut mc: MemoryController<u32> = MemoryController::new(cfg);
        mc.accept(1, 0x0, 0);
        let (bank, _) = mc.decode(0x0);
        // Regression: closed-page must not record the row as open — the
        // access precharged the bank on the way out.
        assert_eq!(mc.open_row(bank), None);
        let _ = mc.poll_complete(100).unwrap();
        assert_eq!(mc.open_row(bank), None);
    }

    #[test]
    fn open_page_records_open_row() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        let (bank, row) = mc.decode(0x0);
        assert_eq!(mc.open_row(bank), None);
        mc.accept(1, 0x0, 0);
        assert_eq!(mc.open_row(bank), Some(row));
    }

    #[test]
    fn classed_closed_page_is_deterministic_and_precharges() {
        let cfg = DramConfig {
            row_hit_cycles: 2,
            row_miss_cycles: 8,
            ..DramConfig::default()
        };
        let mut mc: MemoryController<u32> = MemoryController::new(cfg);
        let (bank, row) = mc.decode(0x0);
        // A best-effort access opens the row.
        mc.accept(1, 0x0, 0);
        let _ = mc.poll_complete(100).unwrap();
        assert_eq!(mc.open_row(bank), Some(row));
        // A deterministic access to the open row still pays the full cost
        // and leaves the bank precharged.
        assert_eq!(
            mc.accept_classed(2, 0x8, 100, 0, ServiceClass::ClosedPage),
            8
        );
        let _ = mc.poll_complete(200).unwrap();
        assert_eq!(mc.open_row(bank), None);
        assert_eq!(mc.stats().row_hits, 0);
        // The following best-effort access misses again (bank precharged).
        assert_eq!(mc.accept_classed(3, 0x10, 200, 0, ServiceClass::Inherit), 8);
        assert_eq!(mc.open_row(bank), Some(row));
    }

    #[test]
    fn bank_mirror_overwrites_stale_registry_values() {
        let cfg = DramConfig {
            banks: 4,
            row_bytes: 1024,
            ..uniform(2)
        };
        let mc: MemoryController<u32> = MemoryController::new(cfg);
        let mut reg = MetricsRegistry::new();
        // A reused registry carries a stale count for bank 2 from an
        // earlier run; a fresh controller must write it back down to zero.
        reg.set_counter(ComponentId::Bank(2), Counter::MemAccepted, 99);
        mc.record_metrics(&mut reg);
        for bank in 0..4 {
            assert_eq!(
                reg.counter(ComponentId::Bank(bank), Counter::MemAccepted),
                0,
                "bank {bank} mirror must be absolute"
            );
        }
    }

    #[test]
    fn bank_counts_and_registry_mirror() {
        let cfg = DramConfig {
            banks: 4,
            row_bytes: 1024,
            ..uniform(2)
        };
        let mut mc: MemoryController<u32> = MemoryController::new(cfg);
        let mut now = 0;
        // Rows 0..4 interleave across the four banks; row 4 wraps to bank 0.
        for i in 0..5u64 {
            mc.accept(i as u32, i * 1024, now);
            now += 2;
            assert!(mc.poll_complete(now).is_some());
        }
        assert_eq!(mc.bank_accepted(), &[2, 1, 1, 1]);

        let mut reg = MetricsRegistry::new();
        mc.record_metrics(&mut reg);
        assert_eq!(reg.counter(ComponentId::Memory, Counter::MemAccepted), 5);
        assert_eq!(reg.counter(ComponentId::Memory, Counter::MemCompleted), 5);
        assert_eq!(reg.counter(ComponentId::Memory, Counter::BusyCycles), 10);
        assert_eq!(reg.counter(ComponentId::Bank(0), Counter::MemAccepted), 2);
        assert_eq!(reg.counter(ComponentId::Bank(3), Counter::MemAccepted), 1);
        // Absolute mirroring is idempotent.
        mc.record_metrics(&mut reg);
        assert_eq!(reg.counter(ComponentId::Memory, Counter::MemAccepted), 5);
    }

    #[test]
    fn extra_cycles_stretch_service_and_busy_time() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        assert_eq!(mc.accept_with_extra(1, 0, 0, 3), 7);
        assert_eq!(mc.poll_complete(6), None);
        assert_eq!(mc.poll_complete(7), Some(1));
        assert_eq!(mc.stats().busy_cycles, 7);
        // Zero extra is exactly accept(): same duration, same stats delta.
        assert_eq!(mc.accept_with_extra(2, 4096, 7, 0), 4);
        assert_eq!(mc.poll_complete(11), Some(2));
        assert_eq!(mc.stats().busy_cycles, 11);
    }

    #[test]
    fn decode_is_public_and_matches_banking() {
        let cfg = DramConfig {
            banks: 4,
            row_bytes: 1024,
            ..uniform(2)
        };
        let mc: MemoryController<u32> = MemoryController::new(cfg);
        assert_eq!(mc.decode(0).0, 0);
        assert_eq!(mc.decode(1024).0, 1);
        assert_eq!(mc.decode(4 * 1024).0, 0, "banks wrap");
    }

    #[test]
    fn stats_track_throughput() {
        let mut mc: MemoryController<u32> = MemoryController::new(uniform(4));
        let mut now = 0;
        for i in 0..10 {
            mc.accept(i, (i as u64) * 4096, now);
            now += 4;
            assert_eq!(mc.poll_complete(now), Some(i));
        }
        let s = mc.stats();
        assert_eq!(s.accepted, 10);
        assert_eq!(s.completed, 10);
        assert_eq!(s.busy_cycles, 40);
    }
}
