//! Interface selection walkthrough: size the Virtual Elements of one Scale
//! Element by hand, exactly as the paper's Section 5 describes.
//!
//! ```text
//! cargo run --example schedulability_analysis
//! ```

use bluescale_repro::rt::demand::dbf_set;
use bluescale_repro::rt::interface::{
    max_feasible_period, min_budget_for_period, select_interface, select_se_interfaces,
    server_tasks, SelectionContext,
};
use bluescale_repro::rt::schedulability::{is_schedulable, theorem1_bound};
use bluescale_repro::rt::task::{Task, TaskSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Four clients of one SE, with distinct demand profiles.
    let clients = vec![
        TaskSet::new(vec![Task::new(0, 100, 8)?, Task::new(1, 250, 10)?])?,
        TaskSet::new(vec![Task::new(0, 400, 12)?])?,
        TaskSet::new(vec![Task::new(0, 80, 4)?])?,
        TaskSet::empty(), // idle port
    ];

    println!("== Interface selection problem at one Scale Element ==\n");
    let total: f64 = clients.iter().map(TaskSet::utilization).sum();
    println!("combined utilization U = {total:.3}\n");

    // Step through client 0 manually.
    let set = &clients[0];
    let ctx = SelectionContext::shared(total);
    let max_pi = max_feasible_period(set, &ctx);
    println!("client 0: U_X = {:.3}", set.utilization());
    println!("Theorem 2 period bound: Π ≤ {max_pi}");
    for pi in [5, 10, 20, max_pi] {
        match min_budget_for_period(set, pi) {
            Some(theta) => println!(
                "  Π = {pi:3}: minimal Θ = {theta:2} → bandwidth {:.3}",
                theta as f64 / pi as f64
            ),
            None => println!("  Π = {pi:3}: infeasible"),
        }
    }
    let chosen = select_interface(set, &ctx)?;
    println!(
        "selected: (Π = {}, Θ = {}) with bandwidth {:.3}\n",
        chosen.period(),
        chosen.budget(),
        chosen.bandwidth()
    );

    // Verify the dbf ≤ sbf test at a few points.
    let beta = theorem1_bound(set, &chosen).expect("bandwidth exceeds utilization");
    println!("Theorem 1 horizon β = {beta:.1}");
    println!(" t   | dbf(t) | sbf(t)");
    for t in (0..=beta.ceil() as u64).step_by((beta / 8.0).ceil() as usize) {
        println!("{t:4} | {:6} | {:6}", dbf_set(set, t), chosen.sbf(t));
    }
    assert!(is_schedulable(set, &chosen));
    println!("dbf(t) ≤ sbf(t) for all t — client 0 is schedulable.\n");

    // Size the whole SE, then compose the level above.
    println!("== Full SE composition ==");
    let interfaces = select_se_interfaces(&clients)?;
    for (port, iface) in interfaces.iter().enumerate() {
        match iface {
            Some(r) => println!(
                "port {port}: (Π = {:3}, Θ = {:2}), bandwidth {:.3}",
                r.period(),
                r.budget(),
                r.bandwidth()
            ),
            None => println!("port {port}: idle (no server task)"),
        }
    }
    let chosen: Vec<_> = interfaces.into_iter().flatten().collect();
    let servers = server_tasks(&chosen)?;
    println!(
        "\nserver tasks exported to the parent SE: {} tasks, U = {:.3}",
        servers.len(),
        servers.utilization()
    );
    let parent = select_interface(&servers, &SelectionContext::isolated(&servers))?;
    println!(
        "parent VE interface: (Π = {}, Θ = {}), bandwidth {:.3}",
        parent.period(),
        parent.budget(),
        parent.bandwidth()
    );
    Ok(())
}
