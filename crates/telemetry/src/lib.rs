//! Streaming telemetry for the BlueScale reproduction.
//!
//! Turns the end-of-run [`MetricsRegistry`] snapshot into a live stream:
//! a [`Pipeline`] periodically extracts **epoch deltas** (what changed
//! since the last flush) from one or more registries and hands them to
//! [`TelemetrySink`]s — a JSONL file, an in-process ring-buffered
//! subscriber, or a bounded fan-out to external readers.
//!
//! # Invariants
//!
//! * **Bit-identical simulation, streaming on or off.** Extraction is
//!   read-only on the registries, derived SLO values live only in the
//!   stream, and flushes run between simulation spans — never inside the
//!   per-cycle hot loop. A differential test in the workspace pins this.
//! * **Slow consumers shed, never backpressure.** External subscribers
//!   sit behind bounded channels; a full channel drops the update and
//!   grows a lagged tally that the host folds into a `subscriber_lagged`
//!   counter. The simulation thread never blocks on a reader.
//! * **The stream is lossless for results.** Folding a JSONL stream
//!   ([`jsonl::fold_jsonl`]) reconstructs the final registry exactly:
//!   counters by summing signed deltas, raw-sample sequences by
//!   concatenating windows per source, gauges and accumulator summaries
//!   by last-value-wins.
//!
//! # JSONL schema (version 1)
//!
//! One line per epoch, one JSON object per line:
//!
//! ```json
//! {"v":1,"epoch":3,"cycle":16384,"records":[...]}
//! ```
//!
//! * `v` — schema version (this document describes version 1).
//! * `epoch` — monotone flush number within one pipeline.
//! * `cycle` — simulation cycle at which the flush ran.
//! * `records` — what changed since the previous epoch. Every record is
//!   self-describing with `src` (registry of origin: `"harness"`,
//!   `"fabric"`, or `"slo"` for derived values), `comp` (component id,
//!   e.g. `"client.3"`, `"se.1.0"`, `"mem"`), `metric` (stable
//!   snake_case name), `unit` (`"requests"`, `"cycles"`, `"events"`,
//!   `"trials"`, `"ratio"`, `"value"`), and `sem` (semantics):
//!
//! | `sem` | meaning | extra fields |
//! |---|---|---|
//! | `delta` | counter change since last epoch | `delta` (signed), `total` (absolute) |
//! | `window` | raw observations pushed since last epoch, push order | `values`, `dropped` (evicted before the flush saw them) |
//! | `instant` | last-write-wins value (gauges, SLO) | `value` |
//! | `stat` | accumulator summary at this epoch | `count`, `mean`, `min`, `max` |
//!
//! Derived per-tenant SLO records (`src == "slo"`, `sem == "instant"`)
//! are `slo_miss_rate`, `slo_p99_normalized` and `slo_overrun_rate`,
//! windowed over the pipeline's configured number of recent epochs (see
//! [`slo::SloConfig`]).

#![warn(missing_docs)]

pub mod delta;
pub mod jsonl;
pub mod sink;
pub mod slo;

pub use delta::{CounterDelta, DeltaEngine, EpochDelta, SampleRecord, SloRecord, StatRecord};
pub use sink::{FanOut, FanOutSink, JsonlSink, RingHandle, RingSink, TelemetrySink, TenantPoint};
pub use slo::{LeafPortMap, SloConfig, SloTracker};

use bluescale_sim::metrics::MetricsRegistry;
use bluescale_sim::Cycle;

/// A configured telemetry pipeline: delta engine + SLO tracker + sinks,
/// flushed every `period` cycles by the host system.
///
/// Hosts integrate it in three steps: [`Pipeline::align`] when attaching,
/// [`Pipeline::next_flush`] to bound each simulation span, and
/// [`Pipeline::flush`] once the span reaches the boundary. The host calls
/// [`Pipeline::finish`] after the run's final accounting so the stream's
/// tail matches the end-of-run snapshot.
pub struct Pipeline {
    period: Cycle,
    next_flush: Cycle,
    engine: DeltaEngine,
    slo: SloTracker,
    sinks: Vec<Box<dyn TelemetrySink + Send>>,
    finished: bool,
}

impl Pipeline {
    /// Creates a pipeline flushing every `period` cycles (min 1).
    pub fn new(period: Cycle, slo: SloConfig) -> Self {
        Self {
            period: period.max(1),
            next_flush: period.max(1),
            engine: DeltaEngine::new(),
            slo: SloTracker::new(slo),
            sinks: Vec::new(),
            finished: false,
        }
    }

    /// Registers a sink. Epochs are delivered to sinks in registration
    /// order.
    pub fn add_sink<S: TelemetrySink + Send + 'static>(&mut self, sink: S) {
        self.sinks.push(Box::new(sink));
    }

    /// Aligns the first flush boundary to one period after `now` (called
    /// by the host when attaching mid-run).
    pub fn align(&mut self, now: Cycle) {
        self.next_flush = now + self.period;
    }

    /// The cycle at or after which the next flush is due.
    pub fn next_flush(&self) -> Cycle {
        self.next_flush
    }

    /// The flush period, cycles.
    pub fn period(&self) -> Cycle {
        self.period
    }

    /// Epochs flushed so far.
    pub fn epochs_flushed(&self) -> u64 {
        self.engine.next_epoch()
    }

    /// Extracts and delivers one epoch if `cycle` has reached the flush
    /// boundary; returns whether a flush happened. The boundary then
    /// advances to the first period multiple strictly beyond `cycle`, so
    /// the host's span loop always makes progress.
    pub fn flush_due(
        &mut self,
        cycle: Cycle,
        sources: &[(&'static str, &MetricsRegistry)],
    ) -> bool {
        if cycle < self.next_flush {
            return false;
        }
        self.flush(cycle, sources);
        true
    }

    /// Unconditionally extracts and delivers one epoch.
    pub fn flush(&mut self, cycle: Cycle, sources: &[(&'static str, &MetricsRegistry)]) {
        let mut delta = self.engine.extract(cycle, sources);
        delta.slo = self.slo.on_epoch(&delta);
        if !delta.is_empty() {
            for sink in &mut self.sinks {
                sink.on_epoch(&delta);
            }
        }
        while self.next_flush <= cycle {
            self.next_flush += self.period;
        }
    }

    /// Final flush (captures anything recorded after the last boundary,
    /// e.g. end-of-run accounting) followed by sink finalization.
    /// Idempotent; later flush calls are not prevented but the host
    /// should treat the pipeline as closed.
    pub fn finish(&mut self, cycle: Cycle, sources: &[(&'static str, &MetricsRegistry)]) {
        if self.finished {
            return;
        }
        self.flush(cycle, sources);
        for sink in &mut self.sinks {
            sink.finish();
        }
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_sim::metrics::{ComponentId, Counter};

    #[test]
    fn pipeline_flushes_on_period_boundaries() {
        let mut reg = MetricsRegistry::new();
        let mut pipe = Pipeline::new(100, SloConfig::default());
        let (sink, handle) = RingSink::new(8);
        pipe.add_sink(sink);
        pipe.align(0);
        assert_eq!(pipe.next_flush(), 100);
        reg.add(ComponentId::Client(0), Counter::Issued, 1);
        assert!(!pipe.flush_due(99, &[("harness", &reg)]));
        assert!(pipe.flush_due(100, &[("harness", &reg)]));
        assert_eq!(pipe.next_flush(), 200);
        assert_eq!(handle.epochs_seen(), 1);
        // Overshooting a boundary still advances strictly past `cycle`.
        reg.add(ComponentId::Client(0), Counter::Issued, 1);
        assert!(pipe.flush_due(450, &[("harness", &reg)]));
        assert_eq!(pipe.next_flush(), 500);
    }

    #[test]
    fn empty_epochs_are_not_delivered() {
        let reg = MetricsRegistry::new();
        let mut pipe = Pipeline::new(10, SloConfig::default());
        let (sink, handle) = RingSink::new(8);
        pipe.add_sink(sink);
        pipe.flush(10, &[("harness", &reg)]);
        pipe.flush(20, &[("harness", &reg)]);
        assert_eq!(handle.epochs_seen(), 0, "nothing changed, nothing sent");
        // Epoch numbers still advance, so later epochs stay monotone.
        assert_eq!(pipe.epochs_flushed(), 2);
    }

    #[test]
    fn finish_is_idempotent_and_captures_the_tail() {
        let mut reg = MetricsRegistry::new();
        let mut pipe = Pipeline::new(1000, SloConfig::default());
        let (sink, handle) = RingSink::new(8);
        pipe.add_sink(sink);
        reg.add(ComponentId::Client(3), Counter::Missed, 2);
        pipe.finish(50, &[("harness", &reg)]);
        pipe.finish(50, &[("harness", &reg)]);
        assert_eq!(handle.epochs_seen(), 1);
        let series = handle.series(3);
        assert_eq!(series.len(), 1);
        assert_eq!(series[0].missed, 2);
    }
}
