//! Rejection-path tests for runtime reconfiguration: a rejected admission
//! must leave the interconnect exactly as it was — every interface at
//! every SE bit-identical — and malformed requests must surface as typed
//! errors, never panics.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect, BuildError, InjectError};
use bluescale_interconnect::{AccessKind, Interconnect, MemoryRequest};
use bluescale_rt::task::{Task, TaskSet};

fn sets(n: usize, period: u64, wcet: u64) -> Vec<TaskSet> {
    (0..n)
        .map(|_| TaskSet::new(vec![Task::new(0, period, wcet).unwrap()]).unwrap())
        .collect()
}

fn request(client: u32, id: u64) -> MemoryRequest {
    MemoryRequest {
        id,
        client,
        task: 0,
        addr: (client as u64) << 20,
        kind: AccessKind::Read,
        issued_at: 0,
        deadline: 400,
        blocked_cycles: 0,
    }
}

#[test]
fn rejected_admission_restores_every_interface_bit_identically() {
    let mut ic =
        BlueScaleInterconnect::new(BlueScaleConfig::for_clients(16), &sets(16, 400, 4)).unwrap();
    assert!(ic.composition().schedulable);
    let before_interfaces = ic.composition().interfaces.clone();
    let before_tasks: Vec<TaskSet> = ic.client_tasks().to_vec();
    let before_bandwidth = ic.composition().root_bandwidth;

    // A hog that would blow the root budget: rejected, not an error.
    let hog = TaskSet::new(vec![Task::new(0, 100, 95).unwrap()]).unwrap();
    let admitted = ic.admit_client_tasks(7, hog).unwrap();
    assert!(!admitted);

    // Rollback left no trace anywhere — not just on client 7's path.
    assert_eq!(ic.composition().interfaces, before_interfaces);
    assert_eq!(ic.client_tasks(), &before_tasks[..]);
    assert_eq!(ic.composition().root_bandwidth, before_bandwidth);
    assert!(ic.composition().schedulable);
}

#[test]
fn admission_for_unknown_client_is_a_typed_error() {
    let mut ic =
        BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets(4, 100, 1)).unwrap();
    let before = ic.composition().interfaces.clone();
    let tasks = TaskSet::new(vec![Task::new(0, 100, 1).unwrap()]).unwrap();
    let err = ic.admit_client_tasks(11, tasks.clone()).unwrap_err();
    assert_eq!(err, BuildError::UnknownClient { client: 11 });
    let err = ic.update_client_tasks(99, tasks).unwrap_err();
    assert_eq!(err, BuildError::UnknownClient { client: 99 });
    assert_eq!(ic.composition().interfaces, before, "untouched on error");
}

#[test]
fn malformed_task_parameters_leave_configuration_untouched() {
    let mut ic =
        BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets(4, 100, 1)).unwrap();
    let before = ic.composition().interfaces.clone();
    // Duplicate task ids within one set: rejected by the analysis layer.
    let bad = TaskSet::new(vec![
        Task::new(0, 100, 1).unwrap(),
        Task::new(0, 200, 1).unwrap(),
    ]);
    // The task-set constructor may reject duplicates outright; either
    // layer catching it is fine, as long as nothing was mutated.
    if let Ok(set) = bad {
        let err = ic.update_client_tasks(1, set).unwrap_err();
        assert!(matches!(err, BuildError::Analysis(_)));
    }
    assert_eq!(ic.composition().interfaces, before);
}

#[test]
fn inject_for_unknown_client_errors_instead_of_panicking() {
    let mut ic =
        BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets(4, 100, 1)).unwrap();
    let err = ic.try_inject(request(42, 1), 0).unwrap_err();
    assert!(matches!(
        err,
        InjectError::UnknownClient {
            client: 42,
            num_clients: 4,
            ..
        }
    ));
    // The trait-level path degrades gracefully: the request comes back.
    let bounced = ic.inject(request(42, 2), 0).unwrap_err();
    assert_eq!(bounced.id, 2);
    assert_eq!(ic.pending(), 0);

    // And a valid client still works through both paths.
    ic.try_inject(request(3, 3), 0).unwrap();
    assert_eq!(ic.pending(), 1);
}

#[test]
fn port_full_is_distinguishable_from_malformed() {
    let mut ic =
        BlueScaleInterconnect::new(BlueScaleConfig::for_clients(4), &sets(4, 100, 1)).unwrap();
    let capacity = ic.config().buffer_capacity;
    for id in 0..capacity as u64 {
        ic.try_inject(request(0, id + 1), 0).unwrap();
    }
    let err = ic.try_inject(request(0, 999), 0).unwrap_err();
    match err {
        InjectError::PortFull(req) => assert_eq!(req.id, 999),
        other => panic!("expected PortFull, got {other:?}"),
    }
}
