//! Runs the fault-injection isolation extension: BlueScale (strict
//! gating, guards on) under every fault class, asserting that non-faulted
//! clients stay miss-free and within their normalized WCRT bound.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin isolation_fault -- [--clients N] [--horizon N] [--seed N] [--json DIR]`
//!
//! With `--json DIR`, a metrics snapshot `isolation_fault_metrics.json`
//! is written (series 0 = fault-free control, then one series per
//! `FaultClass::ALL` entry in order).

use bluescale_bench::isolation_fault::{render, run_with_registry, IsolationFaultConfig};
use bluescale_bench::{arg_u64, arg_usize, arg_value, export};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = IsolationFaultConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    config.seed = arg_u64(&args, "--seed", config.seed);
    let (rows, mut registry) = run_with_registry(&config);
    println!("{}", render(&config, &rows));
    if let Some(dir) = arg_value(&args, "--json") {
        let path = Path::new(&dir).join("isolation_fault_metrics.json");
        match export::write_snapshot(&path, &mut registry) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
