//! The resource vector reported by synthesis: LUTs, registers, DSPs, RAM
//! and power.

use std::ops::Add;

/// FPGA resource usage of one design element (one row of the paper's
/// Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HardwareCost {
    /// Look-up tables.
    pub luts: u64,
    /// Flip-flop registers.
    pub registers: u64,
    /// DSP slices.
    pub dsps: u64,
    /// Block RAM, in KiB.
    pub ram_kb: u64,
    /// Power in milliwatts (static + dynamic at fixed voltage/clock).
    pub power_mw: f64,
}

impl HardwareCost {
    /// A zero-cost element.
    pub fn new() -> Self {
        Self::default()
    }

    /// Scales every resource by an integer replication factor (n identical
    /// instances synthesized independently).
    pub fn replicate(&self, n: u64) -> Self {
        Self {
            luts: self.luts * n,
            registers: self.registers * n,
            dsps: self.dsps * n,
            ram_kb: self.ram_kb * n,
            power_mw: self.power_mw * n as f64,
        }
    }
}

impl Add for HardwareCost {
    type Output = HardwareCost;

    fn add(self, rhs: HardwareCost) -> HardwareCost {
        HardwareCost {
            luts: self.luts + rhs.luts,
            registers: self.registers + rhs.registers,
            dsps: self.dsps + rhs.dsps,
            ram_kb: self.ram_kb + rhs.ram_kb,
            power_mw: self.power_mw + rhs.power_mw,
        }
    }
}

impl std::iter::Sum for HardwareCost {
    fn sum<I: Iterator<Item = HardwareCost>>(iter: I) -> Self {
        iter.fold(HardwareCost::default(), Add::add)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_is_componentwise() {
        let a = HardwareCost {
            luts: 1,
            registers: 2,
            dsps: 3,
            ram_kb: 4,
            power_mw: 5.0,
        };
        let b = HardwareCost {
            luts: 10,
            registers: 20,
            dsps: 30,
            ram_kb: 40,
            power_mw: 50.0,
        };
        let c = a + b;
        assert_eq!(c.luts, 11);
        assert_eq!(c.registers, 22);
        assert_eq!(c.dsps, 33);
        assert_eq!(c.ram_kb, 44);
        assert!((c.power_mw - 55.0).abs() < 1e-12);
    }

    #[test]
    fn replicate_scales_all_fields() {
        let a = HardwareCost {
            luts: 100,
            registers: 200,
            dsps: 1,
            ram_kb: 2,
            power_mw: 3.5,
        };
        let r = a.replicate(4);
        assert_eq!(r.luts, 400);
        assert_eq!(r.registers, 800);
        assert_eq!(r.dsps, 4);
        assert_eq!(r.ram_kb, 8);
        assert!((r.power_mw - 14.0).abs() < 1e-12);
    }

    #[test]
    fn sum_over_iterator() {
        let parts = vec![
            HardwareCost {
                luts: 1,
                ..HardwareCost::default()
            };
            5
        ];
        let total: HardwareCost = parts.into_iter().sum();
        assert_eq!(total.luts, 5);
    }
}
