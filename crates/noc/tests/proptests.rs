//! Property-based tests of the mesh: exactly-once delivery from random
//! sources to random destinations.

use bluescale_noc::mesh::Packet;
use bluescale_noc::{Mesh, MeshConfig, NodeId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_injected_packet_arrives_exactly_once(
        side in 2usize..6,
        routes in prop::collection::vec((0usize..36, 0usize..36), 1..40),
    ) {
        let mut mesh: Mesh<usize> = Mesh::new(MeshConfig {
            width: side,
            height: side,
            buffer_capacity: 4,
        });
        let node = |i: usize| NodeId::new(i % side, (i / side) % side);
        let mut accepted = Vec::new();
        let mut delivered = Vec::new();
        let drain = |mesh: &mut Mesh<usize>, delivered: &mut Vec<(usize, NodeId)>| {
            for y in 0..side {
                for x in 0..side {
                    while let Some(p) = mesh.take_delivered(NodeId::new(x, y)) {
                        delivered.push((p.payload, NodeId::new(x, y)));
                    }
                }
            }
        };
        for (i, &(src, dst)) in routes.iter().enumerate() {
            let ok = mesh
                .inject(node(src), Packet { dest: node(dst), payload: i })
                .is_ok();
            if ok {
                accepted.push((i, node(dst)));
            }
            mesh.step();
            drain(&mut mesh, &mut delivered);
        }
        for _ in 0..10_000 {
            mesh.step();
            drain(&mut mesh, &mut delivered);
            if mesh.occupancy() == 0 {
                break;
            }
        }
        prop_assert_eq!(mesh.occupancy(), 0, "packets stuck in the mesh");
        delivered.sort_by_key(|(i, _)| *i);
        let mut expected = accepted.clone();
        expected.sort_by_key(|(i, _)| *i);
        prop_assert_eq!(delivered, expected);
    }
}
