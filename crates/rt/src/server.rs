//! Server tasks as period/budget countdown counters.
//!
//! The hardware local scheduler of a Scale Element (paper, Section 4.2)
//! realizes each server task `τ_X = (Π_X, Θ_X)` with two countdown
//! counters: the **P-counter** reloads every `Π_X` cycles and, on reload,
//! also resets the **B-counter** to `Θ_X`. The B-counter decrements by one
//! each cycle the server's client is granted the provider port. A server is
//! *eligible* while its B-counter is positive, and its GEDF deadline is its
//! next replenishment instant.

use crate::supply::PeriodicResource;
use crate::Time;

/// Software model of a hardware server task (P-counter + B-counter pair).
///
/// # Example
///
/// ```
/// use bluescale_rt::supply::PeriodicResource;
/// use bluescale_rt::server::ServerTask;
///
/// let iface = PeriodicResource::new(4, 2).expect("valid");
/// let mut srv = ServerTask::new(iface);
/// assert!(srv.has_budget());
/// srv.consume();
/// srv.consume();
/// assert!(!srv.has_budget()); // budget exhausted for this period
/// for _ in 0..4 { srv.tick(); }
/// assert!(srv.has_budget()); // replenished at the period boundary
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServerTask {
    interface: PeriodicResource,
    /// Cycles until the next replenishment (the P-counter's current value).
    p_counter: Time,
    /// Remaining budget in the current period (the B-counter's value).
    b_counter: Time,
    /// An interface staged by [`reprogram_at_boundary`](Self::reprogram_at_boundary),
    /// applied at the next replenishment.
    pending: Option<PeriodicResource>,
}

impl ServerTask {
    /// Creates a server that starts fully replenished, as the hardware does
    /// on reset.
    pub fn new(interface: PeriodicResource) -> Self {
        Self {
            interface,
            p_counter: interface.period(),
            b_counter: interface.budget(),
            pending: None,
        }
    }

    /// The configured interface `(Π, Θ)`.
    pub fn interface(&self) -> PeriodicResource {
        self.interface
    }

    /// Reprograms the counters with a new interface (the interface
    /// selector's program port). Takes effect immediately, starting a fresh
    /// period — mirroring a reset through the counter's `P`/`R` ports. Any
    /// staged boundary swap is discarded.
    pub fn reprogram(&mut self, interface: PeriodicResource) {
        self.interface = interface;
        self.p_counter = interface.period();
        self.b_counter = interface.budget();
        self.pending = None;
    }

    /// Stages `interface` to take effect at the next replenishment
    /// boundary — the safe mode-change protocol. The current countdown and
    /// remaining budget are untouched, so the supply guaranteed to clients
    /// already scheduled under the old parameters is delivered in full; the
    /// very first period served under the new parameters is a complete,
    /// fully-budgeted one. A second call before the boundary replaces the
    /// staged interface (last write wins).
    pub fn reprogram_at_boundary(&mut self, interface: PeriodicResource) {
        self.pending = Some(interface);
    }

    /// The interface staged for the next replenishment boundary, if any.
    pub fn pending_interface(&self) -> Option<PeriodicResource> {
        self.pending
    }

    /// Remaining budget in the current period.
    pub fn budget_remaining(&self) -> Time {
        self.b_counter
    }

    /// Cycles until the next replenishment.
    pub fn until_replenish(&self) -> Time {
        self.p_counter
    }

    /// Whether this server may forward a request this cycle (`Θ > 0` left).
    pub fn has_budget(&self) -> bool {
        self.b_counter > 0
    }

    /// The server's absolute GEDF deadline: its next replenishment instant.
    pub fn deadline(&self, now: Time) -> Time {
        now + self.p_counter
    }

    /// Consumes one budget unit (the scheduled client used the provider
    /// port for one cycle).
    ///
    /// # Panics
    ///
    /// Panics if the budget is already exhausted — the scheduler must only
    /// grant eligible servers.
    pub fn consume(&mut self) {
        assert!(self.b_counter > 0, "consume() on an exhausted server");
        self.b_counter -= 1;
    }

    /// Advances one clock cycle. Returns `true` if the period boundary was
    /// crossed and the budget replenished. A staged interface (see
    /// [`reprogram_at_boundary`](Self::reprogram_at_boundary)) is applied
    /// exactly at the boundary, before the reload.
    pub fn tick(&mut self) -> bool {
        self.p_counter -= 1;
        if self.p_counter == 0 {
            if let Some(next) = self.pending.take() {
                self.interface = next;
            }
            self.p_counter = self.interface.period();
            self.b_counter = self.interface.budget();
            true
        } else {
            false
        }
    }

    /// Decomposes the server into its raw counter state:
    /// `(interface, p_counter, b_counter, pending)`. Together with
    /// [`from_parts`](Self::from_parts) this lets arena-style storage
    /// (structure-of-arrays hot cores) keep server state in parallel
    /// slices while routing all staging/advance semantics through this
    /// type — the single source of truth for counter arithmetic.
    pub fn into_parts(self) -> (PeriodicResource, Time, Time, Option<PeriodicResource>) {
        (self.interface, self.p_counter, self.b_counter, self.pending)
    }

    /// Reassembles a server from counter state captured by
    /// [`into_parts`](Self::into_parts). Callers must pass values from a
    /// real server state: `p_counter` in `[1, Π]` of the live interface
    /// and `b_counter ≤ Θ`; this is not validated here (the arena is
    /// trusted the same way the scheduler's own fields are).
    pub fn from_parts(
        interface: PeriodicResource,
        p_counter: Time,
        b_counter: Time,
        pending: Option<PeriodicResource>,
    ) -> Self {
        Self {
            interface,
            p_counter,
            b_counter,
            pending,
        }
    }

    /// Advances `delta` cycles in closed form, exactly as `delta` consecutive
    /// [`tick`](Self::tick)s with no consumption in between would. Returns the
    /// number of period boundaries crossed (the count of `tick()`s that would
    /// have returned `true`).
    ///
    /// The fast-forward path uses this to jump over provably-idle stretches:
    /// since nothing consumes budget while idle, the only state change is the
    /// countdown itself, and the final counter values depend only on `delta`.
    pub fn advance(&mut self, delta: Time) -> u64 {
        if delta < self.p_counter {
            self.p_counter -= delta;
            return 0;
        }
        let past = delta - self.p_counter;
        // The first boundary applies any staged interface; every later
        // crossing inside this jump then runs on the new period.
        if let Some(next) = self.pending.take() {
            self.interface = next;
        }
        let period = self.interface.period();
        let crossings = 1 + past / period;
        // `period - rem` lands on `period` exactly at a boundary, matching
        // tick()'s reload.
        self.p_counter = period - past % period;
        self.b_counter = self.interface.budget();
        crossings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iface(p: Time, b: Time) -> PeriodicResource {
        PeriodicResource::new(p, b).unwrap()
    }

    #[test]
    fn starts_replenished() {
        let s = ServerTask::new(iface(10, 4));
        assert_eq!(s.budget_remaining(), 4);
        assert_eq!(s.until_replenish(), 10);
        assert!(s.has_budget());
    }

    #[test]
    fn consume_drains_budget() {
        let mut s = ServerTask::new(iface(10, 2));
        s.consume();
        assert_eq!(s.budget_remaining(), 1);
        s.consume();
        assert!(!s.has_budget());
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn consume_past_zero_panics() {
        let mut s = ServerTask::new(iface(10, 1));
        s.consume();
        s.consume();
    }

    #[test]
    fn replenishes_exactly_at_period() {
        let mut s = ServerTask::new(iface(5, 3));
        s.consume();
        s.consume();
        s.consume();
        for i in 1..5 {
            assert!(!s.tick(), "must not replenish at cycle {i}");
            assert!(!s.has_budget());
        }
        assert!(s.tick(), "must replenish at the period boundary");
        assert_eq!(s.budget_remaining(), 3);
        assert_eq!(s.until_replenish(), 5);
    }

    #[test]
    fn deadline_tracks_replenishment() {
        let mut s = ServerTask::new(iface(8, 2));
        assert_eq!(s.deadline(100), 108);
        s.tick();
        s.tick();
        assert_eq!(s.deadline(102), 108);
    }

    #[test]
    fn long_run_supply_matches_bandwidth() {
        // Greedily consuming whenever possible over many periods must
        // deliver exactly Θ per Π.
        let mut s = ServerTask::new(iface(10, 3));
        let mut supplied = 0u64;
        let horizon = 1000;
        for _ in 0..horizon {
            if s.has_budget() {
                s.consume();
                supplied += 1;
            }
            s.tick();
        }
        assert_eq!(supplied, horizon / 10 * 3);
    }

    #[test]
    fn reprogram_takes_effect_immediately() {
        let mut s = ServerTask::new(iface(10, 1));
        s.consume();
        assert!(!s.has_budget());
        s.reprogram(iface(4, 4));
        assert_eq!(s.budget_remaining(), 4);
        assert_eq!(s.until_replenish(), 4);
        assert_eq!(s.interface().period(), 4);
    }

    #[test]
    fn advance_matches_ticks_exhaustively() {
        // Closed-form advance must equal delta unit ticks for every phase
        // the counter can be in and every jump length up to several periods.
        for (p, b) in [(1u64, 1u64), (3, 1), (5, 2), (7, 7)] {
            for phase in 0..p {
                for delta in 0..(4 * p + 3) {
                    let mut reference = ServerTask::new(iface(p, b));
                    for _ in 0..phase {
                        reference.tick();
                    }
                    if reference.has_budget() {
                        reference.consume(); // perturb B so replenish is visible
                    }
                    let mut jumped = reference;
                    let mut crossings = 0u64;
                    for _ in 0..delta {
                        if reference.tick() {
                            crossings += 1;
                        }
                    }
                    assert_eq!(
                        jumped.advance(delta),
                        crossings,
                        "crossings for p={p} b={b} phase={phase} delta={delta}"
                    );
                    assert_eq!(
                        jumped, reference,
                        "state for p={p} b={b} phase={phase} delta={delta}"
                    );
                }
            }
        }
    }

    #[test]
    fn boundary_reprogram_waits_for_replenishment() {
        let mut s = ServerTask::new(iface(5, 2));
        s.consume();
        s.reprogram_at_boundary(iface(3, 3));
        // Until the boundary the old parameters stay live.
        assert_eq!(s.interface().period(), 5);
        assert_eq!(s.budget_remaining(), 1);
        assert_eq!(s.pending_interface(), Some(iface(3, 3)));
        for i in 1..5 {
            assert!(!s.tick(), "no boundary at cycle {i}");
        }
        assert!(s.tick(), "boundary at the old period");
        // The swap commits exactly at the boundary: new period, full budget.
        assert_eq!(s.interface().period(), 3);
        assert_eq!(s.budget_remaining(), 3);
        assert_eq!(s.until_replenish(), 3);
        assert_eq!(s.pending_interface(), None);
    }

    #[test]
    fn boundary_reprogram_last_write_wins() {
        let mut s = ServerTask::new(iface(5, 2));
        s.reprogram_at_boundary(iface(3, 3));
        s.reprogram_at_boundary(iface(7, 1));
        for _ in 0..5 {
            s.tick();
        }
        assert_eq!(s.interface(), iface(7, 1));
    }

    #[test]
    fn immediate_reprogram_discards_staged_swap() {
        let mut s = ServerTask::new(iface(5, 2));
        s.reprogram_at_boundary(iface(3, 3));
        s.reprogram(iface(9, 4));
        assert_eq!(s.pending_interface(), None);
        for _ in 0..9 {
            s.tick();
        }
        assert_eq!(s.interface(), iface(9, 4), "staged swap was dropped");
    }

    #[test]
    fn advance_matches_ticks_with_staged_swap() {
        // The closed-form jump must commit a staged interface at the first
        // boundary and run every later crossing on the new period, exactly
        // as unit ticks do.
        for (p, b) in [(1u64, 1u64), (3, 1), (5, 2), (7, 7)] {
            for (np, nb) in [(1u64, 1u64), (2, 2), (9, 4)] {
                for phase in 0..p {
                    for delta in 0..(3 * p + 3 * np + 3) {
                        let mut reference = ServerTask::new(iface(p, b));
                        for _ in 0..phase {
                            reference.tick();
                        }
                        reference.reprogram_at_boundary(iface(np, nb));
                        let mut jumped = reference;
                        let mut crossings = 0u64;
                        for _ in 0..delta {
                            if reference.tick() {
                                crossings += 1;
                            }
                        }
                        assert_eq!(
                            jumped.advance(delta),
                            crossings,
                            "crossings for p={p} b={b} -> np={np} nb={nb} phase={phase} delta={delta}"
                        );
                        assert_eq!(
                            jumped, reference,
                            "state for p={p} b={b} -> np={np} nb={nb} phase={phase} delta={delta}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn advance_zero_is_noop() {
        let mut s = ServerTask::new(iface(10, 4));
        s.consume();
        let before = s;
        assert_eq!(s.advance(0), 0);
        assert_eq!(s, before);
    }

    #[test]
    fn unconsumed_budget_does_not_accumulate() {
        let mut s = ServerTask::new(iface(4, 2));
        for _ in 0..8 {
            s.tick();
        }
        // Two full periods with zero consumption: budget is still Θ, not 3Θ.
        assert_eq!(s.budget_remaining(), 2);
    }
}
