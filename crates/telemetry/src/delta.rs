//! Delta-snapshot extraction from [`MetricsRegistry`].
//!
//! The [`DeltaEngine`] remembers, per `(source, component, metric)` key,
//! how much of each registry it has already exported: counter baselines,
//! gauge last-values, accumulator counts and raw-sample cursors (in
//! [`Samples::total_pushed`](bluescale_sim::stats::Samples::total_pushed)
//! coordinates). Each [`DeltaEngine::extract`] call produces one
//! [`EpochDelta`] containing only what changed since the previous epoch,
//! and advances the baselines.
//!
//! Extraction is strictly **read-only** on the registries — this is the
//! structural half of the streaming-on/off bit-identity invariant (the
//! other half is that flushes run at span boundaries, never inside the
//! per-cycle hot loop). The engine never writes derived values back.
//!
//! A run is typically observed through more than one registry (the harness
//! registry plus the interconnect-internal "fabric" registry), and the two
//! can both grow between flushes. Baselines are therefore keyed by a
//! caller-chosen *source* label; folding a stream reconstructs each source
//! separately, exactly mirroring how `merged_registry()` combines them at
//! end of run.

use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry, SampleKind};
use bluescale_sim::Cycle;
use std::collections::BTreeMap;

/// Change in one counter since the previous epoch.
///
/// `delta` is signed because counters may be retracted
/// ([`MetricsRegistry::sub`]) or mirrored from absolute values that can
/// move backwards; folding signed deltas reconstructs totals exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterDelta {
    /// Which registry this came from (e.g. `"harness"`, `"fabric"`).
    pub source: &'static str,
    /// The reporting component.
    pub component: ComponentId,
    /// The counter.
    pub counter: Counter,
    /// Change since the previous epoch.
    pub delta: i64,
    /// Absolute value at this epoch (redundant with the fold; lets a
    /// consumer cross-check).
    pub total: u64,
}

/// Instantaneous gauge value (emitted only when it changed).
#[derive(Debug, Clone, PartialEq)]
pub struct GaugeRecord {
    /// Which registry this came from.
    pub source: &'static str,
    /// The reporting component.
    pub component: ComponentId,
    /// Gauge name.
    pub name: &'static str,
    /// Current value (last-write-wins semantics).
    pub value: f64,
}

/// Instantaneous summary of an [`OnlineStats`](bluescale_sim::stats::OnlineStats)
/// accumulator (emitted only when its count changed).
#[derive(Debug, Clone, PartialEq)]
pub struct StatRecord {
    /// Which registry this came from.
    pub source: &'static str,
    /// The reporting component.
    pub component: ComponentId,
    /// The distribution.
    pub kind: SampleKind,
    /// Observations so far.
    pub count: u64,
    /// Running mean.
    pub mean: f64,
    /// Smallest observation, if any.
    pub min: Option<f64>,
    /// Largest observation, if any.
    pub max: Option<f64>,
}

/// The raw observations pushed into a sample collector since the previous
/// epoch, in push order.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleRecord {
    /// Which registry this came from.
    pub source: &'static str,
    /// The reporting component.
    pub component: ComponentId,
    /// The distribution.
    pub kind: SampleKind,
    /// New observations since the previous epoch, oldest first.
    pub values: Vec<f64>,
    /// Observations evicted by a retention window before this flush could
    /// see them (0 unless the flush period far exceeds the window).
    pub dropped: u64,
}

/// A derived per-tenant SLO value computed at a flush boundary.
///
/// SLO values live only in the stream — they are never written back into
/// a registry, so enabling telemetry cannot perturb simulation results.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRecord {
    /// The tenant (client slot) the value describes.
    pub tenant: u32,
    /// Stable metric name (`slo_miss_rate`, `slo_p99_normalized`,
    /// `slo_overrun_rate`).
    pub metric: &'static str,
    /// The windowed value.
    pub value: f64,
}

/// Everything that changed between two consecutive flushes.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochDelta {
    /// Monotone epoch number (0 for the first flush).
    pub epoch: u64,
    /// Simulation cycle at which the flush ran.
    pub cycle: Cycle,
    /// Counter changes.
    pub counters: Vec<CounterDelta>,
    /// Gauge updates.
    pub gauges: Vec<GaugeRecord>,
    /// Accumulator updates.
    pub stats: Vec<StatRecord>,
    /// Raw-sample windows.
    pub windows: Vec<SampleRecord>,
    /// Derived SLO values (filled in by the pipeline's tracker).
    pub slo: Vec<SloRecord>,
}

impl EpochDelta {
    /// Whether the epoch carries no information beyond its timestamp.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.stats.is_empty()
            && self.windows.is_empty()
            && self.slo.is_empty()
    }
}

/// Stateful extractor of [`EpochDelta`]s from one or more registries.
#[derive(Debug, Default)]
pub struct DeltaEngine {
    epoch: u64,
    counter_base: BTreeMap<(&'static str, ComponentId, Counter), u64>,
    gauge_base: BTreeMap<(&'static str, ComponentId, &'static str), u64>,
    stat_base: BTreeMap<(&'static str, ComponentId, SampleKind), u64>,
    cursors: BTreeMap<(&'static str, ComponentId, SampleKind), u64>,
}

impl DeltaEngine {
    /// Creates an engine with all baselines at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The epoch number the next [`DeltaEngine::extract`] will produce.
    pub fn next_epoch(&self) -> u64 {
        self.epoch
    }

    /// Extracts one epoch of changes across `sources` and advances the
    /// baselines. Registries are read, never written. The `slo` field of
    /// the returned delta is left empty — derivation is the tracker's job.
    pub fn extract(
        &mut self,
        cycle: Cycle,
        sources: &[(&'static str, &MetricsRegistry)],
    ) -> EpochDelta {
        let epoch = self.epoch;
        self.epoch += 1;
        let mut out = EpochDelta {
            epoch,
            cycle,
            counters: Vec::new(),
            gauges: Vec::new(),
            stats: Vec::new(),
            windows: Vec::new(),
            slo: Vec::new(),
        };
        for &(source, reg) in sources {
            for ((component, counter), total) in reg.counters_iter() {
                let base = self
                    .counter_base
                    .entry((source, component, counter))
                    .or_insert(0);
                let delta = total as i64 - *base as i64;
                if delta != 0 {
                    out.counters.push(CounterDelta {
                        source,
                        component,
                        counter,
                        delta,
                        total,
                    });
                    *base = total;
                }
            }
            for ((component, name), value) in reg.gauges_iter() {
                // Bitwise comparison so a first sight (no baseline) and any
                // change — including NaN-to-NaN with different payloads —
                // are both emitted exactly once.
                let bits = value.to_bits();
                let key = (source, component, name);
                if self.gauge_base.get(&key) != Some(&bits) {
                    self.gauge_base.insert(key, bits);
                    out.gauges.push(GaugeRecord {
                        source,
                        component,
                        name,
                        value,
                    });
                }
            }
            for ((component, kind), stats) in reg.stats_iter() {
                let base = self.stat_base.entry((source, component, kind)).or_insert(0);
                if stats.count() != *base {
                    *base = stats.count();
                    out.stats.push(StatRecord {
                        source,
                        component,
                        kind,
                        count: stats.count(),
                        mean: stats.mean(),
                        min: stats.min(),
                        max: stats.max(),
                    });
                }
            }
            for ((component, kind), samples) in reg.samples_iter() {
                let cursor = self.cursors.entry((source, component, kind)).or_insert(0);
                if samples.total_pushed() > *cursor {
                    let (tail, dropped) = samples.tail_from(*cursor);
                    out.windows.push(SampleRecord {
                        source,
                        component,
                        kind,
                        values: tail.to_vec(),
                        dropped,
                    });
                    *cursor = samples.total_pushed();
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CLIENT: ComponentId = ComponentId::Client(0);

    #[test]
    fn counters_stream_as_diffs() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        reg.add(CLIENT, Counter::Issued, 5);
        let d0 = engine.extract(100, &[("harness", &reg)]);
        assert_eq!(d0.epoch, 0);
        assert_eq!(d0.counters.len(), 1);
        assert_eq!(d0.counters[0].delta, 5);
        assert_eq!(d0.counters[0].total, 5);
        // Nothing changed: the next epoch is empty.
        let d1 = engine.extract(200, &[("harness", &reg)]);
        assert_eq!(d1.epoch, 1);
        assert!(d1.is_empty());
        reg.add(CLIENT, Counter::Issued, 3);
        reg.sub(CLIENT, Counter::Issued, 1);
        let d2 = engine.extract(300, &[("harness", &reg)]);
        assert_eq!(d2.counters[0].delta, 2);
        assert_eq!(d2.counters[0].total, 7);
    }

    #[test]
    fn retraction_below_baseline_is_signed() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        reg.add(CLIENT, Counter::Rejected, 4);
        engine.extract(0, &[("harness", &reg)]);
        reg.sub(CLIENT, Counter::Rejected, 3);
        let d = engine.extract(1, &[("harness", &reg)]);
        assert_eq!(d.counters[0].delta, -3);
        assert_eq!(d.counters[0].total, 1);
    }

    #[test]
    fn sample_windows_drain_in_push_order() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        reg.sample(CLIENT, SampleKind::Latency, 1.0);
        reg.sample(CLIENT, SampleKind::Latency, 2.0);
        let d0 = engine.extract(0, &[("harness", &reg)]);
        assert_eq!(d0.windows[0].values, vec![1.0, 2.0]);
        reg.sample(CLIENT, SampleKind::Latency, 3.0);
        let d1 = engine.extract(1, &[("harness", &reg)]);
        assert_eq!(d1.windows[0].values, vec![3.0]);
        assert_eq!(d1.windows[0].dropped, 0);
    }

    #[test]
    fn sources_are_tracked_independently() {
        let mut harness = MetricsRegistry::new();
        let mut fabric = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        harness.sample(CLIENT, SampleKind::Latency, 1.0);
        engine.extract(0, &[("harness", &harness), ("fabric", &fabric)]);
        // Only the fabric grows; the harness cursor must not move.
        fabric.sample(CLIENT, SampleKind::Latency, 9.0);
        harness.sample(CLIENT, SampleKind::Latency, 2.0);
        let d = engine.extract(1, &[("harness", &harness), ("fabric", &fabric)]);
        assert_eq!(d.windows.len(), 2);
        let h = d.windows.iter().find(|w| w.source == "harness").unwrap();
        let f = d.windows.iter().find(|w| w.source == "fabric").unwrap();
        assert_eq!(h.values, vec![2.0]);
        assert_eq!(f.values, vec![9.0]);
    }

    #[test]
    fn stats_and_gauges_emit_on_change_only() {
        let mut reg = MetricsRegistry::new();
        let mut engine = DeltaEngine::new();
        reg.observe(CLIENT, SampleKind::Queueing, 4.0);
        reg.set_gauge(ComponentId::System, "util", 0.5);
        let d0 = engine.extract(0, &[("harness", &reg)]);
        assert_eq!(d0.stats.len(), 1);
        assert_eq!(d0.stats[0].count, 1);
        assert_eq!(d0.gauges.len(), 1);
        let d1 = engine.extract(1, &[("harness", &reg)]);
        assert!(d1.stats.is_empty());
        assert!(d1.gauges.is_empty());
        reg.set_gauge(ComponentId::System, "util", 0.75);
        let d2 = engine.extract(2, &[("harness", &reg)]);
        assert_eq!(d2.gauges[0].value, 0.75);
    }

    #[test]
    fn eviction_between_flushes_reports_dropped() {
        let mut reg = MetricsRegistry::new();
        reg.set_sample_window(Some(4));
        let mut engine = DeltaEngine::new();
        for v in 0..100 {
            reg.sample(CLIENT, SampleKind::Latency, v as f64);
        }
        let d = engine.extract(0, &[("harness", &reg)]);
        let w = &d.windows[0];
        assert_eq!(w.dropped + w.values.len() as u64, 100);
        assert_eq!(w.values.last().copied(), Some(99.0));
    }
}
