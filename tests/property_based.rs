//! Property-based tests (proptest) on the analysis core and the data
//! structures — the invariants the whole reproduction leans on.

use bluescale_repro::rt::demand::{change_points, dbf_set};
use bluescale_repro::rt::interface::{
    min_budget_for_period, select_interface, SelectionContext,
};
use bluescale_repro::rt::schedulability::{is_schedulable, is_schedulable_brute};
use bluescale_repro::rt::supply::PeriodicResource;
use bluescale_repro::rt::task::{Task, TaskSet};
use bluescale_repro::rt::validate::edf_meets_deadlines;
use bluescale_repro::sim::rng::SimRng;
use bluescale_repro::sim::stats::{OnlineStats, Samples};
use proptest::prelude::*;

fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..200, 1u64..50).prop_map(move |(period, raw_wcet)| {
        let wcet = raw_wcet.min(period);
        Task::new(id, period, wcet).expect("generated parameters are valid")
    })
}

fn arb_taskset(max_tasks: usize) -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(1u64..1u64 << 16, 1..=max_tasks).prop_flat_map(|seeds| {
        let strategies: Vec<_> = (0..seeds.len())
            .map(|i| arb_task(i as u32))
            .collect();
        strategies.prop_filter_map("utilization must stay ≤ 1", |tasks| {
            TaskSet::new(tasks).ok()
        })
    })
}

fn arb_resource() -> impl Strategy<Value = PeriodicResource> {
    (1u64..60).prop_flat_map(|period| {
        (Just(period), 1u64..=period)
            .prop_map(|(p, b)| PeriodicResource::new(p, b).expect("b ≤ p"))
    })
}

proptest! {
    #[test]
    fn sbf_is_monotone_and_rate_bounded(r in arb_resource(), t in 0u64..500) {
        // Monotone non-decreasing, unit-rate bounded, never exceeds t.
        prop_assert!(r.sbf(t + 1) >= r.sbf(t));
        prop_assert!(r.sbf(t + 1) - r.sbf(t) <= 1);
        prop_assert!(r.sbf(t) <= t);
    }

    #[test]
    fn sbf_dominates_linear_bound(r in arb_resource(), t in 0u64..500) {
        prop_assert!(r.lsbf(t) <= r.sbf(t) as f64 + 1e-9);
    }

    #[test]
    fn sbf_delivers_budget_per_period(r in arb_resource(), k in 1u64..10) {
        // Any window of k periods + worst blackout supplies ≥ k budgets.
        let t = k * r.period() + (r.period() - r.budget());
        prop_assert!(r.sbf(t) >= k * r.budget());
    }

    #[test]
    fn dbf_is_monotone_staircase(set in arb_taskset(4), t in 0u64..500) {
        prop_assert!(dbf_set(&set, t + 1) >= dbf_set(&set, t));
    }

    #[test]
    fn dbf_constant_between_change_points(set in arb_taskset(3)) {
        let pts = change_points(&set, 400);
        for w in pts.windows(2) {
            for t in w[0]..w[1] {
                prop_assert_eq!(dbf_set(&set, t), dbf_set(&set, w[0]));
            }
        }
    }

    #[test]
    fn theorem1_agrees_with_brute_force(
        set in arb_taskset(3),
        r in arb_resource(),
    ) {
        // The bounded test must agree with exhaustive checking (brute-force
        // horizon chosen beyond any β the generated ranges can produce
        // when the bandwidth strictly exceeds the utilization).
        let fast = is_schedulable(&set, &r);
        if r.bandwidth() > set.utilization() + 0.05 {
            let brute = is_schedulable_brute(&set, &r, 30_000);
            prop_assert_eq!(fast, brute);
        } else if fast {
            // A positive answer must always be confirmed by brute force.
            prop_assert!(is_schedulable_brute(&set, &r, 30_000));
        }
    }

    #[test]
    fn selected_interface_is_schedulable_and_covers_utilization(
        set in arb_taskset(3),
    ) {
        let ctx = SelectionContext::isolated(&set);
        if let Ok(iface) = select_interface(&set, &ctx) {
            prop_assert!(is_schedulable(&set, &iface));
            prop_assert!(iface.bandwidth() >= set.utilization() - 1e-9);
        }
    }

    #[test]
    fn min_budget_is_minimal(set in arb_taskset(2), period in 1u64..40) {
        if let Some(theta) = min_budget_for_period(&set, period) {
            let chosen = PeriodicResource::new(period, theta).expect("valid");
            prop_assert!(is_schedulable(&set, &chosen));
            if theta > 1 {
                let smaller = PeriodicResource::new(period, theta - 1).expect("valid");
                prop_assert!(!is_schedulable(&set, &smaller));
            }
        }
    }

    #[test]
    fn admitted_sets_survive_worst_case_supply_simulation(
        set in arb_taskset(3),
        r in arb_resource(),
    ) {
        // The analysis is sound: anything it admits must meet every
        // deadline under the worst-case supply pattern, verified by an
        // independent discrete EDF simulation.
        if is_schedulable(&set, &r) {
            let horizon = set
                .hyperperiod()
                .unwrap_or(10_000)
                .saturating_mul(2)
                .saturating_add(2 * r.period())
                .min(200_000);
            prop_assert!(
                edf_meets_deadlines(&set, &r, horizon),
                "analysis admitted {set:?} on {r:?} but simulation missed"
            );
        }
    }

    #[test]
    fn selected_interface_survives_simulation(set in arb_taskset(2)) {
        let ctx = SelectionContext::isolated(&set);
        if let Ok(iface) = select_interface(&set, &ctx) {
            let horizon = set
                .hyperperiod()
                .unwrap_or(10_000)
                .saturating_mul(2)
                .min(200_000);
            prop_assert!(edf_meets_deadlines(&set, &iface, horizon));
        }
    }

    #[test]
    fn online_stats_match_direct_computation(values in prop::collection::vec(-1e6f64..1e6, 1..100)) {
        let mut stats = OnlineStats::new();
        for &v in &values {
            stats.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        prop_assert!((stats.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        prop_assert!((stats.population_variance() - var).abs() < 1e-4 * (1.0 + var));
    }

    #[test]
    fn samples_percentiles_are_order_statistics(
        values in prop::collection::vec(0f64..1e6, 1..100),
    ) {
        let mut s: Samples = values.iter().copied().collect();
        let mut sorted = values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        prop_assert_eq!(s.min(), sorted.first().copied());
        prop_assert_eq!(s.max(), sorted.last().copied());
        let p50 = s.percentile(50.0).expect("non-empty");
        prop_assert!(sorted.contains(&p50));
    }

    #[test]
    fn rng_range_is_always_in_bounds(seed in any::<u64>(), lo in 0u64..100, span in 1u64..100) {
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let v = rng.range_u64(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&v));
        }
    }
}
