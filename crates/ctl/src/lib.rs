//! `bluescale-ctl` — the fault-tolerant multi-tenant control plane.
//!
//! A long-running daemon in front of the BlueScale admission machinery:
//! tenants connect over loopback TCP, submit or renegotiate task sets
//! through a small length-prefixed protocol ([`proto`]), and receive
//! typed admit/reject verdicts plus their own miss/latency stream from
//! the live simulation. The plane is built to stay predictable when the
//! world is not:
//!
//! * **Overload shedding** ([`server`]) — a bounded admission queue with
//!   tiered watermarks: best-effort renegotiations shed first, guaranteed
//!   joins last, leaves never. Shed requests get explicit
//!   [`Response::Shed`](proto::Response::Shed) verdicts; the daemon
//!   degrades by refusing work, never by stalling.
//! * **Deadline-aware retry** ([`client`]) — every request carries a
//!   total deadline; transport failures retry with exponential backoff
//!   and seeded deterministic jitter, and the registry's idempotent
//!   admission makes retries of applied-but-unacknowledged ops safe.
//! * **Circuit breaking** ([`breaker`]) — tenants whose requests keep
//!   failing trip open, fast-fail, and get their slot demoted through
//!   the guard quarantine path.
//! * **Crash-consistent recovery** ([`journal`], [`registry`]) — every
//!   admitted operation is journaled (CRC-framed, group-committed) before
//!   its reply; snapshots compact the log atomically. A restarted daemon
//!   replays to the exact pre-crash admission state, pinned bit-identical
//!   by [`ControlRegistry::state_digest`](registry::ControlRegistry::state_digest).
//!
//! Everything is std-only: hand-rolled wire encodings, `TcpListener`
//! threads, no external dependencies.

pub mod breaker;
pub mod client;
pub mod journal;
pub mod proto;
pub mod registry;
pub mod server;

pub use breaker::{BreakerConfig, CircuitBreaker};
pub use client::{CtlClient, CtlError, RetryPolicy, TelemetrySubscription};
pub use journal::{recover, Journal, Op, Recovery, Snapshot};
pub use proto::{
    RejectReason, Request, Response, TaskSpec, TelemetryUpdate, TenantClass, TenantStats,
};
pub use registry::{ApplyOutcome, ControlRegistry};
pub use server::{Daemon, DaemonConfig, StartError, StatsSnapshot, TelemetryConfig};
