//! Randomized tests of the workload crate: generator bounds and parser
//! robustness (failure injection — arbitrary input must never panic the
//! parser). Driven by fixed-seed [`SimRng`] sweeps so every case is
//! reproducible (the container has no registry access for `proptest`).

use bluescale_sim::rng::SimRng;
use bluescale_workload::casestudy::{generate as gen_cs, CaseStudyConfig};
use bluescale_workload::file;
use bluescale_workload::synthetic::{generate as gen_syn, SyntheticConfig};
use bluescale_workload::total_utilization;

/// A random string of 0–400 chars mixing printable ASCII, whitespace,
/// control bytes and multi-byte scalars.
fn random_text(rng: &mut SimRng) -> String {
    let len = rng.range_usize(0, 401);
    (0..len)
        .map(|_| match rng.range_u64(0, 10) {
            0 => '\n',
            1 => '\t',
            2 => char::from_u32(rng.range_u64(0, 32) as u32).unwrap_or('\0'),
            3 => char::from_u32(rng.range_u64(0x80, 0x2000) as u32).unwrap_or('¿'),
            _ => (rng.range_u64(0x20, 0x7F) as u8) as char,
        })
        .collect()
}

/// Arbitrary bytes: the parser returns an error or a valid workload — it
/// never panics.
#[test]
fn parser_never_panics() {
    let mut rng = SimRng::seed_from(0x9A25E);
    for _ in 0..400 {
        let input = random_text(&mut rng);
        let _ = file::from_str(&input);
    }
}

/// Structured-ish garbage built from the format's own keywords.
#[test]
fn parser_survives_keyword_soup() {
    const WORDS: [&str; 12] = [
        "client",
        "task",
        "period",
        "deadline",
        "wcet",
        "0",
        "1",
        "99999999999999999999",
        "-3",
        "x",
        "\n",
        "# c",
    ];
    let mut rng = SimRng::seed_from(0x50FF);
    for _ in 0..300 {
        let n = rng.range_usize(0, 60);
        let mut text = String::from("# bluescale workload v1\n");
        for _ in 0..n {
            text.push_str(WORDS[rng.range_usize(0, WORDS.len())]);
            text.push(' ');
        }
        let _ = file::from_str(&text);
    }
}

/// Every parsed workload round-trips: parse(render(w)) == w.
#[test]
fn generated_workloads_round_trip() {
    let mut meta = SimRng::seed_from(0x2019);
    for case in 0..100 {
        let seed = meta.next_u64();
        let clients = meta.range_usize(1, 32);
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(clients), &mut rng);
        let text = file::to_string(&sets);
        assert_eq!(
            file::from_str(&text).expect("own output parses"),
            sets,
            "case {case} (seed {seed}, {clients} clients)"
        );
    }
}

/// Synthetic generation respects its utilization band (with rounding
/// slack) for arbitrary seeds.
#[test]
fn synthetic_utilization_in_band() {
    let mut meta = SimRng::seed_from(0xBA2D);
    for case in 0..100 {
        let seed = meta.next_u64();
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(16), &mut rng);
        let u = total_utilization(&sets);
        assert!(u > 0.5 && u < 1.05, "case {case}: utilization {u}");
    }
}

/// Case-study generation hits its target within tolerance for arbitrary
/// seeds and targets.
#[test]
fn case_study_hits_target() {
    let mut meta = SimRng::seed_from(0xCA5E);
    for case in 0..100 {
        let seed = meta.next_u64();
        let decile = meta.range_u64(3, 9) as u32;
        let target = decile as f64 / 10.0;
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_cs(&CaseStudyConfig::fig7(16, target), &mut rng);
        let u = total_utilization(&sets);
        assert!(
            (u - target).abs() < 0.15,
            "case {case}: target {target}, got {u}"
        );
    }
}
