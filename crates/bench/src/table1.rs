//! Table 1: hardware overhead of every system element at 16 clients.

use bluescale_hwcost::{interconnect_cost, processor_cost, Architecture, HardwareCost, Processor};

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Element name as printed in the paper.
    pub name: &'static str,
    /// Modelled cost.
    pub cost: HardwareCost,
    /// The paper's reported cost (for the paper-vs-measured comparison).
    pub paper: HardwareCost,
}

/// The paper's reported numbers, verbatim from Table 1.
fn paper_cost(name: &str) -> HardwareCost {
    let (luts, registers, dsps, ram_kb, power_mw) = match name {
        "AXI-IC^RT" => (3744, 3451, 0, 0, 46.0),
        "BlueTree" => (1683, 2901, 0, 0, 27.0),
        "BlueTree-Smooth" => (2349, 3455, 0, 0, 41.0),
        "GSMTree" => (2443, 3115, 0, 8, 59.0),
        "MicroBlaze" => (4993, 4295, 6, 256, 369.0),
        "RISC-V" => (7433, 16544, 21, 512, 583.0),
        "BlueScale" => (2959, 3312, 0, 10, 67.0),
        other => unreachable!("unknown element {other}"),
    };
    HardwareCost {
        luts,
        registers,
        dsps,
        ram_kb,
        power_mw,
    }
}

/// Computes all rows of Table 1 (16-client configuration).
pub fn rows() -> Vec<Row> {
    let mut out = Vec::new();
    for arch in [
        Architecture::AxiIcRt,
        Architecture::BlueTree,
        Architecture::BlueTreeSmooth,
        Architecture::GsmTree,
    ] {
        out.push(Row {
            name: arch.name(),
            cost: interconnect_cost(arch, 16),
            paper: paper_cost(arch.name()),
        });
    }
    out.push(Row {
        name: "MicroBlaze",
        cost: processor_cost(Processor::MicroBlaze),
        paper: paper_cost("MicroBlaze"),
    });
    out.push(Row {
        name: "RISC-V",
        cost: processor_cost(Processor::RiscV),
        paper: paper_cost("RISC-V"),
    });
    out.push(Row {
        name: "BlueScale",
        cost: interconnect_cost(Architecture::BlueScale, 16),
        paper: paper_cost("BlueScale"),
    });
    out
}

/// Renders Table 1 as a markdown table with paper values alongside.
pub fn render() -> String {
    let mut s = String::new();
    s.push_str("# Table 1: Hardware overhead (16 clients; RAM unit: KB, power unit: mW)\n\n");
    s.push_str(
        "| Element | LUTs | Registers | DSPs | RAMs | Power | (paper: LUTs/Reg/DSP/RAM/Power) |\n",
    );
    s.push_str("|---|---:|---:|---:|---:|---:|---|\n");
    for row in rows() {
        s.push_str(&format!(
            "| {} | {} | {} | {} | {} | {:.0} | ({}/{}/{}/{}/{:.0}) |\n",
            row.name,
            row.cost.luts,
            row.cost.registers,
            row.cost.dsps,
            row.cost.ram_kb,
            row.cost.power_mw,
            row.paper.luts,
            row.paper.registers,
            row.paper.dsps,
            row.paper.ram_kb,
            row.paper.power_mw,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_rows_in_paper_order() {
        let r = rows();
        let names: Vec<&str> = r.iter().map(|row| row.name).collect();
        assert_eq!(
            names,
            vec![
                "AXI-IC^RT",
                "BlueTree",
                "BlueTree-Smooth",
                "GSMTree",
                "MicroBlaze",
                "RISC-V",
                "BlueScale"
            ]
        );
    }

    #[test]
    fn model_matches_paper_at_anchor() {
        for row in rows() {
            assert_eq!(row.cost.luts, row.paper.luts, "{} LUTs", row.name);
            assert_eq!(row.cost.registers, row.paper.registers, "{} regs", row.name);
            assert_eq!(row.cost.dsps, row.paper.dsps, "{} DSPs", row.name);
            assert_eq!(row.cost.ram_kb, row.paper.ram_kb, "{} RAM", row.name);
            assert!(
                (row.cost.power_mw - row.paper.power_mw).abs() < 0.5,
                "{} power",
                row.name
            );
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render();
        for row in rows() {
            assert!(text.contains(row.name));
        }
    }
}
