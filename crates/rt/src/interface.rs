//! The interface-selection algorithm (paper, Section 5).
//!
//! For each Virtual Element `X` the interface selector picks the pair
//! `(Π_X, Θ_X)` that minimizes bandwidth `Θ_X/Π_X` while keeping the tasks
//! of `X` schedulable:
//!
//! 1. **Theorem 2** bounds the feasible periods:
//!    `Π_X ≤ min_{τᵢ∈T_X} Tᵢ / (2(U_{ℓ+2} − U_X))`, where `U_{ℓ+2}` is the
//!    total utilization of *all* tasks at the level (across sibling VEs).
//! 2. For each candidate `Π`, schedulability is monotone in `Θ`, so the
//!    minimum schedulable budget is found by **binary search**.
//! 3. The `(Π, Θ)` pair with the smallest bandwidth wins (ties broken by
//!    the smaller period, which shortens worst-case blackouts).
//!
//! Resolving the problem level-by-level from the leaves to the root turns
//! each level's interfaces into the next level's server *tasks*
//! (`T = Π, C = Θ`); the system is schedulable iff the root is not
//! over-utilized (`Σ Θ/Π ≤ 1`).
//!
//! # The selection fast path
//!
//! Interface selection runs per SE, per level, on *every* admission
//! decision, so [`select_interface`] is tuned (without changing any answer —
//! the differential tests in `tests/differential.rs` pin this down against
//! [`select_interface_exhaustive`]):
//!
//! * **Candidate pruning.** For period `Π` no schedulable budget can beat
//!   `Θ_lb(Π) = max(1, ⌈U·Π⌉)` (bandwidth must strictly exceed utilization
//!   and budgets are integers). If `Θ_lb(Π)/Π` does not beat the incumbent's
//!   bandwidth — compared exactly by cross-multiplication — the period is
//!   skipped before any schedulability test runs. Only periods that could
//!   *strictly* improve survive, which also preserves the smaller-period
//!   tie-break.
//! * **Demand memoization.** All candidates test the *same* task set, so
//!   one [`DemandCurve`] carries the sorted demand change points and their
//!   `dbf` values across the entire search (every budget probed by every
//!   binary search, for every period) instead of recomputing them per test.

use crate::rational::UtilizationSum;
use crate::schedulability::{is_schedulable, DemandCurve};
use crate::supply::PeriodicResource;
use crate::task::{Task, TaskSet};
use crate::{Error, Time};

/// Default cap on the number of candidate periods enumerated per VE; keeps
/// selection `O(cap · log Π · test)` even when Theorem 2 allows a huge
/// range. [`feasible_period_bound`] reports when this cap actually bites,
/// and [`SelectionContext::with_period_cap`] widens it for workloads whose
/// minimum-bandwidth interface genuinely lives beyond the default.
pub const MAX_PERIOD_CANDIDATES: Time = 4096;

/// Context for one interface-selection problem: how much utilization the
/// *whole level* carries (Theorem 2 needs `U_{ℓ+2}`, the sum over all
/// sibling VEs sharing the SE, not just the VE being sized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionContext {
    level_utilization: f64,
    period_divisor: Time,
    period_cap: Time,
}

impl SelectionContext {
    /// Context where the VE's tasks are the only tasks at the level
    /// (`U_{ℓ+2} = U_X`) — used when sizing a VE in isolation.
    pub fn isolated(set: &TaskSet) -> Self {
        Self {
            level_utilization: set.utilization(),
            period_divisor: 1,
            period_cap: MAX_PERIOD_CANDIDATES,
        }
    }

    /// Context with an explicit level utilization `U_{ℓ+2}`.
    ///
    /// # Panics
    ///
    /// Panics if `level_utilization` is negative or not finite.
    pub fn shared(level_utilization: f64) -> Self {
        assert!(
            level_utilization.is_finite() && level_utilization >= 0.0,
            "level utilization must be a non-negative finite number"
        );
        Self {
            level_utilization,
            period_divisor: 1,
            period_cap: MAX_PERIOD_CANDIDATES,
        }
    }

    /// Additionally caps candidate periods at `min_deadline / divisor`:
    /// finer-grained interfaces shorten worst-case blackouts (`2(Π−Θ)`),
    /// which reduces both the bandwidth inflation of the minimized
    /// interface and the per-stage pipeline delay a request can suffer.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn with_period_divisor(mut self, divisor: Time) -> Self {
        assert!(divisor > 0, "period divisor must be positive");
        self.period_divisor = divisor;
        self
    }

    /// Overrides the hard cap on enumerated candidate periods (default
    /// [`MAX_PERIOD_CANDIDATES`]). Widening the cap lets sets with large
    /// deadlines reach their true minimum-bandwidth interface when
    /// [`feasible_period_bound`] reports truncation, at proportionally
    /// higher selection cost.
    ///
    /// # Panics
    ///
    /// Panics if `cap` is zero.
    pub fn with_period_cap(mut self, cap: Time) -> Self {
        assert!(cap > 0, "period cap must be positive");
        self.period_cap = cap;
        self
    }

    /// The level utilization `U_{ℓ+2}` carried by this context.
    pub fn level_utilization(&self) -> f64 {
        self.level_utilization
    }

    /// The granularity divisor (1 = the paper's bare Theorem 2 bound).
    pub fn period_divisor(&self) -> Time {
        self.period_divisor
    }

    /// The hard cap on enumerated candidate periods.
    pub fn period_cap(&self) -> Time {
        self.period_cap
    }
}

/// The feasible-period range for one selection problem: the Theorem 2 /
/// granularity bound, together with whether the enumeration cap truncated
/// it (in which case the true minimum-bandwidth interface may lie beyond
/// [`period`](Self::period) and selection is *heuristic*, not optimal).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasiblePeriodBound {
    /// Largest candidate period the search will enumerate.
    pub period: Time,
    /// `true` when the analytic bound exceeded the context's period cap and
    /// was clamped down to it.
    pub truncated: bool,
}

/// The Theorem 2 upper bound on feasible periods for `set` in `ctx`, with
/// an explicit truncation flag when the enumeration cap
/// ([`SelectionContext::period_cap`], default [`MAX_PERIOD_CANDIDATES`])
/// clips the analytic bound.
///
/// For constrained-deadline sets the smallest *deadline* replaces the
/// smallest period (the VE's worst-case blackout must fit before the
/// earliest deadline). When the rest of the level carries no utilization
/// (`U_{ℓ+2} = U_X`) the theorem imposes no bound; the smallest deadline
/// is used instead (any larger `Π` only lengthens blackouts without saving
/// bandwidth).
pub fn feasible_period_bound(set: &TaskSet, ctx: &SelectionContext) -> FeasiblePeriodBound {
    let Some(min_t) = set.min_deadline() else {
        return FeasiblePeriodBound {
            period: 1,
            truncated: false,
        };
    };
    let others = (ctx.level_utilization - set.utilization()).max(0.0);
    let bound = if others > 1e-12 {
        let raw = min_t as f64 / (2.0 * others);
        raw.floor().max(1.0) as Time
    } else {
        min_t
    };
    let granularity_cap = (min_t / ctx.period_divisor).max(1);
    let analytic = bound.min(granularity_cap).max(1);
    FeasiblePeriodBound {
        period: analytic.min(ctx.period_cap),
        truncated: analytic > ctx.period_cap,
    }
}

/// The Theorem 2 upper bound on feasible periods for `set` in `ctx`,
/// clamped to at least 1 and at most the context's period cap.
///
/// Prefer [`feasible_period_bound`] where the caller must know whether the
/// cap silently discarded part of the analytic range.
pub fn max_feasible_period(set: &TaskSet, ctx: &SelectionContext) -> Time {
    feasible_period_bound(set, ctx).period
}

/// Lower bound on any schedulable budget for `period`: `Θ ≥ ⌈U·Π⌉, Θ ≥ 1`.
fn budget_lower_bound(utilization: f64, period: Time) -> Time {
    ((utilization * period as f64).ceil() as Time).max(1)
}

/// Exact `a/b < c/d` on bandwidths via cross-multiplication.
fn bandwidth_strictly_less(num_a: Time, den_a: Time, num_c: Time, den_c: Time) -> bool {
    (num_a as u128) * (den_c as u128) < (num_c as u128) * (den_a as u128)
}

/// Minimum budget `Θ` that makes `set` schedulable on period `period`, found
/// by binary search (schedulability is monotone in `Θ`); `None` if even the
/// dedicated budget `Θ = Π` fails.
pub fn min_budget_for_period(set: &TaskSet, period: Time) -> Option<Time> {
    min_budget_with_curve(&mut DemandCurve::new(set), period)
}

/// [`min_budget_for_period`] against a caller-supplied [`DemandCurve`], so
/// the demand change points survive across the binary search (and across
/// candidate periods when sizing one set repeatedly).
pub fn min_budget_with_curve(curve: &mut DemandCurve<'_>, period: Time) -> Option<Time> {
    debug_assert!(period > 0);
    // Probe the analytic lower bound Θ ≥ max(1, ⌈U·Π⌉) first: no
    // schedulable budget can lie below it, so when it passes it *is* the
    // minimum and both the Θ=Π feasibility gate and the binary search
    // collapse into this single test. Low-utilization ports — where the
    // bound is 1 and almost always schedulable — hit this path at every
    // candidate period, which is what keeps interface selection linear
    // instead of `O(log Π)` per candidate on large sparse topologies.
    let lb = budget_lower_bound(curve.set().utilization(), period);
    if lb <= period {
        let floor = PeriodicResource::new(period, lb).expect("1 ≤ lb ≤ Π");
        if curve.is_schedulable(&floor) {
            return Some(lb);
        }
    }
    let full = PeriodicResource::new(period, period).expect("Θ=Π is always valid");
    if !curve.is_schedulable(&full) {
        return None;
    }
    // Lower bound: Θ ≥ ⌈U·Π⌉ and Θ ≥ 1.
    let mut lo = lb;
    let mut hi = period;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let r = PeriodicResource::new(period, mid).expect("1 ≤ mid ≤ Π");
        if curve.is_schedulable(&r) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Result of [`select_interface_detailed`]: the chosen interface plus the
/// candidate-period range it was selected from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionResult {
    /// The minimum-bandwidth interface over the enumerated range.
    pub interface: PeriodicResource,
    /// The period range searched, including whether the enumeration cap
    /// truncated the analytic Theorem 2 bound. When
    /// `period_bound.truncated` is set the interface is minimal only over
    /// the clamped range; widen via [`SelectionContext::with_period_cap`]
    /// to search the full analytic range.
    pub period_bound: FeasiblePeriodBound,
}

/// Selects the minimum-bandwidth periodic resource interface `(Π, Θ)` for a
/// VE running `set`, given the level context `ctx` (the paper's interface
/// selection problem at one level).
///
/// # Errors
///
/// Returns [`Error::NoFeasibleInterface`] if `set` is empty (a VE with no
/// tasks needs no interface) or if no `(Π, Θ)` within the Theorem 2 range
/// schedules the set.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::interface::{select_interface, SelectionContext};
///
/// let set = TaskSet::new(vec![Task::new(0, 40, 4)?, Task::new(1, 60, 6)?])?;
/// let iface = select_interface(&set, &SelectionContext::isolated(&set))?;
/// // Bandwidth is at least the utilization but far below a dedicated link.
/// assert!(iface.bandwidth() >= set.utilization());
/// assert!(iface.bandwidth() < 1.0);
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn select_interface(set: &TaskSet, ctx: &SelectionContext) -> Result<PeriodicResource, Error> {
    select_interface_detailed(set, ctx).map(|r| r.interface)
}

/// [`select_interface`] that additionally reports the searched period range
/// and whether the enumeration cap truncated it (see [`SelectionResult`]).
///
/// # Errors
///
/// Same as [`select_interface`].
pub fn select_interface_detailed(
    set: &TaskSet,
    ctx: &SelectionContext,
) -> Result<SelectionResult, Error> {
    if set.is_empty() {
        return Err(Error::NoFeasibleInterface);
    }
    let period_bound = feasible_period_bound(set, ctx);
    let utilization = set.utilization();
    let mut curve = DemandCurve::new(set);
    let mut best: Option<PeriodicResource> = None;
    for period in 1..=period_bound.period {
        // Prune: even the analytic minimum budget for this period cannot
        // strictly beat the incumbent's bandwidth, so no schedulability
        // test can change the outcome. (Ties keep the incumbent — it has
        // the smaller period — so "not strictly less" is safe to skip.)
        if let Some(b) = &best {
            let lb = budget_lower_bound(utilization, period);
            if !bandwidth_strictly_less(lb, period, b.budget(), b.period()) {
                continue;
            }
        }
        let Some(budget) = min_budget_with_curve(&mut curve, period) else {
            continue;
        };
        let candidate = PeriodicResource::new(period, budget).expect("budget ≤ period");
        best = match best {
            None => Some(candidate),
            Some(b) if candidate.bandwidth_lt(&b) => Some(candidate),
            Some(b) => Some(b),
        };
    }
    best.map(|interface| SelectionResult {
        interface,
        period_bound,
    })
    .ok_or(Error::NoFeasibleInterface)
}

/// Reference implementation of [`select_interface`]: exhaustive enumeration
/// with no pruning and no demand memoization (the seed algorithm). Exists
/// as the oracle for differential tests and as the benchmark baseline; the
/// tuned path must return bit-identical `(Π, Θ)`.
///
/// # Errors
///
/// Same as [`select_interface`].
pub fn select_interface_exhaustive(
    set: &TaskSet,
    ctx: &SelectionContext,
) -> Result<PeriodicResource, Error> {
    if set.is_empty() {
        return Err(Error::NoFeasibleInterface);
    }
    let max_period = max_feasible_period(set, ctx);
    let mut best: Option<PeriodicResource> = None;
    for period in 1..=max_period {
        let Some(budget) = min_budget_naive(set, period) else {
            continue;
        };
        let candidate = PeriodicResource::new(period, budget).expect("budget ≤ period");
        best = match best {
            None => Some(candidate),
            Some(b) if candidate.bandwidth_lt(&b) => Some(candidate),
            Some(b) => Some(b),
        };
    }
    best.ok_or(Error::NoFeasibleInterface)
}

/// The seed's binary search: every probe recomputes the demand side from
/// scratch through the one-shot [`is_schedulable`].
fn min_budget_naive(set: &TaskSet, period: Time) -> Option<Time> {
    let full = PeriodicResource::new(period, period).expect("Θ=Π is always valid");
    if !is_schedulable(set, &full) {
        return None;
    }
    let mut lo = budget_lower_bound(set.utilization(), period);
    let mut hi = period;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let r = PeriodicResource::new(period, mid).expect("1 ≤ mid ≤ Π");
        if is_schedulable(set, &r) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Converts the selected interfaces of one level into the server *tasks*
/// seen by the level above (`Tᵢ = Πᵢ, Cᵢ = Θᵢ`; paper Section 5, footnote 1).
///
/// Task ids are assigned positionally (`0..n`).
///
/// # Errors
///
/// Propagates [`Error::Overutilized`] if the combined server tasks exceed
/// full utilization — exactly the condition under which the upper level can
/// never be schedulable.
pub fn server_tasks(interfaces: &[PeriodicResource]) -> Result<TaskSet, Error> {
    let tasks = interfaces
        .iter()
        .enumerate()
        .map(|(i, r)| Task::new(i as u32, r.period(), r.budget()))
        .collect::<Result<Vec<_>, _>>()?;
    TaskSet::new(tasks)
}

/// Sizes the VEs of a single SE: one interface per non-empty local client
/// task set, all sharing the SE's capacity (Theorem 2 uses the *combined*
/// utilization of the four clients).
///
/// Returns one `Option<PeriodicResource>` per input set, `None` for empty
/// client task sets (idle ports need no server task).
///
/// # Errors
///
/// Returns [`Error::Overutilized`] if the clients' combined utilization
/// exceeds 1 (checked exactly, in rational arithmetic), or
/// [`Error::NoFeasibleInterface`] if any non-empty client cannot be served.
pub fn select_se_interfaces(
    client_sets: &[TaskSet],
) -> Result<Vec<Option<PeriodicResource>>, Error> {
    select_se_interfaces_with_divisor(client_sets, 1)
}

/// Exact combined-utilization admission check for one SE's clients, shared
/// by the serial and parallel drivers.
fn check_se_capacity(client_sets: &[TaskSet]) -> Result<SelectionContext, Error> {
    let mut exact = UtilizationSum::new();
    for task in client_sets.iter().flat_map(TaskSet::iter) {
        exact.add(task.wcet(), task.period());
    }
    let total: f64 = client_sets.iter().map(TaskSet::utilization).sum();
    if !exact.at_most_one() {
        return Err(Error::Overutilized {
            utilization_millis: (total * 1000.0).round() as u64,
        });
    }
    Ok(SelectionContext::shared(total))
}

/// Like [`select_se_interfaces`] with a granularity cap: candidate periods
/// are additionally bounded by `min_deadline / divisor` per client (see
/// [`SelectionContext::with_period_divisor`]).
///
/// # Errors
///
/// Same as [`select_se_interfaces`].
pub fn select_se_interfaces_with_divisor(
    client_sets: &[TaskSet],
    divisor: Time,
) -> Result<Vec<Option<PeriodicResource>>, Error> {
    let ctx = check_se_capacity(client_sets)?.with_period_divisor(divisor);
    client_sets
        .iter()
        .map(|set| {
            if set.is_empty() {
                Ok(None)
            } else {
                select_interface(set, &ctx).map(Some)
            }
        })
        .collect()
}

/// [`select_se_interfaces_with_divisor`] with the per-client selections
/// fanned out across up to `max_threads` OS threads. Clients are
/// independent selection problems sharing a read-only context, so the
/// result — including which error is reported — is identical to the serial
/// driver: outputs are collected by client index and errors resolve to the
/// first failing client in input order.
///
/// # Errors
///
/// Same as [`select_se_interfaces`].
pub fn select_se_interfaces_parallel(
    client_sets: &[TaskSet],
    divisor: Time,
    max_threads: usize,
) -> Result<Vec<Option<PeriodicResource>>, Error> {
    let ctx = check_se_capacity(client_sets)?.with_period_divisor(divisor);
    let threads = max_threads.max(1).min(client_sets.len());
    if threads <= 1 {
        return client_sets
            .iter()
            .map(|set| {
                if set.is_empty() {
                    Ok(None)
                } else {
                    select_interface(set, &ctx).map(Some)
                }
            })
            .collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Result<Option<PeriodicResource>, Error>> = vec![Ok(None); client_sets.len()];
    std::thread::scope(|scope| {
        let mut workers = Vec::with_capacity(threads);
        for _ in 0..threads {
            let next = &next;
            let ctx = &ctx;
            workers.push(scope.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(set) = client_sets.get(i) else {
                        return local;
                    };
                    let result = if set.is_empty() {
                        Ok(None)
                    } else {
                        select_interface(set, ctx).map(Some)
                    };
                    local.push((i, result));
                }
            }));
        }
        for worker in workers {
            for (i, result) in worker.join().expect("selection worker panicked") {
                slots[i] = result;
            }
        }
    });
    // Resolve errors exactly as the serial driver would: first failing
    // client in input order wins.
    slots.into_iter().collect()
}

/// Root admission check (paper, end of Section 5): the level-0 resource
/// (the memory controller) must not be over-utilized by the level-1 server
/// tasks, i.e. `Σ Θ_X/Π_X ≤ 1` — evaluated exactly in rational arithmetic
/// (no floating-point tolerance; a root marginally above 1 is rejected).
pub fn root_admissible(interfaces: &[PeriodicResource]) -> bool {
    let mut sum = UtilizationSum::new();
    for r in interfaces {
        sum.add(r.budget(), r.period());
    }
    sum.at_most_one()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn min_budget_monotone_sanity() {
        let s = set(&[(20, 2), (50, 5)]);
        let b = min_budget_for_period(&s, 5).expect("feasible");
        // The found budget schedules; one less does not.
        assert!(is_schedulable(&s, &PeriodicResource::new(5, b).unwrap()));
        if b > 1 {
            assert!(!is_schedulable(
                &s,
                &PeriodicResource::new(5, b - 1).unwrap()
            ));
        }
    }

    #[test]
    fn min_budget_none_when_infeasible_period() {
        // Deadline 4 but the resource period is 16: even a dedicated budget
        // cannot help? Θ=Π means supply = t, which schedules U<=1. So a
        // feasible answer exists for any period; check it is returned.
        let s = set(&[(4, 1)]);
        assert!(min_budget_for_period(&s, 16).is_some());
    }

    #[test]
    fn min_budget_with_curve_matches_fresh_curves() {
        let s = set(&[(14, 3), (33, 5), (60, 7)]);
        let mut shared = DemandCurve::new(&s);
        for period in 1..=40 {
            assert_eq!(
                min_budget_with_curve(&mut shared, period),
                min_budget_for_period(&s, period),
                "shared-curve result diverged at Π={period}"
            );
        }
    }

    #[test]
    fn select_interface_minimizes_bandwidth() {
        let s = set(&[(20, 2), (50, 5)]); // U = 0.2
        let iface = select_interface(&s, &SelectionContext::isolated(&s)).unwrap();
        assert!(iface.bandwidth() >= s.utilization() - 1e-12);
        // Must beat the trivial dedicated allocation by a wide margin.
        assert!(iface.bandwidth() < 0.9, "bandwidth {}", iface.bandwidth());
        // And the chosen pair indeed schedules the set.
        assert!(is_schedulable(&s, &iface));
    }

    #[test]
    fn select_interface_exhaustive_cross_check() {
        // Verify minimality against exhaustive enumeration on a small case.
        let s = set(&[(12, 3)]);
        let ctx = SelectionContext::isolated(&s);
        let chosen = select_interface(&s, &ctx).unwrap();
        let max_p = max_feasible_period(&s, &ctx);
        for p in 1..=max_p {
            for b in 1..=p {
                let r = PeriodicResource::new(p, b).unwrap();
                if is_schedulable(&s, &r) {
                    assert!(
                        !r.bandwidth_lt(&chosen),
                        "found better interface {r:?} than chosen {chosen:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn pruned_matches_reference_on_fixed_sets() {
        let sets = [
            set(&[(12, 3)]),
            set(&[(20, 2), (50, 5)]),
            set(&[(7, 1), (11, 2), (13, 3)]),
            set(&[(100, 40), (150, 30)]),
        ];
        for s in &sets {
            for divisor in [1, 2, 4] {
                let ctx = SelectionContext::isolated(s).with_period_divisor(divisor);
                assert_eq!(
                    select_interface(s, &ctx),
                    select_interface_exhaustive(s, &ctx),
                    "pruned/memoized result diverged for {s:?} (divisor {divisor})"
                );
            }
        }
    }

    #[test]
    fn select_interface_empty_set_errors() {
        let e = select_interface(&TaskSet::empty(), &SelectionContext::shared(0.0));
        assert_eq!(e.unwrap_err(), Error::NoFeasibleInterface);
    }

    #[test]
    #[should_panic(expected = "period divisor must be positive")]
    fn zero_period_divisor_rejected_at_construction() {
        // Matching the FaultWindow empty-window fix: degenerate parameters
        // fail loudly at construction, never as a silent divide-by-zero in
        // the middle of a selection sweep.
        let s = set(&[(40, 4)]);
        let _ = SelectionContext::isolated(&s).with_period_divisor(0);
    }

    #[test]
    #[should_panic(expected = "period cap must be positive")]
    fn zero_period_cap_rejected_at_construction() {
        let s = set(&[(40, 4)]);
        let _ = SelectionContext::isolated(&s).with_period_cap(0);
    }

    #[test]
    fn boundary_divisor_and_cap_of_one_are_valid() {
        // The smallest legal values: divisor 1 is the paper's bare Theorem 2
        // bound, cap 1 degenerates the search to the single period Π = 1.
        let s = set(&[(40, 4)]);
        let ctx = SelectionContext::isolated(&s)
            .with_period_divisor(1)
            .with_period_cap(1);
        assert_eq!(ctx.period_divisor(), 1);
        assert_eq!(ctx.period_cap(), 1);
        let b = feasible_period_bound(&s, &ctx);
        assert_eq!(b.period, 1);
        assert!(b.truncated, "cap 1 clips the analytic bound of 40");
        let iface = select_interface(&s, &ctx).unwrap();
        assert_eq!(iface.period(), 1, "only Π = 1 is enumerable under cap 1");
    }

    #[test]
    fn theorem2_bound_shrinks_with_contention() {
        let s = set(&[(40, 4)]); // U = 0.1, min_T = 40
        let lonely = max_feasible_period(&s, &SelectionContext::isolated(&s));
        // Siblings carrying 0.6 utilization: Π ≤ 40 / (2·0.6) = 33.
        let crowded = max_feasible_period(&s, &SelectionContext::shared(0.7));
        assert_eq!(lonely, 40);
        assert_eq!(crowded, 33);
    }

    #[test]
    fn period_bound_reports_truncation_at_the_cap_boundary() {
        // min_deadline exactly at the cap: analytic bound == cap, no
        // truncation; one past the cap: truncated.
        let at_cap = set(&[(MAX_PERIOD_CANDIDATES, 1)]);
        let ctx = SelectionContext::isolated(&at_cap);
        let b = feasible_period_bound(&at_cap, &ctx);
        assert_eq!(b.period, MAX_PERIOD_CANDIDATES);
        assert!(!b.truncated);

        let past_cap = set(&[(MAX_PERIOD_CANDIDATES + 1, 1)]);
        let ctx = SelectionContext::isolated(&past_cap);
        let b = feasible_period_bound(&past_cap, &ctx);
        assert_eq!(b.period, MAX_PERIOD_CANDIDATES);
        assert!(b.truncated, "cap truncation must be surfaced");
        let detailed = select_interface_detailed(&past_cap, &ctx).unwrap();
        assert!(detailed.period_bound.truncated);
    }

    #[test]
    fn widened_cap_recovers_the_truncated_optimum() {
        // A single light task with a huge deadline: the true minimum-
        // bandwidth interface needs Π beyond the default cap. The default
        // search must flag the truncation, and widening the cap must find a
        // strictly cheaper interface.
        let s = set(&[(40_000, 4)]); // U = 1e-4
        let capped_ctx = SelectionContext::isolated(&s);
        let capped = select_interface_detailed(&s, &capped_ctx).unwrap();
        assert!(capped.period_bound.truncated);

        let wide_ctx = SelectionContext::isolated(&s).with_period_cap(40_000);
        let wide = select_interface_detailed(&s, &wide_ctx).unwrap();
        assert!(!wide.period_bound.truncated);
        assert!(
            wide.interface.bandwidth_lt(&capped.interface),
            "widened cap should reach a cheaper interface: {:?} vs {:?}",
            wide.interface,
            capped.interface
        );
    }

    #[test]
    fn server_tasks_mirror_interfaces() {
        let ifaces = [
            PeriodicResource::new(10, 3).unwrap(),
            PeriodicResource::new(8, 2).unwrap(),
        ];
        let st = server_tasks(&ifaces).unwrap();
        assert_eq!(st.len(), 2);
        assert_eq!(st.tasks()[0].period(), 10);
        assert_eq!(st.tasks()[0].wcet(), 3);
        assert_eq!(st.tasks()[1].period(), 8);
        assert_eq!(st.tasks()[1].wcet(), 2);
    }

    #[test]
    fn se_interfaces_skip_empty_clients() {
        let sets = vec![
            set(&[(40, 4)]),
            TaskSet::empty(),
            set(&[(60, 6)]),
            TaskSet::empty(),
        ];
        let ifaces = select_se_interfaces(&sets).unwrap();
        assert!(ifaces[0].is_some());
        assert!(ifaces[1].is_none());
        assert!(ifaces[2].is_some());
        assert!(ifaces[3].is_none());
    }

    #[test]
    fn se_interfaces_reject_overutilized_clients() {
        let sets = vec![set(&[(10, 6)]), set(&[(10, 6)])];
        assert!(matches!(
            select_se_interfaces(&sets),
            Err(Error::Overutilized { .. })
        ));
    }

    #[test]
    fn se_capacity_check_is_exact() {
        // Four clients at exactly 1/4 each: admitted (sum is exactly 1).
        let quarters = vec![set(&[(4, 1)]); 4];
        assert!(select_se_interfaces(&quarters).is_ok());
        // Same four plus a marginal sliver far below any float tolerance:
        // must be rejected.
        let mut over = quarters;
        over.push(set(&[(1_000_000_000, 1)]));
        assert!(matches!(
            select_se_interfaces(&over),
            Err(Error::Overutilized { .. })
        ));
    }

    #[test]
    fn parallel_se_selection_matches_serial() {
        let sets = vec![
            set(&[(100, 5)]),
            TaskSet::empty(),
            set(&[(80, 4), (120, 6)]),
            set(&[(90, 3)]),
            set(&[(200, 11)]),
        ];
        let serial = select_se_interfaces_with_divisor(&sets, 2);
        for threads in [1, 2, 8] {
            assert_eq!(
                select_se_interfaces_parallel(&sets, 2, threads),
                serial,
                "parallel ({threads} threads) diverged from serial"
            );
        }
    }

    #[test]
    fn parallel_se_selection_matches_serial_errors() {
        let sets = vec![set(&[(10, 6)]), set(&[(10, 6)])];
        assert_eq!(
            select_se_interfaces_parallel(&sets, 1, 4),
            select_se_interfaces_with_divisor(&sets, 1)
        );
    }

    #[test]
    fn root_admission() {
        let ok = [
            PeriodicResource::new(10, 3).unwrap(),
            PeriodicResource::new(10, 3).unwrap(),
            PeriodicResource::new(10, 4).unwrap(),
        ];
        assert!(root_admissible(&ok));
        let too_much = [
            PeriodicResource::new(10, 6).unwrap(),
            PeriodicResource::new(10, 6).unwrap(),
        ];
        assert!(!root_admissible(&too_much));
        assert!(root_admissible(&[]));
    }

    #[test]
    fn root_admission_is_exact_at_the_boundary() {
        // Exactly 1: admitted.
        let exact = [
            PeriodicResource::new(3, 1).unwrap(),
            PeriodicResource::new(3, 1).unwrap(),
            PeriodicResource::new(3, 1).unwrap(),
        ];
        assert!(root_admissible(&exact));
        // 1 + 1/(3·10⁹): within the old 1e-9 float tolerance, exactly over.
        let sliver = [
            PeriodicResource::new(3, 1).unwrap(),
            PeriodicResource::new(3, 1).unwrap(),
            PeriodicResource::new(3, 1).unwrap(),
            PeriodicResource::new(3_000_000_000, 1).unwrap(),
        ];
        assert!(
            !root_admissible(&sliver),
            "marginally over-utilized root must be rejected"
        );
    }

    #[test]
    fn two_level_composition_is_consistent() {
        // Four leaf clients -> interfaces -> server tasks -> parent
        // interface; every stage must stay schedulable and bounded.
        let clients = vec![
            set(&[(100, 5)]),
            set(&[(80, 4)]),
            set(&[(120, 6)]),
            set(&[(90, 3)]),
        ];
        let ifaces: Vec<PeriodicResource> = select_se_interfaces(&clients)
            .unwrap()
            .into_iter()
            .flatten()
            .collect();
        assert_eq!(ifaces.len(), 4);
        let servers = server_tasks(&ifaces).unwrap();
        let parent = select_interface(&servers, &SelectionContext::isolated(&servers)).unwrap();
        assert!(parent.bandwidth() >= servers.utilization() - 1e-12);
        assert!(is_schedulable(&servers, &parent));
    }
}
