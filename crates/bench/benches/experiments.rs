//! Timing wrappers over the table/figure generators themselves, so
//! `cargo bench` exercises every experiment end-to-end (at reduced trial
//! counts — the binaries produce the full tables).
//!
//! Plain timing harness (`harness = false`): the container has no registry
//! access for criterion. Run with `cargo bench -p bluescale-bench`.

use std::hint::black_box;
use std::time::Instant;

use bluescale_bench::{fig5, fig6, fig7, interface_selection, table1};

fn time<R>(name: &str, iters: u32, mut f: impl FnMut() -> R) {
    for _ in 0..iters.div_ceil(10).min(100) {
        black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let per_iter = t0.elapsed().as_nanos() / iters as u128;
    println!("{name:<42} {per_iter:>12} ns/iter ({iters} iters)");
}

fn main() {
    time("experiment/table1", 100, || black_box(table1::rows()));
    time("experiment/fig5_sweep", 100, || black_box(fig5::sweep()));

    let fig6_config = fig6::Fig6Config {
        clients: 16,
        trials: 2,
        horizon: 5_000,
        seed: 1,
        phased: false,
    };
    time("experiment/fig6_16clients_2trials", 10, || {
        black_box(fig6::run(&fig6_config))
    });

    let fig7_config = fig7::Fig7Config {
        processors: 16,
        trials: 2,
        horizon: 5_000,
        targets: vec![0.5],
        seed: 1,
    };
    time("experiment/fig7_16cores_1point_2trials", 10, || {
        black_box(fig7::run(&fig7_config))
    });

    let sel_config = interface_selection::SelectionBenchConfig {
        clients: 16,
        workloads: 2,
        ..Default::default()
    };
    time("experiment/interface_selection_16clients", 5, || {
        black_box(interface_selection::run(&sel_config))
    });
}
