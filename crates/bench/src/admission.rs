//! Extension experiment: analytic admission rate vs offered utilization.
//!
//! A schedulability curve in the classic real-time-systems style: for each
//! total utilization, what fraction of random task systems does the
//! BlueScale composition admit (`CompositionReport::schedulable`)? Also
//! reported: the bandwidth the composition allocates at the root —
//! the *abstraction overhead* of compositional scheduling (allocated
//! bandwidth minus real utilization), which is exactly what the
//! minimum-bandwidth interface selection of Section 5 minimizes.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_rt::edp::select_interface_edp;
use bluescale_rt::interface::{select_interface, SelectionContext};
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use bluescale_workload::total_utilization;

/// Configuration of the admission-rate sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionConfig {
    /// Clients per system.
    pub clients: usize,
    /// Utilization points to sweep.
    pub utilizations: Vec<f64>,
    /// Random systems per point.
    pub trials: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            clients: 16,
            utilizations: (1..=9).map(|i| 0.1 * i as f64).collect(),
            trials: 100,
            seed: 0xAD31,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct AdmissionPoint {
    /// Target total utilization.
    pub utilization: f64,
    /// Fraction of systems the composition admitted.
    pub admission_rate: f64,
    /// Mean allocated root bandwidth among admitted systems (NaN-free:
    /// 0 when none admitted).
    pub mean_root_bandwidth: f64,
    /// Mean realized utilization of the generated systems.
    pub mean_utilization: f64,
    /// Mean summed leaf-interface bandwidth under the paper's periodic
    /// resource model.
    pub leaf_alloc_periodic: f64,
    /// Mean summed leaf-interface bandwidth under the EDP extension
    /// (smaller blackouts → less inflation).
    pub leaf_alloc_edp: f64,
}

/// Runs the sweep.
pub fn run(config: &AdmissionConfig) -> Vec<AdmissionPoint> {
    let mut master = SimRng::seed_from(config.seed);
    config
        .utilizations
        .iter()
        .map(|&target| {
            let mut admitted = 0u64;
            let mut bandwidth = OnlineStats::new();
            let mut realized = OnlineStats::new();
            let mut periodic_alloc = OnlineStats::new();
            let mut edp_alloc = OnlineStats::new();
            for _ in 0..config.trials {
                let mut rng = master.fork();
                let synthetic = SyntheticConfig {
                    util_lo: (target - 0.02).max(0.01),
                    util_hi: target + 0.02,
                    ..SyntheticConfig::fig6(config.clients)
                };
                let sets = generate(&synthetic, &mut rng);
                realized.push(total_utilization(&sets));
                // Per-client leaf interfaces under both resource models.
                let mut periodic_sum = 0.0;
                let mut edp_sum = 0.0;
                let mut both_ok = true;
                for set in &sets {
                    let ctx = SelectionContext::isolated(set);
                    match (select_interface(set, &ctx), select_interface_edp(set)) {
                        (Ok(p), Ok(e)) => {
                            periodic_sum += p.bandwidth();
                            edp_sum += e.bandwidth();
                        }
                        _ => both_ok = false,
                    }
                }
                if both_ok {
                    periodic_alloc.push(periodic_sum);
                    edp_alloc.push(edp_sum);
                }
                let mut bs = BlueScaleConfig::for_clients(config.clients);
                bs.work_conserving = true;
                let ic = BlueScaleInterconnect::new(bs, &sets).expect("construction succeeds");
                let comp = ic.composition();
                if comp.schedulable {
                    admitted += 1;
                    bandwidth.push(comp.root_bandwidth);
                }
            }
            AdmissionPoint {
                utilization: target,
                admission_rate: admitted as f64 / config.trials as f64,
                mean_root_bandwidth: bandwidth.mean(),
                mean_utilization: realized.mean(),
                leaf_alloc_periodic: periodic_alloc.mean(),
                leaf_alloc_edp: edp_alloc.mean(),
            }
        })
        .collect()
}

/// Renders the curve as a markdown table.
pub fn render(config: &AdmissionConfig, points: &[AdmissionPoint]) -> String {
    let mut s = format!(
        "# Extension: analytic admission rate vs utilization \
         ({} clients, {} systems/point)\n\n",
        config.clients, config.trials
    );
    s.push_str(
        "| Target U | Realized U | Admission rate | Root alloc | Overhead | Leaf alloc (periodic) | Leaf alloc (EDP ext.) |\n",
    );
    s.push_str("|---:|---:|---:|---:|---:|---:|---:|\n");
    for p in points {
        let overhead = if p.admission_rate > 0.0 {
            format!(
                "{:.2}×",
                p.mean_root_bandwidth / p.mean_utilization.max(1e-9)
            )
        } else {
            "–".to_owned()
        };
        s.push_str(&format!(
            "| {:.2} | {:.3} | {:.0}% | {:.3} | {} | {:.3} | {:.3} |\n",
            p.utilization,
            p.mean_utilization,
            100.0 * p.admission_rate,
            p.mean_root_bandwidth,
            overhead,
            p.leaf_alloc_periodic,
            p.leaf_alloc_edp,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> AdmissionConfig {
        AdmissionConfig {
            clients: 16,
            utilizations: vec![0.2, 0.5, 0.9],
            trials: 10,
            seed: 3,
        }
    }

    #[test]
    fn admission_rate_decreases_with_utilization() {
        let pts = run(&tiny());
        assert!(pts[0].admission_rate >= pts[2].admission_rate);
        assert!(pts[0].admission_rate > 0.8, "low load must be admitted");
    }

    #[test]
    fn allocated_bandwidth_covers_utilization() {
        for p in run(&tiny()) {
            if p.admission_rate > 0.0 {
                assert!(p.mean_root_bandwidth >= p.mean_utilization * 0.9);
                assert!(p.mean_root_bandwidth <= 1.0 + 1e-9);
            }
        }
    }

    #[test]
    fn edp_allocation_never_exceeds_periodic() {
        for p in run(&tiny()) {
            assert!(
                p.leaf_alloc_edp <= p.leaf_alloc_periodic + 1e-9,
                "EDP {} vs periodic {} at U={}",
                p.leaf_alloc_edp,
                p.leaf_alloc_periodic,
                p.utilization
            );
        }
    }

    #[test]
    fn render_has_overhead_column() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("Overhead"));
    }
}
