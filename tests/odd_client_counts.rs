//! Edge cases: client counts that do not fill the quadtree (or binary
//! trees / meshes) exactly. Partially-populated leaf SEs, idle ports and
//! ragged topologies must behave identically to full ones.

use bluescale_repro::baselines::{AxiIcRt, BlueTree, GsmTree, SlotPolicy};
use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::noc::NocMemoryInterconnect;
use bluescale_repro::rt::task::{Task, TaskSet};

fn sets(n: usize) -> Vec<TaskSet> {
    (0..n)
        .map(|i| TaskSet::new(vec![Task::new(0, 300 + 7 * i as u64, 3).unwrap()]).unwrap())
        .collect()
}

fn all(n: usize) -> Vec<Box<dyn Interconnect>> {
    let task_sets = sets(n);
    let weights = vec![1.0; n];
    let mut bs = BlueScaleConfig::for_clients(n);
    bs.work_conserving = true;
    vec![
        Box::new(AxiIcRt::new(n, 8, 1)),
        Box::new(BlueTree::new(n, 2, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Tdm, 1)),
        Box::new(GsmTree::new(n, SlotPolicy::Fbsp(weights), 1)),
        Box::new(BlueScaleInterconnect::new(bs, &task_sets).expect("valid build")),
        Box::new(NocMemoryInterconnect::new(n, 1)),
    ]
}

#[test]
fn odd_counts_run_clean() {
    for n in [1usize, 2, 3, 5, 7, 9, 13, 17, 33, 63, 65] {
        let task_sets = sets(n);
        for ic in all(n) {
            let name = ic.name();
            let mut system = System::new(ic, &task_sets);
            let m = system.run(6_000);
            assert!(m.issued() > 0, "{name} at {n} clients issued nothing");
            assert_eq!(
                m.completed() + system.in_flight() as u64 + m.backlog(),
                m.issued(),
                "{name} at {n} clients lost requests"
            );
            assert!(
                m.miss_ratio() < 0.05,
                "{name} at {n} clients missed {:.3}",
                m.miss_ratio()
            );
        }
    }
}

#[test]
fn bluescale_single_client() {
    let task_sets = sets(1);
    let ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(1), &task_sets)
        .expect("valid build");
    assert!(ic.composition().schedulable);
    let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &task_sets);
    let m = system.run(5_000);
    assert!(m.success());
    assert!(m.completed() > 0);
}

#[test]
fn bluescale_17_clients_uses_three_levels() {
    // 17 clients overflows a 16-leaf quadtree: the third level appears and
    // most of it idles; everything must still compose and run.
    let task_sets = sets(17);
    let config = BlueScaleConfig::for_clients(17);
    assert_eq!(config.levels(), 3);
    let ic = BlueScaleInterconnect::new(config, &task_sets).expect("valid build");
    assert!(ic.composition().schedulable);
    let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &task_sets);
    let m = system.run(8_000);
    assert!(m.success(), "missed {}", m.missed());
}

#[test]
fn update_tasks_on_ragged_tree() {
    // Reconfiguring a client on a partially-filled leaf must not disturb
    // its idle sibling ports.
    let task_sets = sets(5);
    let mut ic = BlueScaleInterconnect::new(BlueScaleConfig::for_clients(5), &task_sets)
        .expect("valid build");
    let heavier = TaskSet::new(vec![Task::new(0, 200, 20).unwrap()]).unwrap();
    let reprogrammed = ic
        .update_client_tasks(4, heavier)
        .expect("update succeeds")
        .reprogrammed_elements;
    assert_eq!(reprogrammed, ic.config().levels());
    // Ports 1..3 of leaf SE 1 host no clients: they must stay idle.
    let leaf = &ic.composition().interfaces[ic.config().levels() - 1][1];
    assert!(leaf[0].is_some());
    assert!(leaf[1].is_none() && leaf[2].is_none() && leaf[3].is_none());
}
