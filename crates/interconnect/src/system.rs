//! The system harness: clients + interconnect + metrics, stepped in
//! lock-step for a fixed horizon.

use crate::admission::{CancelToken, ChurnPlan, ReconfigOutcome};
use crate::client::TrafficGenerator;
use crate::guard::{GuardConfig, GuardConfigError, GuardState};
use crate::metrics::RunMetrics;
use crate::{ClientId, Interconnect, MemoryResponse, ServiceEvent};
use bluescale_rt::task::TaskSet;
use bluescale_sim::fault::{FaultClass, FaultKind, FaultPlan, FaultWindow};
use bluescale_sim::metrics::{ComponentId, Counter, Event, MetricsRegistry, SampleKind};
use bluescale_sim::next_event::jump_target;
use bluescale_sim::Cycle;
use bluescale_telemetry::Pipeline;
use std::cmp::Reverse;

/// Harness-level knobs (distinct from any interconnect configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Jump over provably-idle stretches instead of stepping them cycle by
    /// cycle. On by default; the per-cycle path is retained as the oracle
    /// (set this to `false` to force it) and the two are pinned
    /// bit-identical by `tests/fastforward_differential.rs`.
    ///
    /// Fast-forwarding needs every layer's cooperation: it engages only
    /// when the interconnect implements
    /// [`Interconnect::next_event_hint`] and detail recording (typed
    /// events) is off. Otherwise the run silently stays per-cycle, which
    /// is always correct.
    pub fast_forward: bool,
}

impl Default for SystemConfig {
    fn default() -> Self {
        Self { fast_forward: true }
    }
}

/// A complete simulated system: one [`TrafficGenerator`] per client port of
/// an [`Interconnect`], plus metric collection.
///
/// Each cycle the harness:
/// 1. advances every generator (task releases),
/// 2. offers at most one request per client port,
/// 3. steps the interconnect (arbitration, memory, response routing),
/// 4. drains responses into the metrics.
///
/// # Example
///
/// ```no_run
/// use bluescale_interconnect::system::System;
/// use bluescale_rt::task::{Task, TaskSet};
/// # fn interconnect_for(n: usize) -> Box<dyn bluescale_interconnect::Interconnect> { unimplemented!() }
///
/// let per_client = vec![TaskSet::new(vec![Task::new(0, 100, 2)?])?; 16];
/// let ic = interconnect_for(16);
/// let mut system = System::new(ic, &per_client);
/// let metrics = system.run(100_000);
/// println!("miss ratio = {}", metrics.miss_ratio());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct System<I: ?Sized + Interconnect> {
    clients: Vec<TrafficGenerator>,
    /// Harness-level observability: System/Client aggregates (issued,
    /// completed, missed, latency/blocking samples). The interconnect keeps
    /// its own registry for component-level tallies; [`merged_registry`]
    /// combines both for export.
    ///
    /// [`merged_registry`]: Self::merged_registry
    registry: MetricsRegistry,
    now: Cycle,
    /// Chronological log of memory-channel grants, used to compute each
    /// request's blocking latency (cycles the channel served a
    /// later-deadline request while this one was waiting).
    service_log: Vec<ServiceEvent>,
    interconnect: Box<I>,
    /// Active fault plan. An empty plan keeps the harness on the exact
    /// fault-free code path, so a faultless run is bit-identical to one
    /// built before the fault layer existed.
    faults: FaultPlan,
    /// Active churn plan (tenant joins/leaves/updates). Same discipline as
    /// the fault plan: an empty plan keeps the harness on the exact
    /// churn-free code path.
    churn: ChurnPlan,
    /// Which runtime guards are active (all off by default).
    guards: GuardConfig,
    /// The guard layer's deterministic bookkeeping.
    guard: GuardState,
    /// Harness knobs (fast-forward gating).
    config: SystemConfig,
    /// Fast-forward bookkeeping: jumps taken and cycles skipped. Kept out
    /// of the metrics registry on purpose — the registry must stay
    /// bit-identical between stepping modes.
    ff_jumps: u64,
    ff_skipped: u64,
    /// Streaming telemetry, if attached. Flushes happen at span
    /// boundaries inside [`advance_to`](Self::advance_to) — never inside
    /// the per-cycle loop — and extraction is read-only on the
    /// registries, so an attached pipeline cannot perturb results
    /// (pinned by `tests/telemetry_differential.rs`).
    telemetry: Option<Pipeline>,
}

impl<I: ?Sized + Interconnect> System<I> {
    /// Builds a system from an interconnect and one task set per client.
    ///
    /// # Panics
    ///
    /// Panics if `task_sets.len()` differs from the interconnect's client
    /// count.
    pub fn new(interconnect: Box<I>, task_sets: &[TaskSet]) -> Self {
        assert_eq!(
            task_sets.len(),
            interconnect.num_clients(),
            "one task set per client port required"
        );
        let clients = task_sets
            .iter()
            .enumerate()
            .map(|(i, set)| TrafficGenerator::new(i as u32, set))
            .collect();
        Self::from_generators(interconnect, clients)
    }

    /// Builds a system with staggered task phases: task `j` of client `i`
    /// releases its first job at a pseudo-random offset in `[0, Tⱼ)`
    /// derived from `seed`. Synchronous release (see [`new`](Self::new))
    /// is the contention worst case; phased release models a running
    /// system observed mid-flight.
    ///
    /// # Panics
    ///
    /// Panics if `task_sets.len()` differs from the interconnect's client
    /// count.
    pub fn new_phased(interconnect: Box<I>, task_sets: &[TaskSet], seed: u64) -> Self {
        assert_eq!(
            task_sets.len(),
            interconnect.num_clients(),
            "one task set per client port required"
        );
        let mut rng = bluescale_sim::rng::SimRng::seed_from(seed);
        let clients = task_sets
            .iter()
            .enumerate()
            .map(|(i, set)| {
                let offsets: Vec<Cycle> =
                    set.iter().map(|t| rng.range_u64(0, t.period())).collect();
                TrafficGenerator::with_offsets(i as u32, set, &offsets)
            })
            .collect();
        Self::from_generators(interconnect, clients)
    }

    fn from_generators(interconnect: Box<I>, clients: Vec<TrafficGenerator>) -> Self {
        Self {
            clients,
            registry: MetricsRegistry::new(),
            now: 0,
            service_log: Vec::new(),
            interconnect,
            faults: FaultPlan::default(),
            churn: ChurnPlan::default(),
            guards: GuardConfig::default(),
            guard: GuardState::new(),
            config: SystemConfig::default(),
            ff_jumps: 0,
            ff_skipped: 0,
            telemetry: None,
        }
    }

    /// The harness configuration.
    pub fn config(&self) -> SystemConfig {
        self.config
    }

    /// Replaces the harness configuration.
    pub fn set_config(&mut self, config: SystemConfig) {
        self.config = config;
    }

    /// Convenience toggle for the idle-cycle fast-forward path (see
    /// [`SystemConfig::fast_forward`]).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.config.fast_forward = enabled;
    }

    /// Number of idle-stretch jumps the fast-forward path has taken.
    pub fn fast_forward_jumps(&self) -> u64 {
        self.ff_jumps
    }

    /// Total cycles skipped (not stepped per-cycle) by fast-forwarding.
    pub fn fast_forwarded_cycles(&self) -> u64 {
        self.ff_skipped
    }

    /// Marks `client` as a rogue issuing `factor ×` its declared demand,
    /// for the whole run. Legacy shim: this appends a permanent
    /// [`FaultKind::RogueDemand`] entry to the active fault plan and
    /// reinstalls it through [`set_fault_plan`](Self::set_fault_plan) —
    /// one plumbing path, no duplicated state — so it composes with
    /// windowed and multi-class fault scenarios and is pinned equivalent
    /// to building the same plan by hand.
    ///
    /// # Panics
    ///
    /// Panics if `client` is out of range or `factor` is zero.
    pub fn set_misbehaviour_factor(&mut self, client: usize, factor: u64) {
        assert!(client < self.clients.len(), "client out of range");
        let mut plan = std::mem::take(&mut self.faults);
        plan.push(
            FaultKind::RogueDemand {
                client: client as u32,
                factor,
            },
            FaultWindow::ALWAYS,
        );
        self.set_fault_plan(plan);
    }

    /// Confines every client's address walk to its own DRAM bank stripe
    /// (bank `client % banks`) — software bank partitioning in the PALLOC
    /// style; see
    /// [`TrafficGenerator::set_bank_partition`](crate::client::TrafficGenerator::set_bank_partition).
    /// Pass the DRAM geometry of the interconnect's controller so the
    /// stripes line up with its address map.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `row_bytes` is zero, or `row_bytes` is not a
    /// multiple of the generators' address stride.
    pub fn set_bank_partition(&mut self, banks: u32, row_bytes: u64) {
        for client in &mut self.clients {
            client.set_bank_partition(banks, row_bytes);
        }
    }

    /// Installs a fault plan: client-side faults (rogue demand, bursts)
    /// are applied by the harness each cycle; interconnect-side faults
    /// (stuck grants, DRAM jitter, dropped responses) are handed to the
    /// interconnect via [`Interconnect::install_fault_plan`]. Replaces any
    /// previously installed plan.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.interconnect.install_fault_plan(&plan);
        self.faults = plan;
    }

    /// The active fault plan (empty by default).
    pub fn fault_plan(&self) -> &FaultPlan {
        &self.faults
    }

    /// Installs a churn plan: tenant `Join`/`Leave`/`UpdateTasks` requests
    /// that the harness drains at the start of each due cycle and runs
    /// through [`Interconnect::reconfigure_client`] (see
    /// [`apply_reconfiguration`](Self::apply_reconfiguration)). Replaces
    /// any previously installed plan; the new plan's hand-out cursor is
    /// rewound so a reused plan replays from its first request.
    pub fn set_churn_plan(&mut self, mut plan: ChurnPlan) {
        plan.reset_state();
        self.churn = plan;
    }

    /// The active churn plan (empty by default).
    pub fn churn_plan(&self) -> &ChurnPlan {
        &self.churn
    }

    /// Applies one live reconfiguration request: `tasks` becomes `client`'s
    /// declared task set (the empty set = the client leaves). The
    /// interconnect's admission control decides; on acceptance the traffic
    /// generator is retasked from `now` (request serials continue, queued
    /// requests drain) and the new server parameters swap in at each
    /// affected server's replenishment boundary. On rejection nothing
    /// changes — the interconnect guarantees a bit-identical rollback.
    /// Architectures without admission control ([`ReconfigOutcome::Unsupported`])
    /// get the retask applied directly, without any guarantee.
    ///
    /// Returns whether the request was applied. Counters: `Admitted` /
    /// `AdmissionRejected` for the admission verdict, `Reconfigurations` +
    /// `TransitionCycles` for applied transitions, plus typed
    /// `Reconfigured` / `ReconfigRejected` events when detail is on.
    pub fn apply_reconfiguration(&mut self, client: ClientId, tasks: &TaskSet, now: Cycle) -> bool {
        if client as usize >= self.clients.len() {
            self.registry
                .inc(ComponentId::System, Counter::AdmissionRejected);
            self.registry
                .record(now, Event::ReconfigRejected { client });
            return false;
        }
        let outcome = self.interconnect.reconfigure_client(client, tasks, now);
        self.account_reconfiguration(client, tasks, now, &outcome)
    }

    /// [`apply_reconfiguration`](Self::apply_reconfiguration) with a
    /// cooperative cancellation/timeout hook: the interconnect polls
    /// `cancel` at cheap checkpoints inside its admission analysis and
    /// abandons the request — having mutated nothing — once the token
    /// reports cancelled. Returns the full [`ReconfigOutcome`] so a control
    /// plane can distinguish a rejection (final) from a cancellation
    /// (retryable). A cancelled request counts `AdmissionTimeouts` and
    /// records a typed `AdmissionTimeout` event.
    pub fn apply_reconfiguration_cancellable(
        &mut self,
        client: ClientId,
        tasks: &TaskSet,
        now: Cycle,
        cancel: &CancelToken,
    ) -> ReconfigOutcome {
        if client as usize >= self.clients.len() {
            self.registry
                .inc(ComponentId::System, Counter::AdmissionRejected);
            self.registry
                .record(now, Event::ReconfigRejected { client });
            return ReconfigOutcome::Rejected;
        }
        let outcome = self
            .interconnect
            .reconfigure_client_cancellable(client, tasks, now, cancel);
        self.account_reconfiguration(client, tasks, now, &outcome);
        outcome
    }

    /// Shared accounting for the reconfiguration entry points: applies the
    /// client-side retask for outcomes that took effect and tallies the
    /// verdict counters/events. Returns whether the request was applied.
    fn account_reconfiguration(
        &mut self,
        client: ClientId,
        tasks: &TaskSet,
        now: Cycle,
        outcome: &ReconfigOutcome,
    ) -> bool {
        match *outcome {
            ReconfigOutcome::Admitted { transition_cycles } => {
                self.clients[client as usize].set_tasks(tasks, now);
                for component in [ComponentId::System, ComponentId::Client(client)] {
                    self.registry.inc(component, Counter::Admitted);
                    self.registry.inc(component, Counter::Reconfigurations);
                    if transition_cycles > 0 {
                        self.registry
                            .add(component, Counter::TransitionCycles, transition_cycles);
                    }
                }
                self.registry.record(now, Event::Reconfigured { client });
                true
            }
            ReconfigOutcome::Rejected => {
                for component in [ComponentId::System, ComponentId::Client(client)] {
                    self.registry.inc(component, Counter::AdmissionRejected);
                }
                self.registry
                    .record(now, Event::ReconfigRejected { client });
                false
            }
            ReconfigOutcome::Cancelled => {
                // The caller's deadline expired (or it gave up) before the
                // admission analysis finished; nothing was mutated, and the
                // caller may retry. Counted separately from rejections so
                // overload shows up as timeouts, not capacity exhaustion.
                for component in [ComponentId::System, ComponentId::Client(client)] {
                    self.registry.inc(component, Counter::AdmissionTimeouts);
                }
                self.registry
                    .record(now, Event::AdmissionTimeout { client });
                false
            }
            ReconfigOutcome::Unsupported => {
                // No admission control to consult: apply the retask anyway
                // so churn scenarios still drive baselines and test
                // doubles — counted as a reconfiguration, not an admission.
                self.clients[client as usize].set_tasks(tasks, now);
                for component in [ComponentId::System, ComponentId::Client(client)] {
                    self.registry.inc(component, Counter::Reconfigurations);
                }
                self.registry.record(now, Event::Reconfigured { client });
                true
            }
        }
    }

    /// Drains every churn request due at `now` in arrival order and applies
    /// each through [`apply_reconfiguration`](Self::apply_reconfiguration).
    fn apply_churn_due(&mut self, now: Cycle) {
        while let Some(spec) = self.churn.take_due(now) {
            let tasks = spec.kind.requested_tasks();
            self.apply_reconfiguration(spec.client, &tasks, now);
        }
    }

    /// Activates runtime guards. Configure before stepping: requests
    /// accepted while tracking was off are unknown to the guard layer and
    /// their responses would be suppressed as duplicates.
    ///
    /// The configuration is validated against the current workload (see
    /// [`GuardConfig::validate`]): a watchdog timeout below the longest
    /// deadline window of any client is rejected, because it would
    /// re-inject *healthy* slow requests and break isolation — the PR-3
    /// isolation-bench finding, now enforced. On error the previous guard
    /// configuration stays active.
    ///
    /// # Errors
    ///
    /// [`GuardConfigError::WatchdogBelowDeadlineWindow`] for a watchdog
    /// timeout below the longest deadline window across clients.
    pub fn set_guards(&mut self, config: GuardConfig) -> Result<(), GuardConfigError> {
        let longest = self
            .clients
            .iter()
            .map(|c| c.longest_deadline_window())
            .max()
            .unwrap_or(0);
        config.validate(longest)?;
        self.guards = config;
        Ok(())
    }

    /// Activates runtime guards *without* workload validation. This is the
    /// escape hatch for experiments that deliberately install a pathological
    /// configuration — the isolation bench measures exactly what a
    /// sub-window watchdog timeout does to healthy tenants, and tests
    /// exercise duplicate suppression the same way. Production-style
    /// callers use [`set_guards`](Self::set_guards).
    pub fn set_guards_unchecked(&mut self, config: GuardConfig) {
        self.guards = config;
    }

    /// The active guard configuration.
    pub fn guards(&self) -> &GuardConfig {
        &self.guards
    }

    /// Tracked requests accepted but not yet delivered (see
    /// [`GuardState::outstanding`]). Zero when no guard tracks.
    pub fn guard_outstanding(&self) -> usize {
        self.guard.outstanding()
    }

    /// Clients demoted by the quarantine guard, ascending.
    pub fn quarantined_clients(&self) -> Vec<u32> {
        self.guard.quarantined()
    }

    /// Force-demotes `client` through the quarantine path, exactly as if
    /// the quarantine guard's miss threshold had tripped: the client is
    /// marked quarantined and its reservation is shed via the
    /// admission-tested reconfiguration path (empty task set). External
    /// policy hook — the control plane's circuit breaker feeds flapping
    /// tenants here. Returns `false` if the client was already
    /// quarantined (nothing is re-applied).
    pub fn quarantine_client(&mut self, client: u32) -> bool {
        if self.guard.quarantined.contains(&client) {
            return false;
        }
        self.guard.quarantined.insert(client);
        let now = self.now;
        self.demote_quarantined(client, now)
    }

    /// Deadline misses the guard layer has detected for `client`.
    pub fn detected_misses(&self, client: u32) -> u64 {
        self.guard.detected_misses(client)
    }

    /// Metrics broken down per client (same definitions as the aggregate),
    /// built from the harness registry's per-client slices.
    pub fn per_client_metrics(&self) -> Vec<RunMetrics> {
        (0..self.interconnect.num_clients())
            .map(|c| RunMetrics::from_registry(&self.registry, ComponentId::Client(c as u32)))
            .collect()
    }

    /// The harness-level metrics registry (System and Client aggregates).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Mutable access to the harness registry.
    pub fn registry_mut(&mut self) -> &mut MetricsRegistry {
        &mut self.registry
    }

    /// Turns on detail recording (typed events + request lifecycles) in
    /// both the harness registry and the interconnect's own, if it has one.
    pub fn enable_detail(&mut self) {
        self.registry.enable_detail();
        if let Some(m) = self.interconnect.metrics_mut() {
            m.enable_detail();
        }
    }

    /// A snapshot combining the harness registry with the interconnect's
    /// internal one (component-level grant/throttle/memory tallies). The
    /// two registries count disjoint quantities — in particular, churn
    /// accounting (`Reconfigurations`/`Admitted`/`AdmissionRejected`) is
    /// tallied by the harness registry alone — so merging never
    /// double-counts.
    pub fn merged_registry(&mut self) -> MetricsRegistry {
        let mut merged = self.registry.clone();
        if let Some(m) = self.interconnect.metrics_mut() {
            merged.merge(m);
        }
        merged
    }

    /// Blocking latency of a request that waited during `[issued, done)`:
    /// total channel time granted to *later-deadline* requests in that
    /// window. The log is chronological, so a binary search finds the
    /// window start.
    fn blocking_in_window(&self, issued: Cycle, done: Cycle, deadline: Cycle) -> u64 {
        let start = self.service_log.partition_point(|e| e.at < issued);
        self.service_log[start..]
            .iter()
            .take_while(|e| e.at < done)
            .filter(|e| e.deadline > deadline)
            .map(|e| e.duration)
            .sum()
    }

    /// Current simulation time.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// The interconnect under test.
    pub fn interconnect(&self) -> &I {
        &self.interconnect
    }

    /// Advances the system by one cycle.
    pub fn step(&mut self) {
        let now = self.now;
        let have_faults = !self.faults.is_empty();
        let tracks = self.guards.tracks();
        // Reconfigurations apply before this cycle's releases, so a tenant
        // joining at cycle t releases its first job at t under the new
        // contract. The empty-plan branch keeps churn-free runs exact.
        if !self.churn.is_empty() {
            self.apply_churn_due(now);
        }
        if have_faults {
            self.announce_client_faults(now);
        }
        for client in &mut self.clients {
            if have_faults {
                let owner = client.client();
                let factor = self.faults.demand_multiplier(owner, now);
                client.on_cycle_with_factor(now, factor);
                let burst = self.faults.burst_at(owner, now);
                if burst > 0 && client.inject_burst(now, burst) > 0 {
                    self.registry
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.registry
                        .inc(ComponentId::Client(owner), Counter::FaultsInjected);
                    self.registry.record(
                        now,
                        Event::FaultInjected {
                            component: ComponentId::Client(owner),
                            class: FaultClass::RequestBurst,
                        },
                    );
                }
            } else {
                client.on_cycle(now);
            }
            if let Some(req) = client.take() {
                let owner = req.client;
                // Capture what the guard layer needs before the request is
                // moved into the interconnect; the clone is taken only
                // while a watchdog is armed.
                let tracked = tracks.then(|| {
                    (
                        req.id,
                        req.deadline,
                        self.guards.watchdog.map(|_| req.clone()),
                    )
                });
                match self.interconnect.inject(req, now) {
                    Ok(()) => {
                        // Issues are counted on acceptance only; a bounce
                        // is retried next cycle and counted then.
                        self.registry.inc(ComponentId::System, Counter::Issued);
                        self.registry
                            .inc(ComponentId::Client(owner), Counter::Issued);
                        if let Some((id, deadline, keep)) = tracked {
                            self.guard
                                .track(id, owner, deadline, keep, now, &self.guards);
                        }
                    }
                    Err(rejected) => {
                        client.give_back(rejected);
                        self.registry.inc(ComponentId::System, Counter::Rejected);
                        self.registry
                            .inc(ComponentId::Client(owner), Counter::Rejected);
                    }
                }
            }
        }
        self.interconnect.step(now);
        while let Some(event) = self.interconnect.pop_service_event() {
            self.service_log.push(event);
        }
        while let Some(mut resp) = self.interconnect.pop_response() {
            if tracks && !self.guard.close(resp.request.id) {
                // A watchdog retry raced the original delivery (or the
                // request predates tracking): suppress so completion
                // counts stay exact.
                let owner = resp.request.client;
                self.registry
                    .inc(ComponentId::System, Counter::DuplicateResponses);
                self.registry
                    .inc(ComponentId::Client(owner), Counter::DuplicateResponses);
                continue;
            }
            // Replace the per-stage accounting with the architecture-fair
            // bottleneck measure (see `blocking_in_window`).
            resp.request.blocked_cycles = self.blocking_in_window(
                resp.request.issued_at,
                resp.completed_at,
                resp.request.deadline,
            );
            self.record_response(&resp);
        }
        if tracks {
            self.guard_tick(now);
        }
        self.now += 1;
    }

    /// Emits one fault-activation counter/event per client-side fault
    /// window that opens this cycle (bursts are additionally counted at
    /// their injection site). Interconnect-side fault activity is tallied
    /// by the interconnect into its own registry.
    fn announce_client_faults(&mut self, now: Cycle) {
        for spec in self.faults.specs() {
            if let FaultKind::RogueDemand { client, .. } = spec.kind {
                if spec.window.start == now && spec.window.contains(now) {
                    self.registry
                        .inc(ComponentId::System, Counter::FaultsInjected);
                    self.registry
                        .inc(ComponentId::Client(client), Counter::FaultsInjected);
                    self.registry.record(
                        now,
                        Event::FaultInjected {
                            component: ComponentId::Client(client),
                            class: FaultClass::RogueDemand,
                        },
                    );
                }
            }
        }
    }

    /// Runs the active guards once, after the cycle's responses drained:
    /// flag freshly missed deadlines, fire due watchdog retries, demote
    /// clients past the quarantine threshold.
    fn guard_tick(&mut self, now: Cycle) {
        if self.guards.detects_misses() {
            while let Some(Reverse((deadline, id))) = self.guard.deadline_heap.peek().copied() {
                if deadline >= now {
                    break;
                }
                self.guard.deadline_heap.pop();
                let Some(entry) = self.guard.outstanding.get_mut(&id) else {
                    continue; // delivered in time
                };
                if entry.miss_flagged {
                    continue;
                }
                entry.miss_flagged = true;
                let owner = entry.client;
                *self.guard.miss_tally.entry(owner).or_insert(0) += 1;
                self.registry
                    .inc(ComponentId::System, Counter::MissesDetected);
                self.registry
                    .inc(ComponentId::Client(owner), Counter::MissesDetected);
                self.registry.record(
                    now,
                    Event::DeadlineMiss {
                        client: owner,
                        request: id,
                    },
                );
            }
        }
        if let Some(w) = self.guards.watchdog {
            while let Some(&(due, id)) = self.guard.retry_due.iter().next() {
                if due > now {
                    break;
                }
                self.guard.retry_due.remove(&(due, id));
                let Some(entry) = self.guard.outstanding.get_mut(&id) else {
                    continue; // delivered while the timer was pending
                };
                if entry.retries >= w.max_retries {
                    continue; // given up; stays outstanding (a lost request)
                }
                let Some(request) = entry.request.clone() else {
                    continue;
                };
                let owner = entry.client;
                match self.interconnect.inject(request, now) {
                    Ok(()) => {
                        entry.retries += 1;
                        // Saturating like `GuardState::track`: sentinel
                        // timeouts (`Cycle::MAX` = detection-only) must not
                        // overflow the re-arm.
                        self.guard
                            .retry_due
                            .insert((now.saturating_add(w.timeout.max(1)), id));
                        self.registry.inc(ComponentId::System, Counter::Retries);
                        self.registry
                            .inc(ComponentId::Client(owner), Counter::Retries);
                        self.registry.record(
                            now,
                            Event::Retry {
                                client: owner,
                                request: id,
                            },
                        );
                    }
                    Err(_) => {
                        // Port full this cycle: try again next cycle
                        // without charging a retry.
                        self.guard.retry_due.insert((now + 1, id));
                    }
                }
            }
        }
        if let Some(policy) = self.guards.quarantine {
            let offenders: Vec<u32> = self
                .guard
                .miss_tally
                .iter()
                .filter(|&(c, &misses)| {
                    misses >= policy.miss_threshold && !self.guard.quarantined.contains(c)
                })
                .map(|(&c, _)| c)
                .collect();
            for c in offenders {
                // Marked regardless of whether the demotion takes effect,
                // so architectures without the hook are asked only once.
                self.guard.quarantined.insert(c);
                self.demote_quarantined(c, now);
            }
        }
    }

    /// Sheds a quarantined client's reservation. A demotion is a mode
    /// change like any other: route it through the reconfiguration path
    /// (empty task set = leave) so it is admission-tested, applied at
    /// replenishment boundaries and observable as a first-class
    /// transition. Architectures without the hook fall back to the legacy
    /// immediate demotion. The rogue generator itself is *not* retasked —
    /// it keeps issuing its undeclared traffic, now without a reservation.
    fn demote_quarantined(&mut self, c: u32, now: Cycle) -> bool {
        let demoted = match self
            .interconnect
            .reconfigure_client(c, &TaskSet::empty(), now)
        {
            ReconfigOutcome::Admitted { transition_cycles } => {
                for component in [ComponentId::System, ComponentId::Client(c)] {
                    self.registry.inc(component, Counter::Reconfigurations);
                    if transition_cycles > 0 {
                        self.registry
                            .add(component, Counter::TransitionCycles, transition_cycles);
                    }
                }
                self.registry.record(now, Event::Reconfigured { client: c });
                true
            }
            // Shedding load cannot fail admission; reported only for an
            // out-of-range client, which cannot be tracked. Cancelled
            // cannot occur on the non-cancellable entry point; treated as
            // not-demoted for exhaustiveness.
            ReconfigOutcome::Rejected | ReconfigOutcome::Cancelled => false,
            ReconfigOutcome::Unsupported => self.interconnect.demote_client(c),
        };
        if demoted {
            self.registry.inc(ComponentId::System, Counter::Quarantines);
            self.registry
                .inc(ComponentId::Client(c), Counter::Quarantines);
            self.registry.record(now, Event::Quarantine { client: c });
        }
        demoted
    }

    /// Records a delivered response into the System aggregate and the
    /// owning client's slice of the registry.
    fn record_response(&mut self, response: &MemoryResponse) {
        let latency = response.latency() as f64;
        let blocking = response.request.blocked_cycles as f64;
        let window = response
            .request
            .deadline
            .saturating_sub(response.request.issued_at)
            .max(1);
        let normalized = latency / window as f64;
        let missed = response.missed_deadline();
        for component in [
            ComponentId::System,
            ComponentId::Client(response.request.client),
        ] {
            self.registry.inc(component, Counter::Completed);
            self.registry
                .sample(component, SampleKind::Latency, latency);
            self.registry
                .sample(component, SampleKind::Blocking, blocking);
            self.registry
                .sample(component, SampleKind::NormalizedResponse, normalized);
            if missed {
                self.registry.inc(component, Counter::Missed);
            }
        }
    }

    /// Discards all metrics collected so far (the warm-up transient) while
    /// keeping the simulation state. Subsequent metrics reflect steady
    /// state only.
    pub fn reset_metrics(&mut self) {
        let detail = self.registry.detail();
        let window = self.registry.sample_window();
        self.registry = MetricsRegistry::new();
        if detail {
            self.registry.enable_detail();
        }
        self.registry.set_sample_window(window);
    }

    /// Runs until `horizon`, discarding everything recorded before
    /// `warmup` (see [`reset_metrics`](Self::reset_metrics)).
    ///
    /// `warmup` is clamped to `horizon`: an inverted pair used to simulate
    /// silently past the horizon and then account still-pending requests
    /// against a cutoff earlier than `now`, yielding nonsense miss counts.
    /// With the clamp, `warmup >= horizon` degenerates to "simulate to the
    /// horizon, reset, account" — the same as `warmup == horizon`.
    pub fn run_with_warmup(&mut self, warmup: Cycle, horizon: Cycle) -> RunMetrics {
        self.advance_to(warmup.min(horizon));
        self.reset_metrics();
        self.run(horizon)
    }

    /// Attaches a streaming-telemetry pipeline; its first flush boundary
    /// is aligned one period after the current cycle. Replaces (and
    /// returns) any previously attached pipeline without finishing it.
    pub fn attach_telemetry(&mut self, mut pipeline: Pipeline) -> Option<Pipeline> {
        pipeline.align(self.now);
        self.telemetry.replace(pipeline)
    }

    /// Removes the attached pipeline without a final flush.
    pub fn detach_telemetry(&mut self) -> Option<Pipeline> {
        self.telemetry.take()
    }

    /// Whether a telemetry pipeline is attached.
    pub fn telemetry_attached(&self) -> bool {
        self.telemetry.is_some()
    }

    /// Epochs the attached pipeline has flushed (0 when none attached).
    pub fn telemetry_epochs(&self) -> u64 {
        self.telemetry.as_ref().map_or(0, Pipeline::epochs_flushed)
    }

    /// Final telemetry flush + sink finalization. Call after the last
    /// [`run`](Self::run) so the stream's tail captures end-of-run
    /// accounting (backlog misses land after the horizon is reached).
    pub fn finish_telemetry(&mut self) {
        // Fold interconnect-batched tallies before the last extraction.
        self.interconnect.metrics_mut();
        let now = self.now;
        let Some(pipeline) = self.telemetry.as_mut() else {
            return;
        };
        let fabric = self.interconnect.metrics();
        let mut sources: Vec<(&'static str, &MetricsRegistry)> = vec![("harness", &self.registry)];
        if let Some(m) = fabric {
            sources.push(("fabric", m));
        }
        pipeline.finish(now, &sources);
    }

    /// Flushes the attached pipeline if the current cycle has reached its
    /// boundary. Hosts that step the system manually (the control-plane
    /// daemon steps in small batches) call this between batches; `run`
    /// and `advance_to` call it at span boundaries automatically.
    pub fn flush_telemetry_due(&mut self) {
        let now = self.now;
        match &self.telemetry {
            Some(p) if now >= p.next_flush() => {}
            _ => return,
        }
        // Fold any counters the interconnect batches (memory-controller
        // stats, the SoA engine's delta arrays) so the epoch sees them.
        self.interconnect.metrics_mut();
        let fabric = self.interconnect.metrics();
        let pipeline = self.telemetry.as_mut().expect("checked above");
        let mut sources: Vec<(&'static str, &MetricsRegistry)> = vec![("harness", &self.registry)];
        if let Some(m) = fabric {
            sources.push(("fabric", m));
        }
        pipeline.flush(now, &sources);
    }

    /// Steps (or fast-forwards) the simulation up to `horizon` without any
    /// end-of-run accounting. With telemetry attached, the horizon is
    /// covered as a sequence of spans bounded by flush boundaries; the
    /// per-cycle loop itself never checks for flushes.
    pub fn advance_to(&mut self, horizon: Cycle) {
        if self.telemetry.is_none() {
            self.advance_span(horizon);
            return;
        }
        while self.now < horizon {
            let due = self.telemetry.as_ref().expect("checked above").next_flush();
            // `max(now + 1)` guarantees progress even if a boundary is
            // somehow at or behind `now`; `flush` advances the boundary
            // strictly past `now` afterwards.
            let bound = horizon.min(due.max(self.now + 1));
            self.advance_span(bound);
            self.flush_telemetry_due();
        }
    }

    /// One uninterrupted simulation span (the pre-telemetry `advance_to`).
    fn advance_span(&mut self, horizon: Cycle) {
        // Fast-forward is gated off while detail recording is on: typed
        // per-cycle events (e.g. `Replenish` at every period boundary)
        // cannot be replayed in closed form, and detail runs are
        // diagnostics where wall-clock is secondary.
        let fast = self.config.fast_forward
            && !self.registry.detail()
            && self.interconnect.metrics().is_none_or(|m| !m.detail());
        // After a failed jump attempt the system is mid-drain and will
        // stay busy for a while; probing every cycle would pay the O(n)
        // veto scan per stepped cycle. Backing off is always sound —
        // skipping a jump opportunity just steps cycles the oracle way —
        // so results stay bit-identical, only wall-clock changes.
        const ATTEMPT_BACKOFF: Cycle = 16;
        let mut next_attempt = self.now;
        while self.now < horizon {
            if fast && self.now >= next_attempt {
                if let Some(target) = self.fast_forward_target(horizon) {
                    let delta = target - self.now;
                    self.interconnect.advance_idle(self.now, delta);
                    self.ff_jumps += 1;
                    self.ff_skipped += delta;
                    self.now = target;
                    if self.now >= horizon {
                        break;
                    }
                } else {
                    next_attempt = self.now + ATTEMPT_BACKOFF;
                }
            }
            self.step();
        }
        // Fold in any counters the interconnect batches during the run
        // (memory-controller stats, the SoA engine's delta arrays) so that
        // read-only `metrics()` fingerprints taken after a run are exact.
        self.interconnect.metrics_mut();
    }

    /// The cycle to jump to, when every layer promises nothing happens
    /// before it: the minimum of the interconnect's hint, each client's
    /// next release (or backlog), the fault plan's next window and the
    /// guard layer's next timer, clamped to `horizon`. `None` when any
    /// layer is busy at `now` (or the interconnect does not support
    /// hinting) — the caller then steps one cycle as usual.
    fn fast_forward_target(&self, horizon: Cycle) -> Option<Cycle> {
        let now = self.now;
        // Cheapest vetoes first: `jump_target` consumes the chain lazily
        // and bails at the first `report <= now`, so a busy fabric (the
        // common mid-drain case) is detected before the O(clients) scan.
        let hint = self.interconnect.next_event_hint(now)?;
        let reports = std::iter::once(hint)
            .chain((!self.faults.is_empty()).then(|| self.faults.next_activity(now)))
            .chain((!self.churn.is_empty()).then(|| self.churn.next_activity(now)))
            .chain(self.guards.tracks().then(|| self.guard.next_event()))
            .chain(self.clients.iter().map(|c| c.next_event(now)));
        jump_target(now, horizon, reports)
    }

    /// Runs until `horizon` cycles have elapsed, then accounts still-pending
    /// requests (in client backlogs and inside the interconnect) as misses
    /// when their deadlines lie before the horizon. Returns the metrics.
    ///
    /// Provably-idle stretches are jumped in closed form when
    /// [`SystemConfig::fast_forward`] is on (the default) and the
    /// interconnect cooperates; results are bit-identical either way.
    pub fn run(&mut self, horizon: Cycle) -> RunMetrics {
        self.advance_to(horizon);
        // Requests still queued at the clients past their deadline. They
        // land in the returned aggregate and in the registry's per-client
        // slices (so the system-level registry counters stay a pure record
        // of the stepped simulation, usable for further run() calls).
        let mut metrics = RunMetrics::from_registry(&self.registry, ComponentId::System);
        for client in &mut self.clients {
            while let Some(req) = client.take() {
                metrics.on_issued();
                metrics.on_incomplete(req.deadline, horizon);
                let owner = ComponentId::Client(req.client);
                self.registry.inc(owner, Counter::Issued);
                self.registry.inc(owner, Counter::Backlog);
                if req.deadline < horizon {
                    self.registry.inc(owner, Counter::Missed);
                }
            }
        }
        // Requests absorbed by the interconnect but not completed are
        // counted as issued already; their deadline state is unknown here,
        // so implementations expose only the count. Treat each as missed
        // only if the run left them stuck long enough that their deadline
        // cannot be met — conservatively: pending > 0 with horizon past is
        // *not* automatically a miss; the figures use long horizons so the
        // residue is negligible (asserted in integration tests).
        metrics
    }

    /// Total requests currently buffered inside the interconnect.
    pub fn in_flight(&self) -> usize {
        self.interconnect.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::{QuarantinePolicy, WatchdogConfig};
    use crate::{MemoryRequest, MemoryResponse};
    use bluescale_rt::task::Task;
    use std::collections::VecDeque;

    /// A trivial interconnect: accepts one request per client per cycle
    /// into a single queue, serves one per cycle with `latency` transit.
    struct IdealInterconnect {
        clients: usize,
        queue: VecDeque<(MemoryRequest, Cycle)>,
        ready: VecDeque<MemoryResponse>,
        latency: Cycle,
    }

    impl Interconnect for IdealInterconnect {
        fn name(&self) -> &'static str {
            "ideal"
        }
        fn num_clients(&self) -> usize {
            self.clients
        }
        fn inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), MemoryRequest> {
            self.queue.push_back((request, now));
            Ok(())
        }
        fn step(&mut self, now: Cycle) {
            if let Some((req, _)) = self.queue.pop_front() {
                self.ready.push_back(MemoryResponse {
                    request: req,
                    completed_at: now + self.latency,
                });
            }
        }
        fn pop_response(&mut self) -> Option<MemoryResponse> {
            self.ready.pop_front()
        }
        fn pending(&self) -> usize {
            self.queue.len() + self.ready.len()
        }
    }

    fn sets(n: usize, period: u64, wcet: u64) -> Vec<TaskSet> {
        (0..n)
            .map(|_| TaskSet::new(vec![Task::new(0, period, wcet).unwrap()]).unwrap())
            .collect()
    }

    #[test]
    fn light_load_has_no_misses() {
        let ic = Box::new(IdealInterconnect {
            clients: 4,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 2,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(4, 100, 1));
        let m = sys.run(1_000);
        assert!(m.issued() >= 4 * 9, "issued {}", m.issued());
        assert!(m.success(), "missed {}", m.missed());
        assert!(m.mean_latency() >= 2.0);
    }

    #[test]
    fn overload_produces_misses() {
        // 4 clients × demand 60/100 each = 2.4× the service rate of one
        // request per cycle... periods of 10 with wcet 9 → U=3.6 overload.
        let ic = Box::new(IdealInterconnect {
            clients: 4,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(4, 10, 9));
        let m = sys.run(2_000);
        assert!(m.miss_ratio() > 0.1, "miss ratio {}", m.miss_ratio());
    }

    #[test]
    #[should_panic(expected = "one task set per client")]
    fn mismatched_client_count_panics() {
        let ic = Box::new(IdealInterconnect {
            clients: 4,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let _ = System::new(ic as Box<dyn Interconnect>, &sets(3, 10, 1));
    }

    #[test]
    fn warmup_discards_transient_metrics() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 50, 2));
        let m = sys.run_with_warmup(250, 500);
        // Releases every 50 cycles, 2 requests each, 2 clients: the full
        // run would issue 40; discarding [0, 250) leaves the 5 releases at
        // 250..=450 → exactly 20.
        assert_eq!(m.issued(), 20);
    }

    #[test]
    fn warmup_equal_to_horizon_is_reset_plus_noop_run() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 50, 2));
        let m = sys.run_with_warmup(500, 500);
        assert_eq!(sys.now(), 500, "simulates exactly to the horizon");
        assert_eq!(m.issued(), 0, "every release falls inside the warm-up");
        assert_eq!(m.completed(), 0);
        assert_eq!(m.missed(), 0);
    }

    #[test]
    fn warmup_beyond_horizon_is_clamped() {
        // Regression: warmup > horizon used to simulate to `warmup` and
        // then account still-queued requests against the earlier horizon,
        // producing backlog/miss counts for a window that was never
        // observed.
        let run = |warmup| {
            let ic = Box::new(IdealInterconnect {
                clients: 2,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                latency: 1,
            });
            let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 50, 2));
            let m = sys.run_with_warmup(warmup, 500);
            (
                sys.now(),
                m.issued(),
                m.completed(),
                m.missed(),
                m.backlog(),
            )
        };
        assert_eq!(
            run(800),
            run(500),
            "inverted warm-up behaves like the boundary"
        );
    }

    #[test]
    fn watchdog_sentinel_timeout_is_detection_only() {
        // Regression: `now + Cycle::MAX` overflowed in debug builds. The
        // sentinel must run miss detection without ever firing a retry.
        let mut ic = Box::new(LossyInterconnect::new(2));
        ic.blackhole_client = Some(1);
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 20, 1));
        sys.set_guards(GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: Cycle::MAX,
                max_retries: 3,
            }),
            quarantine: None,
        })
        .expect("a Cycle::MAX timeout exceeds every deadline window");
        sys.run(500);
        assert!(sys.detected_misses(1) > 0, "misses still detected");
        let reg = sys.registry();
        assert_eq!(
            reg.counter(ComponentId::System, Counter::Retries),
            0,
            "a Cycle::MAX timeout never comes due"
        );
    }

    #[test]
    fn fast_forward_stays_off_without_interconnect_support() {
        // Test doubles keep the default `next_event_hint` (None), so the
        // default-on fast-forward flag must leave them on the per-cycle
        // path — and results identical with the flag forced off.
        let run = |fast_forward| {
            let ic = Box::new(IdealInterconnect {
                clients: 4,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                latency: 2,
            });
            let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(4, 50, 2));
            sys.set_fast_forward(fast_forward);
            let m = sys.run(2_000);
            assert_eq!(sys.fast_forward_jumps(), 0, "no hint → no jumps");
            (m.issued(), m.completed(), m.missed(), m.mean_latency())
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn per_client_metrics_partition_the_totals() {
        let ic = Box::new(IdealInterconnect {
            clients: 4,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(4, 100, 2));
        let total = sys.run(1_000);
        let per_client = sys.per_client_metrics();
        assert_eq!(per_client.len(), 4);
        let issued_sum: u64 = per_client.iter().map(|m| m.issued()).sum();
        let completed_sum: u64 = per_client.iter().map(|m| m.completed()).sum();
        assert_eq!(issued_sum, total.issued());
        assert_eq!(completed_sum, total.completed());
    }

    #[test]
    fn rogue_configuration_multiplies_demand() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 2));
        sys.set_misbehaviour_factor(1, 4);
        sys.run(1_000);
        let per_client = sys.per_client_metrics();
        assert_eq!(per_client[1].issued(), 4 * per_client[0].issued());
    }

    #[test]
    fn phased_system_spreads_releases() {
        let ic = Box::new(IdealInterconnect {
            clients: 4,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new_phased(ic as Box<dyn Interconnect>, &sets(4, 100, 1), 7);
        // After one cycle, a synchronous system would have issued 4; a
        // phased one almost surely fewer (seed chosen accordingly).
        sys.step();
        let early: u64 = sys.per_client_metrics().iter().map(|m| m.issued()).sum();
        assert!(early < 4, "phases must stagger the initial burst");
        // Long-run issue counts match the synchronous system's rate.
        let m = sys.run(1_000);
        assert!(m.issued() >= 4 * 9, "issued {}", m.issued());
    }

    /// Rejects every injection: exercises the Rejected accounting path.
    struct FullInterconnect {
        clients: usize,
    }

    impl Interconnect for FullInterconnect {
        fn name(&self) -> &'static str {
            "full"
        }
        fn num_clients(&self) -> usize {
            self.clients
        }
        fn inject(&mut self, request: MemoryRequest, _now: Cycle) -> Result<(), MemoryRequest> {
            Err(request)
        }
        fn step(&mut self, _now: Cycle) {}
        fn pop_response(&mut self) -> Option<MemoryResponse> {
            None
        }
        fn pending(&self) -> usize {
            0
        }
    }

    #[test]
    fn rejections_are_counted_but_not_issued() {
        let ic = Box::new(FullInterconnect { clients: 2 });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 1));
        for _ in 0..50 {
            sys.step();
        }
        let reg = sys.registry();
        assert_eq!(reg.counter(ComponentId::System, Counter::Issued), 0);
        assert!(reg.counter(ComponentId::System, Counter::Rejected) >= 50);
        assert!(reg.counter(ComponentId::Client(0), Counter::Rejected) > 0);
        // The stuck requests surface as backlog when the run closes.
        let m = sys.run(50);
        assert_eq!(m.backlog(), 2);
        assert_eq!(m.issued(), 2);
    }

    #[test]
    fn merged_registry_combines_disjoint_slices() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 1));
        sys.run(300);
        let merged = sys.merged_registry();
        // The test double keeps no registry, so the merge equals the
        // harness's own slice.
        assert_eq!(
            merged.counter(ComponentId::System, Counter::Issued),
            sys.registry().counter(ComponentId::System, Counter::Issued)
        );
        assert!(merged.counter(ComponentId::System, Counter::Completed) > 0);
    }

    /// Accepts everything but silently loses the first `lose_remaining`
    /// requests from client 1 (retries arrive later and get through), and
    /// records quarantine demotions. Never responds to demoted clients.
    struct LossyInterconnect {
        clients: usize,
        queue: VecDeque<MemoryRequest>,
        ready: VecDeque<MemoryResponse>,
        lose_remaining: usize,
        blackhole_client: Option<u32>,
        demoted: Vec<u32>,
    }

    impl LossyInterconnect {
        fn new(clients: usize) -> Self {
            Self {
                clients,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                lose_remaining: 0,
                blackhole_client: None,
                demoted: Vec::new(),
            }
        }
    }

    impl Interconnect for LossyInterconnect {
        fn name(&self) -> &'static str {
            "lossy"
        }
        fn num_clients(&self) -> usize {
            self.clients
        }
        fn inject(&mut self, request: MemoryRequest, _now: Cycle) -> Result<(), MemoryRequest> {
            if request.client == 1 && self.lose_remaining > 0 {
                self.lose_remaining -= 1;
                return Ok(()); // accepted, then silently lost
            }
            if self.blackhole_client == Some(request.client) {
                return Ok(());
            }
            self.queue.push_back(request);
            Ok(())
        }
        fn step(&mut self, now: Cycle) {
            if let Some(req) = self.queue.pop_front() {
                self.ready.push_back(MemoryResponse {
                    request: req,
                    completed_at: now + 1,
                });
            }
        }
        fn pop_response(&mut self) -> Option<MemoryResponse> {
            self.ready.pop_front()
        }
        fn pending(&self) -> usize {
            self.queue.len() + self.ready.len()
        }
        fn demote_client(&mut self, client: u32) -> bool {
            self.demoted.push(client);
            true
        }
    }

    #[test]
    fn burst_fault_issues_undeclared_traffic() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 1));
        let mut plan = FaultPlan::new(1);
        plan.push(
            FaultKind::RequestBurst {
                client: 0,
                requests: 7,
            },
            FaultWindow::new(50, 51),
        );
        sys.set_fault_plan(plan);
        sys.run(1_000);
        let per_client = sys.per_client_metrics();
        assert_eq!(per_client[0].issued(), per_client[1].issued() + 7);
        let reg = sys.registry();
        assert_eq!(reg.counter(ComponentId::System, Counter::FaultsInjected), 1);
        assert_eq!(
            reg.counter(ComponentId::Client(0), Counter::FaultsInjected),
            1
        );
    }

    #[test]
    fn watchdog_recovers_lost_requests() {
        let mut ic = Box::new(LossyInterconnect::new(2));
        ic.lose_remaining = 3;
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 1));
        // Timeout 10 is below the 100-cycle deadline window on purpose:
        // with an interconnect that *loses* requests, fast re-injection is
        // the recovery mechanism under test — the unchecked path installs
        // what validation would (correctly) refuse for healthy transport.
        sys.set_guards_unchecked(GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: 10,
                max_retries: 3,
            }),
            quarantine: None,
        });
        let m = sys.run(1_000);
        assert_eq!(m.completed(), m.issued(), "every lost request recovered");
        assert_eq!(sys.guard_outstanding(), 0);
        let reg = sys.registry();
        assert!(reg.counter(ComponentId::Client(1), Counter::Retries) >= 3);
        assert_eq!(reg.counter(ComponentId::System, Counter::MissesDetected), 0);
    }

    /// Delivers every request exactly `delay` cycles after injection —
    /// a genuine transit delay, unlike [`IdealInterconnect`] whose
    /// latency is only a timestamp.
    struct DelayLine {
        clients: usize,
        pending: VecDeque<(MemoryRequest, Cycle)>,
        ready: VecDeque<MemoryResponse>,
        delay: Cycle,
    }

    impl Interconnect for DelayLine {
        fn name(&self) -> &'static str {
            "delay-line"
        }
        fn num_clients(&self) -> usize {
            self.clients
        }
        fn inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), MemoryRequest> {
            self.pending.push_back((request, now + self.delay));
            Ok(())
        }
        fn step(&mut self, now: Cycle) {
            while let Some((_, ready_at)) = self.pending.front() {
                if *ready_at > now {
                    break;
                }
                let (req, _) = self.pending.pop_front().unwrap();
                self.ready.push_back(MemoryResponse {
                    request: req,
                    completed_at: now,
                });
            }
        }
        fn pop_response(&mut self) -> Option<MemoryResponse> {
            self.ready.pop_front()
        }
        fn pending(&self) -> usize {
            self.pending.len() + self.ready.len()
        }
    }

    #[test]
    fn duplicate_responses_are_suppressed() {
        // Timeout shorter than the transit delay: the watchdog retries a
        // request that was merely slow, and the duplicate delivery must
        // not inflate completion counts.
        let ic = Box::new(DelayLine {
            clients: 1,
            pending: VecDeque::new(),
            ready: VecDeque::new(),
            delay: 30,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(1, 200, 1));
        // Deliberately pathological (timeout 5 ≪ window 200) to provoke
        // the duplicate delivery this test suppresses; validation would
        // reject it, so install through the unchecked path.
        sys.set_guards_unchecked(GuardConfig {
            deadline_miss_detection: false,
            watchdog: Some(WatchdogConfig {
                timeout: 5,
                max_retries: 1,
            }),
            quarantine: None,
        });
        let m = sys.run(2_000);
        assert_eq!(m.completed(), m.issued());
        let reg = sys.registry();
        assert!(reg.counter(ComponentId::System, Counter::DuplicateResponses) > 0);
    }

    #[test]
    fn quarantine_demotes_persistent_missers() {
        let mut ic = Box::new(LossyInterconnect::new(2));
        ic.blackhole_client = Some(1);
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 20, 1));
        sys.set_guards(GuardConfig {
            deadline_miss_detection: false,
            watchdog: None,
            quarantine: Some(QuarantinePolicy { miss_threshold: 2 }),
        })
        .expect("no watchdog to validate");
        sys.run(500);
        assert_eq!(sys.quarantined_clients(), vec![1]);
        assert!(sys.detected_misses(1) >= 2);
        assert_eq!(sys.detected_misses(0), 0);
        let reg = sys.registry();
        assert_eq!(reg.counter(ComponentId::System, Counter::Quarantines), 1);
        assert_eq!(reg.counter(ComponentId::Client(1), Counter::Quarantines), 1);
    }

    #[test]
    fn guards_alone_leave_metrics_unchanged() {
        let run = |guarded: bool| {
            let ic = Box::new(IdealInterconnect {
                clients: 4,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                latency: 2,
            });
            let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(4, 50, 2));
            if guarded {
                sys.set_guards(GuardConfig {
                    deadline_miss_detection: true,
                    watchdog: Some(WatchdogConfig {
                        timeout: 60,
                        max_retries: 2,
                    }),
                    quarantine: Some(QuarantinePolicy { miss_threshold: 3 }),
                })
                .expect("timeout 60 clears the 50-cycle window");
            }
            let m = sys.run(2_000);
            (m.issued(), m.completed(), m.missed(), m.mean_latency())
        };
        assert_eq!(run(false), run(true), "idle guards must not perturb");
    }

    #[test]
    fn churn_retasks_clients_on_schedule() {
        use crate::admission::ChurnKind;

        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 2));
        let mut plan = ChurnPlan::new(3);
        plan.push(
            500,
            1,
            ChurnKind::UpdateTasks {
                tasks: TaskSet::new(vec![Task::new(0, 100, 8).unwrap()]).unwrap(),
            },
        );
        sys.set_churn_plan(plan);
        let m = sys.run(1_000);
        let per_client = sys.per_client_metrics();
        // Client 1: 5 releases × 2 before the update, then 5 × 8 after
        // (retasking restarts its release train at the churn cycle).
        assert_eq!(per_client[1].issued(), 5 * 2 + 5 * 8);
        assert_eq!(per_client[0].issued(), 10 * 2);
        assert_eq!(m.issued(), per_client[0].issued() + per_client[1].issued());
        let reg = sys.registry();
        // The test double keeps the default hook (Unsupported): the retask
        // is applied without guarantee, counted as a reconfiguration but
        // never as an admission.
        assert_eq!(
            reg.counter(ComponentId::System, Counter::Reconfigurations),
            1
        );
        assert_eq!(
            reg.counter(ComponentId::Client(1), Counter::Reconfigurations),
            1
        );
        assert_eq!(reg.counter(ComponentId::System, Counter::Admitted), 0);
        assert_eq!(sys.churn_plan().remaining(), 0);
    }

    #[test]
    fn churn_leave_then_join_silences_and_revives_a_client() {
        use crate::admission::ChurnKind;

        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 1));
        let mut plan = ChurnPlan::new(4);
        plan.push(300, 1, ChurnKind::Leave);
        plan.push(
            700,
            1,
            ChurnKind::Join {
                tasks: TaskSet::new(vec![Task::new(0, 50, 1).unwrap()]).unwrap(),
            },
        );
        sys.set_churn_plan(plan);
        sys.run(1_000);
        let per_client = sys.per_client_metrics();
        // Releases at 0, 100, 200 (3), silence over [300, 700), then the
        // rejoined tenant releases at 700, 750, ..., 950 (6).
        assert_eq!(per_client[1].issued(), 3 + 6);
        assert_eq!(per_client[0].issued(), 10);
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::Reconfigurations),
            2
        );
    }

    /// Vetoes every reconfiguration: exercises the rejection accounting.
    struct RejectingInterconnect {
        inner: IdealInterconnect,
    }

    impl Interconnect for RejectingInterconnect {
        fn name(&self) -> &'static str {
            "rejecting"
        }
        fn num_clients(&self) -> usize {
            self.inner.num_clients()
        }
        fn inject(&mut self, request: MemoryRequest, now: Cycle) -> Result<(), MemoryRequest> {
            self.inner.inject(request, now)
        }
        fn step(&mut self, now: Cycle) {
            self.inner.step(now);
        }
        fn pop_response(&mut self) -> Option<MemoryResponse> {
            self.inner.pop_response()
        }
        fn pending(&self) -> usize {
            self.inner.pending()
        }
        fn reconfigure_client(
            &mut self,
            _client: ClientId,
            _tasks: &TaskSet,
            _now: Cycle,
        ) -> ReconfigOutcome {
            ReconfigOutcome::Rejected
        }
    }

    #[test]
    fn rejected_churn_leaves_the_client_untouched() {
        use crate::admission::ChurnKind;

        let ic = Box::new(RejectingInterconnect {
            inner: IdealInterconnect {
                clients: 2,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                latency: 1,
            },
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 2));
        let mut plan = ChurnPlan::new(5);
        plan.push(
            500,
            1,
            ChurnKind::UpdateTasks {
                tasks: TaskSet::new(vec![Task::new(0, 100, 8).unwrap()]).unwrap(),
            },
        );
        sys.set_churn_plan(plan);
        sys.run(1_000);
        let per_client = sys.per_client_metrics();
        // The rejected tenant keeps its admitted contract: both clients
        // issue the same stream.
        assert_eq!(per_client[1].issued(), per_client[0].issued());
        let reg = sys.registry();
        assert_eq!(
            reg.counter(ComponentId::System, Counter::AdmissionRejected),
            1
        );
        assert_eq!(
            reg.counter(ComponentId::Client(1), Counter::AdmissionRejected),
            1
        );
        assert_eq!(
            reg.counter(ComponentId::System, Counter::Reconfigurations),
            0
        );
    }

    #[test]
    fn misbehaviour_shim_matches_handbuilt_fault_plan() {
        // The deprecated shim must be a pure alias for pushing a
        // RogueDemand fault over an always-open window.
        let run = |shim: bool| {
            let ic = Box::new(IdealInterconnect {
                clients: 2,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                latency: 1,
            });
            let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 2));
            if shim {
                sys.set_misbehaviour_factor(1, 4);
            } else {
                let mut plan = FaultPlan::default();
                plan.push(
                    FaultKind::RogueDemand {
                        client: 1,
                        factor: 4,
                    },
                    FaultWindow::ALWAYS,
                );
                sys.set_fault_plan(plan);
            }
            let m = sys.run(1_000);
            let per_client: Vec<u64> = sys
                .per_client_metrics()
                .iter()
                .map(|m| m.issued())
                .collect();
            (m.issued(), m.completed(), m.missed(), per_client)
        };
        assert_eq!(run(true), run(false));
    }

    #[test]
    fn empty_churn_plan_is_inert() {
        let run = |churn: bool, fast_forward: bool| {
            let ic = Box::new(IdealInterconnect {
                clients: 4,
                queue: VecDeque::new(),
                ready: VecDeque::new(),
                latency: 2,
            });
            let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(4, 50, 2));
            sys.set_fast_forward(fast_forward);
            if churn {
                sys.set_churn_plan(ChurnPlan::new(17));
            }
            let m = sys.run(2_000);
            (m.issued(), m.completed(), m.missed(), m.mean_latency())
        };
        for fast_forward in [false, true] {
            assert_eq!(
                run(true, fast_forward),
                run(false, fast_forward),
                "an empty plan must not perturb (fast_forward={fast_forward})"
            );
        }
    }

    #[test]
    fn set_guards_rejects_subwindow_watchdog() {
        use crate::guard::GuardConfigError;

        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        // Periods 100 and 40: the longest deadline window is 100.
        let sets = vec![
            TaskSet::new(vec![Task::new(0, 100, 1).unwrap()]).unwrap(),
            TaskSet::new(vec![Task::new(0, 40, 1).unwrap()]).unwrap(),
        ];
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets);
        let bad = GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: 99,
                max_retries: 1,
            }),
            quarantine: None,
        };
        assert_eq!(
            sys.set_guards(bad),
            Err(GuardConfigError::WatchdogBelowDeadlineWindow {
                timeout: 99,
                longest_window: 100,
            })
        );
        assert!(
            !sys.guards().tracks(),
            "a rejected config leaves the previous guards active"
        );
        let ok = GuardConfig {
            deadline_miss_detection: true,
            watchdog: Some(WatchdogConfig {
                timeout: 100,
                max_retries: 1,
            }),
            quarantine: None,
        };
        assert_eq!(sys.set_guards(ok), Ok(()));
        assert!(sys.guards().tracks());
    }

    #[test]
    fn cancelled_reconfiguration_counts_timeouts_and_mutates_nothing() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 100, 2));
        let cancel = CancelToken::new();
        cancel.cancel();
        let tasks = TaskSet::new(vec![Task::new(0, 100, 8).unwrap()]).unwrap();
        let outcome = sys.apply_reconfiguration_cancellable(1, &tasks, 0, &cancel);
        assert_eq!(outcome, ReconfigOutcome::Cancelled);
        let reg = sys.registry();
        assert_eq!(
            reg.counter(ComponentId::System, Counter::AdmissionTimeouts),
            1
        );
        assert_eq!(
            reg.counter(ComponentId::Client(1), Counter::AdmissionTimeouts),
            1
        );
        assert_eq!(
            reg.counter(ComponentId::System, Counter::Reconfigurations),
            0,
            "a cancelled request must not retask the client"
        );
        // A live token goes through: the test double reports Unsupported,
        // so the retask applies without an admission guarantee.
        let outcome = sys.apply_reconfiguration_cancellable(1, &tasks, 0, &CancelToken::new());
        assert_eq!(outcome, ReconfigOutcome::Unsupported);
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::Reconfigurations),
            1
        );
    }

    #[test]
    fn issued_counts_acceptances_once() {
        let ic = Box::new(IdealInterconnect {
            clients: 2,
            queue: VecDeque::new(),
            ready: VecDeque::new(),
            latency: 1,
        });
        let mut sys = System::new(ic as Box<dyn Interconnect>, &sets(2, 50, 2));
        let m = sys.run(500);
        // 2 clients × 10 releases × 2 requests = 40.
        assert_eq!(m.issued(), 40);
        assert_eq!(m.completed(), 40);
    }
}
