//! Schedulability analysis on a periodic resource (paper, Section 5).
//!
//! A task set `T_X` is EDF-schedulable on a VE with interface `(Π, Θ)` iff
//! `dbf(t, T_X) ≤ sbf(t, X)` for all `t > 0`. The paper's **Theorem 1**
//! bounds the test to `t < β` with
//!
//! ```text
//! β = (2Θ/Π)(Π − Θ) / (Θ/Π − U_X)
//! ```
//!
//! in addition to the necessary bandwidth condition `Θ/Π > U_X`. Because
//! `dbf` only changes at multiples of task periods while `sbf` is
//! non-decreasing, the test is evaluated at demand change points only.

use crate::demand::dbf_set;
use crate::supply::PeriodicResource;
use crate::task::{Task, TaskSet};
use crate::Time;

/// Upper limit on the number of demand change points a single test may
/// enumerate. Near-zero slack (`Θ/Π → U_X`) makes β explode; beyond this
/// limit the test conservatively reports *unschedulable* rather than stall.
/// This only ever makes interface selection pick a slightly larger budget.
pub const MAX_TEST_POINTS: u64 = 2_000_000;

/// The Theorem 1 test horizon β for `set` on `resource`, or `None` when the
/// bandwidth condition `Θ/Π > U` fails (β would be undefined or negative).
///
/// For implicit deadlines this is the paper's
/// `β = (2Θ/Π)(Π−Θ)/(Θ/Π − U)`. With constrained deadlines the demand
/// bound satisfies `dbf(t) ≤ U·t + K` with `K = Σ Cᵢ(1 − Dᵢ/Tᵢ)`, giving
/// the generalized horizon `β = (K + 2·(Θ/Π)·(Π−Θ)) / (Θ/Π − U)`, which
/// reduces to the paper's expression at `K = 0`.
///
/// A dedicated resource (`Θ = Π`) with implicit deadlines yields
/// `Some(0.0)`: no points need checking because `sbf(t) = t ≥ dbf(t)`
/// always holds when `U ≤ 1`.
pub fn theorem1_bound(set: &TaskSet, resource: &PeriodicResource) -> Option<f64> {
    let bw = resource.bandwidth();
    let u = set.utilization();
    let k = set.density_excess();
    if resource.budget() == resource.period() && k == 0.0 {
        return Some(0.0);
    }
    if bw <= u {
        return None;
    }
    let blackout = (resource.period() - resource.budget()) as f64;
    Some((k + 2.0 * bw * blackout) / (bw - u))
}

/// Exact compositional schedulability test: `dbf(t) ≤ sbf(t)` for all
/// `t < β` evaluated at demand change points (Theorem 1 makes this
/// sufficient for all `t`).
///
/// Returns `false` (conservatively) if the test would require more than
/// [`MAX_TEST_POINTS`] evaluations.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::supply::PeriodicResource;
/// use bluescale_rt::schedulability::is_schedulable;
///
/// let set = TaskSet::new(vec![Task::new(0, 10, 2)?])?;
/// // Half the bandwidth with a short period: plenty.
/// assert!(is_schedulable(&set, &PeriodicResource::new(2, 1).expect("valid")));
/// // A long-period sliver starves the 10-cycle deadline.
/// assert!(!is_schedulable(&set, &PeriodicResource::new(40, 12).expect("valid")));
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn is_schedulable(set: &TaskSet, resource: &PeriodicResource) -> bool {
    DemandCurve::new(set).is_schedulable(resource)
}

/// A memoized demand curve for one task set: the sorted demand change
/// points and the `dbf` value at each, materialized incrementally up to the
/// largest horizon any test has needed so far.
///
/// The interface-selection hot path tests the *same* task set against many
/// `(Π, Θ)` candidates (every budget probed by the binary search, for every
/// candidate period). The demand side of `dbf(t) ≤ sbf(t)` depends only on
/// the task set, so one curve serves the whole search: each test re-uses the
/// cached `(t, dbf(t))` pairs and evaluates only the cheap supply side. The
/// answers are bit-identical to [`is_schedulable`] — this type *is* its
/// implementation.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::supply::PeriodicResource;
/// use bluescale_rt::schedulability::{is_schedulable, DemandCurve};
///
/// let set = TaskSet::new(vec![Task::new(0, 10, 2)?])?;
/// let mut curve = DemandCurve::new(&set);
/// for period in 1..=8u64 {
///     for budget in 1..=period {
///         let r = PeriodicResource::new(period, budget).expect("valid");
///         assert_eq!(curve.is_schedulable(&r), is_schedulable(&set, &r));
///     }
/// }
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
#[derive(Debug, Clone)]
pub struct DemandCurve<'a> {
    set: &'a TaskSet,
    /// Next unmaterialized change point per task (`Dᵢ + k·Tᵢ` cursors).
    cursors: Vec<Time>,
    /// Horizon below which every change point has been materialized.
    horizon: Time,
    /// Sorted, deduplicated change points `< horizon`.
    points: Vec<Time>,
    /// `dbf_set(set, points[i])`, cached alongside.
    demands: Vec<Time>,
    /// Scratch buffer for newly materialized points (kept to avoid
    /// re-allocating on every extension).
    fresh: Vec<Time>,
}

impl<'a> DemandCurve<'a> {
    /// Creates an empty curve for `set`; points materialize on demand.
    pub fn new(set: &'a TaskSet) -> Self {
        Self {
            set,
            cursors: set.iter().map(Task::deadline).collect(),
            horizon: 0,
            points: Vec::new(),
            demands: Vec::new(),
            fresh: Vec::new(),
        }
    }

    /// The task set this curve describes.
    pub fn set(&self) -> &TaskSet {
        self.set
    }

    /// Materializes all change points `< horizon`. New points are strictly
    /// above every cached one (the cursors sit at or beyond the old
    /// horizon), so extension is append-only.
    fn extend_to(&mut self, horizon: Time) {
        if horizon <= self.horizon {
            return;
        }
        self.fresh.clear();
        for (cursor, tau) in self.cursors.iter_mut().zip(self.set.iter()) {
            while *cursor < horizon {
                self.fresh.push(*cursor);
                *cursor += tau.period();
            }
        }
        self.fresh.sort_unstable();
        self.fresh.dedup();
        for &t in &self.fresh {
            self.points.push(t);
            self.demands.push(dbf_set(self.set, t));
        }
        self.horizon = horizon;
    }

    /// The memoized equivalent of [`is_schedulable`]: same Theorem 1 bound,
    /// same conservative [`MAX_TEST_POINTS`] guard, same change points —
    /// the demand side just comes from the cache.
    pub fn is_schedulable(&mut self, resource: &PeriodicResource) -> bool {
        let set = self.set;
        if set.is_empty() {
            return true;
        }
        let Some(beta) = theorem1_bound(set, resource) else {
            return false;
        };
        // Dedicated resource with implicit deadlines: sbf(t) = t ≥ U·t ≥ dbf(t).
        if resource.budget() == resource.period() && set.density_excess() == 0.0 {
            return true;
        }
        let horizon = beta.ceil() as Time;
        // Estimate the number of change points before materializing them.
        let estimated: u64 = set.iter().map(|tau| horizon / tau.period()).sum();
        if estimated > MAX_TEST_POINTS {
            return false;
        }
        self.extend_to(horizon);
        let end = self.points.partition_point(|&t| t < horizon);
        self.points[..end]
            .iter()
            .zip(&self.demands[..end])
            .all(|(&t, &demand)| demand <= resource.sbf(t))
    }
}

/// Brute-force reference test: checks `dbf(t) ≤ sbf(t)` for every integer
/// `t` in `(0, horizon]`. Exists to validate [`is_schedulable`] in tests and
/// property-based checks; not used by the selection algorithm.
pub fn is_schedulable_brute(set: &TaskSet, resource: &PeriodicResource, horizon: Time) -> bool {
    (1..=horizon).all(|t| dbf_set(set, t) <= resource.sbf(t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::Task;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn empty_set_always_schedulable() {
        let r = PeriodicResource::new(100, 1).unwrap();
        assert!(is_schedulable(&TaskSet::empty(), &r));
    }

    #[test]
    fn dedicated_resource_schedules_full_utilization() {
        let s = set(&[(10, 5), (20, 10)]); // U = 1.0
        assert!(is_schedulable(&s, &PeriodicResource::dedicated(1)));
    }

    #[test]
    fn bandwidth_below_utilization_fails() {
        let s = set(&[(10, 5)]); // U = 0.5
        let r = PeriodicResource::new(10, 4).unwrap(); // bw = 0.4
        assert!(!is_schedulable(&s, &r));
        assert!(theorem1_bound(&s, &r).is_none());
    }

    #[test]
    fn bandwidth_equal_to_utilization_fails_for_partial_budget() {
        let s = set(&[(10, 5)]);
        let r = PeriodicResource::new(10, 5).unwrap(); // bw = U = 0.5, Θ<Π
        assert!(!is_schedulable(&s, &r));
    }

    #[test]
    fn short_period_resource_schedules_easily() {
        let s = set(&[(100, 10)]); // U = 0.1
        let r = PeriodicResource::new(4, 1).unwrap(); // bw 0.25, small blackout
        assert!(is_schedulable(&s, &r));
    }

    #[test]
    fn long_blackout_misses_short_deadline() {
        // Task with deadline 10 on a resource whose worst-case blackout is
        // 2(Π−Θ) = 2(40−12) = 56 > 10: must be unschedulable.
        let s = set(&[(10, 2)]);
        let r = PeriodicResource::new(40, 12).unwrap();
        assert!(!is_schedulable(&s, &r));
    }

    #[test]
    fn theorem1_matches_brute_force() {
        // Cross-validate the bounded test against a long brute-force scan.
        let sets = [
            set(&[(10, 2), (15, 3)]),
            set(&[(8, 1), (12, 2), (20, 5)]),
            set(&[(5, 1)]),
            set(&[(30, 10), (40, 5)]),
        ];
        let resources = [
            PeriodicResource::new(2, 1).unwrap(),
            PeriodicResource::new(5, 2).unwrap(),
            PeriodicResource::new(5, 3).unwrap(),
            PeriodicResource::new(10, 6).unwrap(),
            PeriodicResource::new(4, 4).unwrap(),
        ];
        for s in &sets {
            for r in &resources {
                let fast = is_schedulable(s, r);
                let brute = is_schedulable_brute(s, r, 5_000);
                assert_eq!(
                    fast, brute,
                    "mismatch for set {s:?} on resource {r:?} (fast={fast}, brute={brute})"
                );
            }
        }
    }

    #[test]
    fn theorem1_bound_formula() {
        let s = set(&[(10, 2)]); // U = 0.2
        let r = PeriodicResource::new(10, 4).unwrap(); // bw = 0.4, blackout = 6
                                                       // β = 2·0.4·6 / (0.4 − 0.2) = 4.8/0.2 = 24.
        let beta = theorem1_bound(&s, &r).unwrap();
        assert!((beta - 24.0).abs() < 1e-9, "beta = {beta}");
    }

    #[test]
    fn schedulability_monotone_in_budget() {
        let s = set(&[(12, 3), (20, 4)]);
        let period = 6;
        let mut was_schedulable = false;
        for budget in 1..=period {
            let r = PeriodicResource::new(period, budget).unwrap();
            let now = is_schedulable(&s, &r);
            assert!(
                !was_schedulable || now,
                "schedulability must be monotone in Θ (Θ={budget})"
            );
            was_schedulable = now;
        }
        assert!(was_schedulable, "full budget must schedule U<1 set");
    }

    #[test]
    fn constrained_deadline_tightens_the_test() {
        // Same (T, C), but the deadline shrinks: the resource that was
        // sufficient for the implicit-deadline task no longer is.
        let implicit = set(&[(20, 4)]);
        let constrained = TaskSet::new(vec![Task::with_deadline(0, 20, 8, 4).unwrap()]).unwrap();
        let r = PeriodicResource::new(10, 4).unwrap();
        assert!(is_schedulable(&implicit, &r));
        assert!(!is_schedulable(&constrained, &r));
        // A finer-grained (higher-bandwidth) resource recovers it.
        let fine = PeriodicResource::new(4, 3).unwrap();
        assert!(is_schedulable(&constrained, &fine));
    }

    #[test]
    fn constrained_matches_brute_force() {
        let sets = [
            TaskSet::new(vec![Task::with_deadline(0, 20, 10, 3).unwrap()]).unwrap(),
            TaskSet::new(vec![
                Task::with_deadline(0, 12, 6, 2).unwrap(),
                Task::with_deadline(1, 30, 15, 4).unwrap(),
            ])
            .unwrap(),
        ];
        let resources = [
            PeriodicResource::new(3, 1).unwrap(),
            PeriodicResource::new(5, 2).unwrap(),
            PeriodicResource::new(8, 5).unwrap(),
            PeriodicResource::new(6, 6).unwrap(),
        ];
        for s in &sets {
            for r in &resources {
                assert_eq!(
                    is_schedulable(s, r),
                    is_schedulable_brute(s, r, 3_000),
                    "mismatch for {s:?} on {r:?}"
                );
            }
        }
    }

    #[test]
    fn dedicated_resource_with_constrained_deadlines_tested_exactly() {
        // U = 1 with constrained deadlines cannot fit: two tasks demand 10
        // units by t = 5.
        let s = TaskSet::new(vec![
            Task::with_deadline(0, 10, 5, 5).unwrap(),
            Task::with_deadline(1, 10, 5, 5).unwrap(),
        ])
        .unwrap();
        assert!(!is_schedulable(&s, &PeriodicResource::dedicated(1)));
        // A single constrained task at U < 1 fits on a dedicated resource.
        let ok = TaskSet::new(vec![Task::with_deadline(0, 10, 5, 3).unwrap()]).unwrap();
        assert!(is_schedulable(&ok, &PeriodicResource::dedicated(1)));
    }

    #[test]
    fn degenerate_huge_beta_is_conservative() {
        // Bandwidth barely above U with tiny periods → estimated points
        // explode; the test must return false, not hang.
        let s = set(&[(2, 1)]); // U = 0.5
        let r = PeriodicResource::new(1_000_000_000, 500_000_001).unwrap();
        assert!(!is_schedulable(&s, &r));
    }
}
