//! Property-based tests of the workload crate: generator bounds and
//! parser robustness (failure injection — arbitrary input must never
//! panic the parser).

use bluescale_sim::rng::SimRng;
use bluescale_workload::casestudy::{generate as gen_cs, CaseStudyConfig};
use bluescale_workload::file;
use bluescale_workload::synthetic::{generate as gen_syn, SyntheticConfig};
use bluescale_workload::total_utilization;
use proptest::prelude::*;

proptest! {
    /// Arbitrary bytes: the parser returns an error or a valid workload —
    /// it never panics.
    #[test]
    fn parser_never_panics(input in ".{0,400}") {
        let _ = file::from_str(&input);
    }

    /// Structured-ish garbage built from the format's own keywords.
    #[test]
    fn parser_survives_keyword_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "client", "task", "period", "deadline", "wcet", "0", "1",
                "99999999999999999999", "-3", "x", "\n", "# c",
            ]),
            0..60,
        ),
    ) {
        let mut text = String::from("# bluescale workload v1\n");
        for w in words {
            text.push_str(w);
            text.push(' ');
        }
        let _ = file::from_str(&text);
    }

    /// Every parsed workload round-trips: parse(render(w)) == w.
    #[test]
    fn generated_workloads_round_trip(seed in any::<u64>(), clients in 1usize..32) {
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(clients), &mut rng);
        let text = file::to_string(&sets);
        prop_assert_eq!(file::from_str(&text).expect("own output parses"), sets);
    }

    /// Synthetic generation respects its utilization band (with rounding
    /// slack) for arbitrary seeds.
    #[test]
    fn synthetic_utilization_in_band(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_syn(&SyntheticConfig::fig6(16), &mut rng);
        let u = total_utilization(&sets);
        prop_assert!(u > 0.5 && u < 1.05, "utilization {u}");
    }

    /// Case-study generation hits its target within tolerance for
    /// arbitrary seeds and targets.
    #[test]
    fn case_study_hits_target(seed in any::<u64>(), decile in 3u32..9) {
        let target = decile as f64 / 10.0;
        let mut rng = SimRng::seed_from(seed);
        let sets = gen_cs(&CaseStudyConfig::fig7(16, target), &mut rng);
        let u = total_utilization(&sets);
        prop_assert!((u - target).abs() < 0.15, "target {target}, got {u}");
    }
}
