//! Extension experiment: *scheduling* scalability at a fixed clock.
//!
//! The paper's hardware-scalability argument (Fig 5) is about synthesis:
//! a centralized arbiter's critical path grows with the port count. This
//! experiment adds the behavioural side: with the client count scaling
//! 4 → 256 at a constant per-client load, how do latency and deadline
//! misses evolve for the centralized AXI-IC^RT (whose admission
//! serializes and whose arbitration pipeline deepens) versus the
//! distributed BlueScale (one extra tree level per 4× clients)?

use crate::runner::{run_trial, InterconnectKind};
use bluescale::{BlueScaleConfig, BlueScaleInterconnect, ShardedSystem};
use bluescale_interconnect::system::System;
use bluescale_sim::rng::SimRng;
use bluescale_sim::stats::OnlineStats;
use bluescale_sim::Cycle;
use bluescale_workload::synthetic::SyntheticConfig;
use std::time::Instant;

/// Configuration of the scalability sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityConfig {
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Total interconnect utilization (held constant across sizes).
    pub utilization: f64,
    /// Trials per point.
    pub trials: u64,
    /// Horizon per trial.
    pub horizon: Cycle,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScalabilityConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![4, 16, 64, 256],
            utilization: 0.6,
            trials: 15,
            horizon: 20_000,
            seed: 0x5CA1E,
        }
    }
}

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalabilityPoint {
    /// Number of clients.
    pub clients: usize,
    /// Mean end-to-end latency (cycles) per interconnect, in
    /// [`InterconnectKind::EXTENDED`] order.
    pub latency: Vec<f64>,
    /// Mean deadline-miss ratio per interconnect.
    pub miss_ratio: Vec<f64>,
}

/// Direct uniform constructor: every client carries exactly
/// `utilization / clients` in a single task with a period drawn from
/// `[period_min, period_max]`. No UUniFast split and no per-client
/// utilization floor, so large sweep points stay at the target instead of
/// being silently densified by [`SyntheticConfig::util_floor`]-style
/// clamping (the scalability sweep's 256-client points were exactly the
/// regime the old fixed floor distorted).
pub fn uniform_task_sets(
    clients: usize,
    utilization: f64,
    period_min: u64,
    period_max: u64,
    rng: &mut SimRng,
) -> Vec<bluescale_rt::task::TaskSet> {
    use bluescale_rt::task::{Task, TaskSet};
    let share = utilization / clients as f64;
    (0..clients)
        .map(|_| {
            // Draw only periods long enough that the share maps to an
            // integer WCET ≥ 1, so rounding cannot inflate the share.
            let lo = period_min.max((1.0 / share).ceil() as u64);
            let (period, wcet) = if lo > period_max {
                // Share too small for the period range: one unit of work
                // at the longest period is the closest expressible task.
                (period_max, 1)
            } else {
                let period = rng.range_u64(lo, period_max + 1);
                (period, (share * period as f64).round().max(1.0) as u64)
            };
            let task = Task::new(0, period, wcet).expect("uniform task is valid");
            TaskSet::new(vec![task]).expect("single uniform task is admissible")
        })
        .collect()
}

/// Runs the sweep.
pub fn run(config: &ScalabilityConfig) -> Vec<ScalabilityPoint> {
    let mut master = SimRng::seed_from(config.seed);
    let fig6 = SyntheticConfig::fig6(1);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut latency = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            let mut miss = vec![OnlineStats::new(); InterconnectKind::EXTENDED.len()];
            for _ in 0..config.trials {
                let mut rng = master.fork();
                let sets = uniform_task_sets(
                    clients,
                    config.utilization,
                    fig6.period_min,
                    fig6.period_max,
                    &mut rng,
                );
                for (i, kind) in InterconnectKind::EXTENDED.into_iter().enumerate() {
                    let m = run_trial(kind, &sets, config.horizon);
                    latency[i].push(m.mean_latency());
                    miss[i].push(m.miss_ratio());
                }
            }
            ScalabilityPoint {
                clients,
                latency: latency.iter().map(OnlineStats::mean).collect(),
                miss_ratio: miss.iter().map(OnlineStats::mean).collect(),
            }
        })
        .collect()
}

/// Renders both panels (latency, miss ratio) as markdown tables.
pub fn render(config: &ScalabilityConfig, points: &[ScalabilityPoint]) -> String {
    let mut s = format!(
        "# Extension: scheduling scalability at fixed clock \
         (U = {:.2}, {} trials/point)\n\n## Mean latency (cycles)\n\n",
        config.utilization, config.trials
    );
    let header = |s: &mut String| {
        s.push_str("| Clients |");
        for k in InterconnectKind::EXTENDED {
            s.push_str(&format!(" {} |", k.name()));
        }
        s.push_str("\n|---:|");
        for _ in InterconnectKind::EXTENDED {
            s.push_str("---:|");
        }
        s.push('\n');
    };
    header(&mut s);
    for p in points {
        s.push_str(&format!("| {} |", p.clients));
        for v in &p.latency {
            s.push_str(&format!(" {v:.1} |"));
        }
        s.push('\n');
    }
    s.push_str("\n## Deadline miss ratio\n\n");
    header(&mut s);
    for p in points {
        s.push_str(&format!("| {} |", p.clients));
        for v in &p.miss_ratio {
            s.push_str(&format!(" {:.1}% |", 100.0 * v));
        }
        s.push('\n');
    }
    s
}

/// Configuration of the fast-forward speedup sweep
/// (`results/BENCH_fastforward.json`).
///
/// The workload is deliberately *sparse* — one long-period task per client
/// issuing `demand` requests per job — because that is the regime the
/// next-event fast path exists for: long provably-idle stretches between
/// releases that per-cycle stepping burns wall-clock on. Periods scale
/// with the client count so the aggregate release rate (and therefore the
/// fabric's duty cycle) stays roughly constant across sweep sizes; the
/// synthetic-generator path is *not* used here because its per-client
/// utilization floor would silently densify large points.
#[derive(Debug, Clone, PartialEq)]
pub struct FastForwardConfig {
    /// Client counts to sweep.
    pub client_counts: Vec<usize>,
    /// Memory requests per job (the task's `wcet` in the demand model).
    pub demand: u64,
    /// Master seed.
    pub seed: u64,
    /// Fixed horizon for every point (tests); `None` scales the horizon
    /// with the client count via [`fastforward_horizon`].
    pub horizon_override: Option<Cycle>,
}

impl Default for FastForwardConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![4, 16, 64, 256, 1024, 4096],
            demand: 2,
            seed: 0xFF5CA1E,
            horizon_override: None,
        }
    }
}

/// The sparse workload: one task per client with a period drawn from
/// `[100n, 300n)` cycles for `n` clients, each job issuing `demand`
/// requests. Scaling periods with `n` keeps the *total* utilization
/// (`n × demand / period ≈ demand / 200`) constant across sweep sizes,
/// which a fixed-period fig6-style draw cannot do once per-client
/// utilization hits the generator's floor.
pub fn sparse_task_sets(
    clients: usize,
    demand: u64,
    rng: &mut SimRng,
) -> Vec<bluescale_rt::task::TaskSet> {
    use bluescale_rt::task::{Task, TaskSet};
    let n = clients as u64;
    (0..clients)
        .map(|_| {
            let period = 100 * n + rng.range_u64(0, 200 * n);
            let task = Task::new(0, period, demand).expect("sparse task is valid");
            TaskSet::new(vec![task]).expect("single sparse task is admissible")
        })
        .collect()
}

/// Horizon for one sweep point: two full longest-period windows of the
/// scaled workload, floored so tiny points still see steady state.
pub fn fastforward_horizon(clients: usize) -> Cycle {
    (600 * clients as u64).max(20_000)
}

/// One point of the fast-forward speedup sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FastForwardPoint {
    /// Number of clients.
    pub clients: usize,
    /// Simulated horizon in cycles.
    pub horizon: Cycle,
    /// Wall-clock of the per-cycle (oracle) run, nanoseconds.
    pub percycle_ns: u128,
    /// Wall-clock of the fast-forward run, nanoseconds.
    pub fastforward_ns: u128,
    /// Number of jumps the fast path took.
    pub jumps: u64,
    /// Cycles skipped (never individually stepped).
    pub skipped: u64,
    /// Requests completed (identical across modes by construction).
    pub completed: u64,
    /// Whether the two modes produced bit-identical run metrics.
    pub verified: bool,
}

impl FastForwardPoint {
    /// Wall-clock speedup of fast-forward over per-cycle stepping.
    pub fn speedup(&self) -> f64 {
        self.percycle_ns as f64 / self.fastforward_ns.max(1) as f64
    }

    /// Fraction of the horizon covered by jumps instead of steps.
    pub fn skipped_ratio(&self) -> f64 {
        self.skipped as f64 / self.horizon as f64
    }
}

fn bluescale_system(sets: &[bluescale_rt::task::TaskSet]) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, sets).expect("sparse workload is admissible");
    System::new(Box::new(ic), sets)
}

/// Runs the fast-forward speedup sweep.
///
/// Every point runs the same seeded workload twice — per-cycle (the
/// oracle) and fast-forward — and **panics** if any externally visible
/// metric differs: the sweep doubles as an end-to-end differential check
/// at every size, not just the small ones the integration tests cover.
pub fn run_fastforward(config: &FastForwardConfig) -> Vec<FastForwardPoint> {
    let mut master = SimRng::seed_from(config.seed);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut rng = master.fork();
            let sets = sparse_task_sets(clients, config.demand, &mut rng);
            let horizon = config
                .horizon_override
                .unwrap_or_else(|| fastforward_horizon(clients));

            let mut slow = bluescale_system(&sets);
            slow.set_fast_forward(false);
            let t0 = Instant::now();
            let mut slow_m = slow.run(horizon);
            let percycle_ns = t0.elapsed().as_nanos();

            let mut fast = bluescale_system(&sets);
            fast.set_fast_forward(true);
            let t1 = Instant::now();
            let mut fast_m = fast.run(horizon);
            let fastforward_ns = t1.elapsed().as_nanos();

            let verified = (slow_m.issued(), slow_m.completed(), slow_m.missed())
                == (fast_m.issued(), fast_m.completed(), fast_m.missed())
                && slow_m.backlog() == fast_m.backlog()
                && slow_m.latency().as_slice() == fast_m.latency().as_slice()
                && slow_m.blocking().as_slice() == fast_m.blocking().as_slice();
            assert!(
                verified,
                "fast-forward diverged from per-cycle at {clients} clients"
            );
            assert_eq!(slow.fast_forward_jumps(), 0, "the oracle must not jump");

            FastForwardPoint {
                clients,
                horizon,
                percycle_ns,
                fastforward_ns,
                jumps: fast.fast_forward_jumps(),
                skipped: fast.fast_forwarded_cycles(),
                completed: fast_m.completed(),
                verified,
            }
        })
        .collect()
}

/// Renders the sweep as the `BENCH_fastforward.json` artefact
/// (hand-rolled JSON; the container has no serde).
pub fn render_fastforward_json(config: &FastForwardConfig, points: &[FastForwardPoint]) -> String {
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"fastforward\",\n",
            "  \"unit\": \"ns\",\n",
            "  \"demand_per_job\": {},\n",
            "  \"seed\": {},\n",
            "  \"points\": [\n",
        ),
        config.demand, config.seed
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"clients\": {},\n",
                "      \"horizon\": {},\n",
                "      \"percycle_ns\": {},\n",
                "      \"fastforward_ns\": {},\n",
                "      \"speedup\": {:.2},\n",
                "      \"jumps\": {},\n",
                "      \"skipped_cycles\": {},\n",
                "      \"skipped_ratio\": {:.4},\n",
                "      \"completed\": {},\n",
                "      \"verified\": {}\n",
                "    }}{}\n",
            ),
            p.clients,
            p.horizon,
            p.percycle_ns,
            p.fastforward_ns,
            p.speedup(),
            p.jumps,
            p.skipped,
            p.skipped_ratio(),
            p.completed,
            p.verified,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the sweep as a human-readable table for stdout.
pub fn render_fastforward_table(points: &[FastForwardPoint]) -> String {
    let mut s = String::from(
        "| Clients | Horizon | Per-cycle (ms) | Fast-forward (ms) | Speedup | Skipped |\n\
         |---:|---:|---:|---:|---:|---:|\n",
    );
    for p in points {
        s.push_str(&format!(
            "| {} | {} | {:.1} | {:.1} | {:.2}x | {:.1}% |\n",
            p.clients,
            p.horizon,
            p.percycle_ns as f64 / 1e6,
            p.fastforward_ns as f64 / 1e6,
            p.speedup(),
            100.0 * p.skipped_ratio(),
        ));
    }
    s
}

/// Configuration of the sharded-execution scaling sweep
/// (`results/BENCH_shards.json`).
///
/// The workload is deliberately *busy* — every client releases its first
/// job at `t = 0` into its own dedicated leaf port, so the fabric drains
/// at its full one-request-per-cycle root bandwidth for the whole
/// horizon. That is the regime sharding exists for: per-cycle stepping
/// dominated by the client loop and the per-subtree SE arrays, which the
/// workers split four ways. Periods scale with the client count
/// (`[n, 4n]`) so each point sees exactly one synchronous release and
/// the per-cycle cost stays workload-independent after the first cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardSweepConfig {
    /// Client counts to sweep (the headline sweep runs 65k → 1M).
    pub client_counts: Vec<usize>,
    /// Worker counts to compare at every point (clamped to the branch
    /// factor by [`ShardedSystem`]; the clamp is recorded per run).
    pub worker_counts: Vec<usize>,
    /// Total fabric utilization of the uniform workload.
    pub utilization: f64,
    /// Master seed.
    pub seed: u64,
    /// Fixed horizon for every point (tests); `None` scales the horizon
    /// inversely with the client count via [`shard_horizon`].
    pub horizon_override: Option<Cycle>,
}

impl Default for ShardSweepConfig {
    fn default() -> Self {
        Self {
            client_counts: vec![65_536, 131_072, 262_144, 524_288, 1_048_576],
            worker_counts: vec![1, 2, 4, 8],
            utilization: 0.9,
            seed: 0x5AA2D,
            horizon_override: None,
        }
    }
}

/// Horizon for one shard-sweep point: roughly constant *work* per point
/// (`clients × horizon ≈ 2^28` client-cycles), floored so the largest
/// points still time a meaningful stretch.
pub fn shard_horizon(clients: usize) -> Cycle {
    ((1u64 << 28) / clients as u64).max(256)
}

/// One timed run of a shard-sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardRun {
    /// Worker count requested by the sweep.
    pub workers: usize,
    /// Worker count actually used (after the branch-factor clamp).
    pub effective_workers: usize,
    /// Wall-clock of `run(horizon)`, nanoseconds (construction excluded).
    pub wall_ns: u128,
}

/// One point of the sharded-execution scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardPoint {
    /// Number of clients.
    pub clients: usize,
    /// Simulated horizon in cycles.
    pub horizon: Cycle,
    /// Timed runs, one per requested worker count.
    pub runs: Vec<ShardRun>,
    /// Requests issued (identical across worker counts by construction).
    pub issued: u64,
    /// Requests completed (identical across worker counts).
    pub completed: u64,
    /// Whether every worker count produced identical run metrics and
    /// latency samples.
    pub verified: bool,
}

impl ShardPoint {
    /// Wall-clock speedup of the given run over the one-worker run.
    pub fn speedup(&self, run: &ShardRun) -> f64 {
        let base = self
            .runs
            .iter()
            .find(|r| r.workers == 1)
            .map(|r| r.wall_ns)
            .unwrap_or(run.wall_ns);
        base as f64 / run.wall_ns.max(1) as f64
    }
}

/// One analysis interconnect per sweep point: interface selection
/// dominates construction at 65k+ clients and depends only on the
/// workload, so the worker-count comparison clones it instead of paying
/// it once per worker count.
fn shard_analysis(sets: &[bluescale_rt::task::TaskSet]) -> BlueScaleInterconnect {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    config.soa_core = false;
    BlueScaleInterconnect::new(config, sets).expect("busy uniform workload builds")
}

fn sharded_system(
    sets: &[bluescale_rt::task::TaskSet],
    analysis: &BlueScaleInterconnect,
    workers: usize,
) -> ShardedSystem {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    config.soa_core = true;
    ShardedSystem::with_analysis(config, analysis.clone(), sets, workers)
}

/// Runs the sharded-execution scaling sweep.
///
/// Every worker count replays the same seeded workload and **panics** if
/// issued/completed/missed/backlog or the latency-sample sequence
/// differs: the sweep doubles as the worker-count determinism check at
/// sizes the differential tests cannot afford, pinning that the worker
/// count is a pure wall-clock knob all the way to the 2^20-client point.
pub fn run_shards(config: &ShardSweepConfig) -> Vec<ShardPoint> {
    let mut master = SimRng::seed_from(config.seed);
    config
        .client_counts
        .iter()
        .map(|&clients| {
            let mut rng = master.fork();
            let n = clients as u64;
            let sets = uniform_task_sets(clients, config.utilization, n, 4 * n, &mut rng);
            let horizon = config
                .horizon_override
                .unwrap_or_else(|| shard_horizon(clients));
            let analysis = shard_analysis(&sets);

            let mut runs = Vec::new();
            let mut reference: Option<(u64, u64, u64, u64, Vec<f64>)> = None;
            let mut verified = true;
            for &workers in &config.worker_counts {
                let mut sys = sharded_system(&sets, &analysis, workers);
                let t = Instant::now();
                let mut m = sys.run(horizon);
                let wall_ns = t.elapsed().as_nanos();
                let fingerprint = (
                    m.issued(),
                    m.completed(),
                    m.missed(),
                    m.backlog(),
                    m.latency().as_slice().to_vec(),
                );
                match &reference {
                    None => reference = Some(fingerprint),
                    Some(expected) => {
                        verified &= *expected == fingerprint;
                        assert_eq!(
                            *expected, fingerprint,
                            "sharded run diverged at {clients} clients / {workers} workers"
                        );
                    }
                }
                runs.push(ShardRun {
                    workers,
                    effective_workers: sys.workers(),
                    wall_ns,
                });
            }
            let (issued, completed, ..) = reference.expect("at least one worker count ran");
            ShardPoint {
                clients,
                horizon,
                runs,
                issued,
                completed,
                verified,
            }
        })
        .collect()
}

/// Renders the sweep as the `BENCH_shards.json` artefact (hand-rolled
/// JSON; the container has no serde). `host_cpus` records the
/// parallelism actually available to the run — wall-clock speedup is a
/// hardware property, unlike the `verified` determinism bit.
pub fn render_shards_json(config: &ShardSweepConfig, points: &[ShardPoint]) -> String {
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut s = format!(
        concat!(
            "{{\n",
            "  \"benchmark\": \"shards\",\n",
            "  \"unit\": \"ns\",\n",
            "  \"utilization\": {:.2},\n",
            "  \"seed\": {},\n",
            "  \"host_cpus\": {},\n",
            "  \"points\": [\n",
        ),
        config.utilization, config.seed, host_cpus
    );
    for (i, p) in points.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"clients\": {},\n",
                "      \"horizon\": {},\n",
                "      \"issued\": {},\n",
                "      \"completed\": {},\n",
                "      \"verified\": {},\n",
                "      \"runs\": [\n",
            ),
            p.clients, p.horizon, p.issued, p.completed, p.verified,
        ));
        for (j, r) in p.runs.iter().enumerate() {
            s.push_str(&format!(
                concat!(
                    "        {{ \"workers\": {}, \"effective_workers\": {}, ",
                    "\"wall_ns\": {}, \"speedup\": {:.2} }}{}\n",
                ),
                r.workers,
                r.effective_workers,
                r.wall_ns,
                p.speedup(r),
                if j + 1 < p.runs.len() { "," } else { "" },
            ));
        }
        s.push_str(&format!(
            "      ]\n    }}{}\n",
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the shard sweep as a human-readable table for stdout.
pub fn render_shards_table(points: &[ShardPoint]) -> String {
    let mut s = String::from(
        "| Clients | Horizon | Workers | Wall (ms) | Speedup | Verified |\n\
         |---:|---:|---:|---:|---:|---:|\n",
    );
    for p in points {
        for r in &p.runs {
            s.push_str(&format!(
                "| {} | {} | {} ({}) | {:.1} | {:.2}x | {} |\n",
                p.clients,
                p.horizon,
                r.workers,
                r.effective_workers,
                r.wall_ns as f64 / 1e6,
                p.speedup(r),
                p.verified,
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ScalabilityConfig {
        ScalabilityConfig {
            client_counts: vec![4, 16],
            utilization: 0.5,
            trials: 2,
            horizon: 8_000,
            seed: 1,
        }
    }

    #[test]
    fn sweep_covers_requested_sizes() {
        let pts = run(&tiny());
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0].clients, 4);
        assert_eq!(pts[1].clients, 16);
        assert!(pts.iter().all(|p| p.latency.len() == 7));
    }

    #[test]
    fn latencies_are_positive_under_load() {
        let pts = run(&tiny());
        for p in &pts {
            for &l in &p.latency {
                assert!(l > 0.0, "latency must be positive at {} clients", p.clients);
            }
        }
    }

    #[test]
    fn render_has_both_panels() {
        let cfg = tiny();
        let text = render(&cfg, &run(&cfg));
        assert!(text.contains("Mean latency"));
        assert!(text.contains("miss ratio"));
    }

    #[test]
    fn uniform_sets_hit_the_target_without_densification() {
        // The direct constructor must land on the target utilization at
        // every sweep size — including 256 clients, where the generator's
        // old fixed floor used to densify the workload.
        let mut rng = SimRng::seed_from(77);
        for clients in [4, 64, 256] {
            let sets = uniform_task_sets(clients, 0.6, 200, 4000, &mut rng);
            assert_eq!(sets.len(), clients);
            let u: f64 = sets
                .iter()
                .flat_map(|s| s.iter())
                .map(|t| t.wcet() as f64 / t.period() as f64)
                .sum();
            assert!(
                (u - 0.6).abs() < 0.05,
                "{clients} clients: realized utilization {u} off target"
            );
        }
    }

    #[test]
    fn fastforward_sweep_verifies_and_skips() {
        let cfg = FastForwardConfig {
            client_counts: vec![4, 16],
            horizon_override: Some(10_000),
            ..Default::default()
        };
        let pts = run_fastforward(&cfg);
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.verified, "{} clients must verify", p.clients);
            assert!(p.jumps > 0, "{} clients: sparse run must jump", p.clients);
            assert!(
                p.skipped_ratio() > 0.2,
                "{} clients: too few skips",
                p.clients
            );
            assert!(p.completed > 0);
        }
    }

    #[test]
    fn shard_sweep_is_deterministic_across_worker_counts() {
        let cfg = ShardSweepConfig {
            client_counts: vec![64],
            worker_counts: vec![1, 2, 4, 8],
            horizon_override: Some(4_000),
            ..Default::default()
        };
        let pts = run_shards(&cfg);
        assert_eq!(pts.len(), 1);
        let p = &pts[0];
        assert!(p.verified, "worker counts must agree");
        assert!(p.completed > 0, "the busy workload must complete requests");
        assert_eq!(p.runs.len(), 4);
        let effective: Vec<usize> = p.runs.iter().map(|r| r.effective_workers).collect();
        assert_eq!(
            effective,
            vec![1, 2, 4, 4],
            "8 workers clamp to the branch factor"
        );
    }

    #[test]
    fn shards_json_is_well_formed() {
        let cfg = ShardSweepConfig {
            client_counts: vec![16],
            worker_counts: vec![1, 2],
            horizon_override: Some(2_000),
            ..Default::default()
        };
        let pts = run_shards(&cfg);
        let json = render_shards_json(&cfg, &pts);
        assert!(json.contains("\"benchmark\": \"shards\""));
        assert!(json.contains("\"verified\": true"));
        assert!(json.contains("\"host_cpus\""));
        assert_eq!(json.matches("\"wall_ns\"").count(), 2);
        let table = render_shards_table(&pts);
        assert!(table.contains("Speedup"));
    }

    #[test]
    fn uniform_sets_survive_the_million_client_boundary() {
        // The largest sweep point (2^20 clients) crosses every
        // narrow-width hazard this sweep has hit before: client ids used
        // to wrap at the u16 boundary and the old 48-bit request-id
        // packing collided. Pin the full-width path — set construction,
        // realized utilization and id disjointness — without paying for
        // a full system build.
        let mut rng = SimRng::seed_from(9);
        let clients = 1usize << 20;
        let n = clients as u64;
        let sets = uniform_task_sets(clients, 0.9, n, 4 * n, &mut rng);
        assert_eq!(sets.len(), clients);
        let u: f64 = sets
            .iter()
            .flat_map(|s| s.iter())
            .map(|t| t.wcet() as f64 / t.period() as f64)
            .sum();
        assert!(
            (u - 0.9).abs() < 0.05,
            "realized utilization {u} off target at the 1M point"
        );
        assert!(
            sets.iter().flat_map(|s| s.iter()).all(|t| t.period() >= n),
            "periods must exceed the sweep horizon so the release is synchronous"
        );

        use bluescale_interconnect::client::TrafficGenerator;
        let hi = (clients - 1) as u32;
        let mut first = TrafficGenerator::new(0, &sets[0]);
        let mut last = TrafficGenerator::new(hi, &sets[clients - 1]);
        first.on_cycle(0);
        last.on_cycle(0);
        let a = first.take().expect("client 0 releases at t = 0");
        let b = last.take().expect("client 2^20 - 1 releases at t = 0");
        assert_eq!(b.client, hi, "client ids must survive the u16 boundary");
        assert_ne!(
            a.id, b.id,
            "request ids from distinct clients must not collide"
        );
    }

    #[test]
    fn fastforward_json_is_well_formed() {
        let cfg = FastForwardConfig {
            client_counts: vec![4],
            horizon_override: Some(6_000),
            ..Default::default()
        };
        let pts = run_fastforward(&cfg);
        let json = render_fastforward_json(&cfg, &pts);
        assert!(json.contains("\"benchmark\": \"fastforward\""));
        assert!(json.contains("\"verified\": true"));
        assert_eq!(json.matches("\"clients\"").count(), 1);
        let table = render_fastforward_table(&pts);
        assert!(table.contains("Speedup"));
    }
}
