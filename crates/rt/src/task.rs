//! Periodic tasks and task sets.
//!
//! A task `τᵢ = (Tᵢ, Cᵢ)` releases a job every `Tᵢ` time units; each job
//! demands `Cᵢ` units of transaction time and must finish by its implicit
//! deadline `Tᵢ` after release. At the leaf level of BlueScale these are the
//! *local tasks* fixed by the application designer; at inner levels they are
//! server tasks with `T = Π` and `C = Θ` (paper, Section 5 footnote 1).

use crate::{Error, Time};
use std::collections::HashSet;

/// A periodic task, implicit-deadline by default (`D = T`) with optional
/// constrained deadlines (`C ≤ D ≤ T`).
///
/// Constrained deadlines are how the BlueScale composition reserves
/// end-to-end slack: each level analyses its tasks against deflated
/// deadlines so the remaining pipeline stages have time to deliver.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::Task;
///
/// let tau = Task::new(0, 100, 25)?;
/// assert!((tau.utilization() - 0.25).abs() < 1e-12);
/// assert_eq!(tau.deadline(), 100);
/// let tight = Task::with_deadline(1, 100, 80, 25)?;
/// assert_eq!(tight.deadline(), 80);
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Task {
    id: u32,
    period: Time,
    deadline: Time,
    wcet: Time,
}

impl Task {
    /// Creates an implicit-deadline task (`D = T`) with identifier `id`,
    /// period `period` and worst-case execution time `wcet`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTask`] if `period == 0`, `wcet == 0` or
    /// `wcet > period` (a single task may not exceed full utilization).
    pub fn new(id: u32, period: Time, wcet: Time) -> Result<Self, Error> {
        Self::with_deadline(id, period, period, wcet)
    }

    /// Creates a constrained-deadline task with `C ≤ D ≤ T`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidTask`] on `period == 0`, `wcet == 0`,
    /// `wcet > deadline` or `deadline > period`.
    pub fn with_deadline(id: u32, period: Time, deadline: Time, wcet: Time) -> Result<Self, Error> {
        if period == 0 {
            return Err(Error::InvalidTask {
                id,
                reason: "period must be positive",
            });
        }
        if wcet == 0 {
            return Err(Error::InvalidTask {
                id,
                reason: "execution time must be positive",
            });
        }
        if deadline > period {
            return Err(Error::InvalidTask {
                id,
                reason: "deadline must not exceed period",
            });
        }
        if wcet > deadline {
            return Err(Error::InvalidTask {
                id,
                reason: "execution time must not exceed deadline",
            });
        }
        Ok(Self {
            id,
            period,
            deadline,
            wcet,
        })
    }

    /// Task identifier (unique within a [`TaskSet`]).
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Period `T`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// Relative deadline `D` (equals `T` for implicit-deadline tasks).
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Worst-case execution time `C`.
    pub fn wcet(&self) -> Time {
        self.wcet
    }

    /// Utilization `u = C / T`.
    pub fn utilization(&self) -> f64 {
        self.wcet as f64 / self.period as f64
    }

    /// Density-excess term `C·(1 − D/T)`, the per-task contribution to the
    /// constrained-deadline test-horizon constant `K` (zero for implicit
    /// deadlines).
    pub fn density_excess(&self) -> f64 {
        self.wcet as f64 * (1.0 - self.deadline as f64 / self.period as f64)
    }
}

/// An immutable collection of periodic tasks with unique identifiers.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
///
/// let set = TaskSet::new(vec![Task::new(0, 10, 1)?, Task::new(1, 20, 4)?])?;
/// assert!((set.utilization() - 0.3).abs() < 1e-12);
/// assert_eq!(set.min_period(), Some(10));
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TaskSet {
    tasks: Vec<Task>,
}

impl TaskSet {
    /// Creates a task set from `tasks`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::DuplicateTaskId`] if two tasks share an id, or
    /// [`Error::Overutilized`] if total utilization exceeds 1 (such a set can
    /// never be schedulable on any interface, so it is rejected eagerly).
    pub fn new(tasks: Vec<Task>) -> Result<Self, Error> {
        let mut seen = HashSet::new();
        for t in &tasks {
            if !seen.insert(t.id()) {
                return Err(Error::DuplicateTaskId { id: t.id() });
            }
        }
        let set = Self { tasks };
        let u = set.utilization();
        if u > 1.0 + 1e-9 {
            return Err(Error::Overutilized {
                utilization_millis: (u * 1000.0).round() as u64,
            });
        }
        Ok(set)
    }

    /// Creates an empty task set (zero demand; trivially schedulable).
    pub fn empty() -> Self {
        Self::default()
    }

    /// The tasks in this set.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Number of tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// Whether the set contains no tasks.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Iterates over the tasks.
    pub fn iter(&self) -> std::slice::Iter<'_, Task> {
        self.tasks.iter()
    }

    /// Total utilization `U = Σ Cᵢ/Tᵢ`.
    pub fn utilization(&self) -> f64 {
        self.tasks.iter().map(Task::utilization).sum()
    }

    /// The smallest period in the set; `None` when empty.
    pub fn min_period(&self) -> Option<Time> {
        self.tasks.iter().map(Task::period).min()
    }

    /// The smallest relative deadline in the set; `None` when empty. Used
    /// by Theorem 2 to bound the feasible `Π` range (a VE whose worst-case
    /// blackout exceeds the earliest deadline cannot be schedulable).
    pub fn min_deadline(&self) -> Option<Time> {
        self.tasks.iter().map(Task::deadline).min()
    }

    /// The constrained-deadline horizon constant `K = Σ Cᵢ(1 − Dᵢ/Tᵢ)`
    /// (zero for implicit-deadline sets).
    pub fn density_excess(&self) -> f64 {
        self.tasks.iter().map(Task::density_excess).sum()
    }

    /// The hyperperiod (LCM of all periods), saturating at `u64::MAX`.
    /// Useful for choosing simulation horizons that cover every phasing.
    pub fn hyperperiod(&self) -> Option<Time> {
        fn gcd(a: Time, b: Time) -> Time {
            if b == 0 {
                a
            } else {
                gcd(b, a % b)
            }
        }
        self.tasks
            .iter()
            .map(Task::period)
            .try_fold(1u64, |acc, p| {
                let g = gcd(acc, p);
                (acc / g).checked_mul(p)
            })
    }
}

impl<'a> IntoIterator for &'a TaskSet {
    type Item = &'a Task;
    type IntoIter = std::slice::Iter<'a, Task>;

    fn into_iter(self) -> Self::IntoIter {
        self.tasks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_rejects_zero_period() {
        assert!(matches!(
            Task::new(0, 0, 1),
            Err(Error::InvalidTask { id: 0, .. })
        ));
    }

    #[test]
    fn task_rejects_zero_wcet() {
        assert!(Task::new(1, 10, 0).is_err());
    }

    #[test]
    fn task_rejects_wcet_above_period() {
        assert!(Task::new(2, 10, 11).is_err());
        assert!(Task::new(2, 10, 10).is_ok());
    }

    #[test]
    fn task_utilization() {
        let t = Task::new(0, 8, 2).unwrap();
        assert!((t.utilization() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn constrained_deadline_validation() {
        assert!(Task::with_deadline(0, 100, 101, 10).is_err()); // D > T
        assert!(Task::with_deadline(0, 100, 9, 10).is_err()); // C > D
        let t = Task::with_deadline(0, 100, 50, 10).unwrap();
        assert_eq!(t.deadline(), 50);
        assert_eq!(t.period(), 100);
    }

    #[test]
    fn density_excess_zero_for_implicit() {
        let t = Task::new(0, 100, 10).unwrap();
        assert_eq!(t.density_excess(), 0.0);
        let c = Task::with_deadline(0, 100, 50, 10).unwrap();
        assert!((c.density_excess() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn min_deadline_of_set() {
        let set = TaskSet::new(vec![
            Task::with_deadline(0, 100, 40, 5).unwrap(),
            Task::new(1, 30, 2).unwrap(),
        ])
        .unwrap();
        assert_eq!(set.min_deadline(), Some(30));
        assert_eq!(set.min_period(), Some(30));
        assert!((set.density_excess() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn taskset_rejects_duplicate_ids() {
        let r = TaskSet::new(vec![
            Task::new(5, 10, 1).unwrap(),
            Task::new(5, 20, 1).unwrap(),
        ]);
        assert_eq!(r.unwrap_err(), Error::DuplicateTaskId { id: 5 });
    }

    #[test]
    fn taskset_rejects_overutilization() {
        let r = TaskSet::new(vec![
            Task::new(0, 10, 6).unwrap(),
            Task::new(1, 10, 6).unwrap(),
        ]);
        assert!(matches!(r, Err(Error::Overutilized { .. })));
    }

    #[test]
    fn taskset_accepts_full_utilization() {
        let r = TaskSet::new(vec![
            Task::new(0, 10, 5).unwrap(),
            Task::new(1, 10, 5).unwrap(),
        ]);
        assert!(r.is_ok());
    }

    #[test]
    fn taskset_aggregates() {
        let set = TaskSet::new(vec![
            Task::new(0, 10, 1).unwrap(),
            Task::new(1, 40, 8).unwrap(),
        ])
        .unwrap();
        assert_eq!(set.len(), 2);
        assert_eq!(set.min_period(), Some(10));
        assert!((set.utilization() - 0.3).abs() < 1e-12);
        assert_eq!(set.hyperperiod(), Some(40));
    }

    #[test]
    fn empty_taskset() {
        let set = TaskSet::empty();
        assert!(set.is_empty());
        assert_eq!(set.utilization(), 0.0);
        assert_eq!(set.min_period(), None);
        assert_eq!(set.hyperperiod(), Some(1));
    }

    #[test]
    fn hyperperiod_of_coprime_periods() {
        let set = TaskSet::new(vec![
            Task::new(0, 7, 1).unwrap(),
            Task::new(1, 11, 1).unwrap(),
            Task::new(2, 13, 1).unwrap(),
        ])
        .unwrap();
        assert_eq!(set.hyperperiod(), Some(7 * 11 * 13));
    }

    #[test]
    fn iteration_yields_all_tasks() {
        let set = TaskSet::new(vec![
            Task::new(0, 10, 1).unwrap(),
            Task::new(1, 20, 2).unwrap(),
        ])
        .unwrap();
        let ids: Vec<u32> = set.iter().map(Task::id).collect();
        assert_eq!(ids, vec![0, 1]);
        let ids2: Vec<u32> = (&set).into_iter().map(Task::id).collect();
        assert_eq!(ids2, ids);
    }
}
