//! Micro-benchmark of the interface-selection fast path (the analysis run
//! per SE, per level, on every admission decision).
//!
//! Three variants size the same synthetic client workloads:
//!
//! * **seed** — exhaustive enumeration with a fresh schedulability test per
//!   probe ([`select_interface_exhaustive`]), the algorithm the repository
//!   seeded with;
//! * **tuned** — bandwidth-based candidate pruning + demand-curve
//!   memoization ([`select_se_interfaces_with_divisor`]);
//! * **tuned-parallel** — the tuned kernel with per-client selections
//!   fanned across cores ([`select_se_interfaces_parallel`]).
//!
//! Every variant must select **bit-identical** interfaces — the benchmark
//! asserts this on every workload before it reports a single number. The
//! results are rendered as JSON for `results/BENCH_interface_selection.json`
//! so future changes track the trajectory.

use bluescale_rt::interface::{
    select_interface_exhaustive, select_se_interfaces_parallel, select_se_interfaces_with_divisor,
    SelectionContext,
};
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::TaskSet;
use bluescale_rt::Error;
use bluescale_sim::rng::SimRng;
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use std::time::Instant;

/// Configuration of one benchmark run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectionBenchConfig {
    /// Clients per workload (the acceptance criterion measures 64).
    pub clients: usize,
    /// Independent workloads to size (averaged in the report).
    pub workloads: u64,
    /// Master seed for workload generation.
    pub seed: u64,
    /// Granularity divisor handed to the selector.
    pub divisor: u64,
}

impl Default for SelectionBenchConfig {
    fn default() -> Self {
        Self {
            clients: 64,
            workloads: 8,
            seed: 0x5E1EC7,
            divisor: 1,
        }
    }
}

/// Timing results of one benchmark run, in nanoseconds of total wall time
/// across all workloads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelectionBenchResult {
    /// The configuration measured.
    pub config: SelectionBenchConfig,
    /// Total time of the seed (exhaustive, unmemoized) implementation.
    pub seed_ns: u128,
    /// Total time of the tuned serial kernel.
    pub tuned_ns: u128,
    /// Total time of the tuned kernel with parallel per-client selection.
    pub parallel_ns: u128,
    /// Worker threads used by the parallel variant.
    pub threads: usize,
}

impl SelectionBenchResult {
    /// Speedup of the tuned serial kernel over the seed implementation.
    pub fn tuned_speedup(&self) -> f64 {
        self.seed_ns as f64 / self.tuned_ns.max(1) as f64
    }

    /// Speedup of the tuned parallel kernel over the seed implementation.
    pub fn parallel_speedup(&self) -> f64 {
        self.seed_ns as f64 / self.parallel_ns.max(1) as f64
    }
}

/// The seed's `select_se_interfaces`: per-client exhaustive enumeration
/// under the shared level context, no pruning, no memoization. Kept here
/// (not in `bluescale-rt`) so the baseline cannot drift as the library
/// kernel evolves.
pub fn select_se_interfaces_seed(
    client_sets: &[TaskSet],
    divisor: u64,
) -> Result<Vec<Option<PeriodicResource>>, Error> {
    let total: f64 = client_sets.iter().map(TaskSet::utilization).sum();
    if total > 1.0 + 1e-9 {
        return Err(Error::Overutilized {
            utilization_millis: (total * 1000.0).round() as u64,
        });
    }
    let ctx = SelectionContext::shared(total).with_period_divisor(divisor);
    client_sets
        .iter()
        .map(|set| {
            if set.is_empty() {
                Ok(None)
            } else {
                select_interface_exhaustive(set, &ctx).map(Some)
            }
        })
        .collect()
}

/// Generates `workloads` admissible synthetic client loads (total
/// utilization ≤ 1, so the SE capacity check passes).
fn workloads(config: &SelectionBenchConfig) -> Vec<Vec<TaskSet>> {
    let mut master = SimRng::seed_from(config.seed);
    let mut out = Vec::with_capacity(config.workloads as usize);
    while out.len() < config.workloads as usize {
        let mut rng = master.fork();
        let sets = generate(&SyntheticConfig::fig6(config.clients), &mut rng);
        let total: f64 = sets.iter().map(TaskSet::utilization).sum();
        if total <= 1.0 {
            out.push(sets);
        }
    }
    out
}

/// Runs the benchmark: times all three variants over the same workloads and
/// asserts they select identical interfaces.
///
/// # Panics
///
/// Panics if any variant returns a different result than the seed
/// implementation — a wrong answer must never be reported as a speedup.
pub fn run(config: &SelectionBenchConfig) -> SelectionBenchResult {
    let loads = workloads(config);
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);

    // Warm-up + correctness gate: every variant, every workload.
    for sets in &loads {
        let seed = select_se_interfaces_seed(sets, config.divisor);
        let tuned = select_se_interfaces_with_divisor(sets, config.divisor);
        let par = select_se_interfaces_parallel(sets, config.divisor, threads);
        assert_eq!(seed, tuned, "tuned kernel diverged from seed selection");
        assert_eq!(seed, par, "parallel kernel diverged from seed selection");
    }

    let t0 = Instant::now();
    for sets in &loads {
        let _ = std::hint::black_box(select_se_interfaces_seed(sets, config.divisor));
    }
    let seed_ns = t0.elapsed().as_nanos();

    let t1 = Instant::now();
    for sets in &loads {
        let _ = std::hint::black_box(select_se_interfaces_with_divisor(sets, config.divisor));
    }
    let tuned_ns = t1.elapsed().as_nanos();

    let t2 = Instant::now();
    for sets in &loads {
        let _ = std::hint::black_box(select_se_interfaces_parallel(sets, config.divisor, threads));
    }
    let parallel_ns = t2.elapsed().as_nanos();

    SelectionBenchResult {
        config: *config,
        seed_ns,
        tuned_ns,
        parallel_ns,
        threads,
    }
}

/// Renders results as the `BENCH_interface_selection.json` baseline
/// (hand-rolled JSON; the container has no serde).
pub fn render_json(results: &[SelectionBenchResult]) -> String {
    let mut s = String::from(
        "{\n  \"benchmark\": \"interface_selection\",\n  \"unit\": \"ns\",\n  \"runs\": [\n",
    );
    for (i, r) in results.iter().enumerate() {
        s.push_str(&format!(
            concat!(
                "    {{\n",
                "      \"clients\": {},\n",
                "      \"workloads\": {},\n",
                "      \"seed\": {},\n",
                "      \"divisor\": {},\n",
                "      \"threads\": {},\n",
                "      \"seed_impl_total_ns\": {},\n",
                "      \"tuned_serial_total_ns\": {},\n",
                "      \"tuned_parallel_total_ns\": {},\n",
                "      \"tuned_speedup\": {:.2},\n",
                "      \"parallel_speedup\": {:.2},\n",
                "      \"identical_interfaces\": true\n",
                "    }}{}\n",
            ),
            r.config.clients,
            r.config.workloads,
            r.config.seed,
            r.config.divisor,
            r.threads,
            r.seed_ns,
            r.tuned_ns,
            r.parallel_ns,
            r.tuned_speedup(),
            r.parallel_speedup(),
            if i + 1 < results.len() { "," } else { "" },
        ));
    }
    s.push_str("  ]\n}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_agree_and_report_sane_timings() {
        let config = SelectionBenchConfig {
            clients: 16,
            workloads: 2,
            ..Default::default()
        };
        let r = run(&config);
        assert!(r.seed_ns > 0 && r.tuned_ns > 0 && r.parallel_ns > 0);
        assert!(r.threads >= 1);
    }

    #[test]
    fn seed_reference_matches_tuned_kernel_on_64_clients() {
        let config = SelectionBenchConfig {
            workloads: 1,
            ..Default::default()
        };
        for sets in workloads(&config) {
            assert_eq!(
                select_se_interfaces_seed(&sets, 1),
                select_se_interfaces_with_divisor(&sets, 1)
            );
        }
    }

    #[test]
    fn json_is_well_formed_enough() {
        let r = SelectionBenchResult {
            config: SelectionBenchConfig::default(),
            seed_ns: 100,
            tuned_ns: 50,
            parallel_ns: 25,
            threads: 4,
        };
        let json = render_json(&[r.clone(), r]);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"tuned_speedup\": 2.00"));
        assert!(json.contains("\"parallel_speedup\": 4.00"));
    }
}
