//! Demand bound functions under EDF.
//!
//! For implicit deadlines the paper uses `dbf(t, τᵢ) = ⌊t/Tᵢ⌋ · Cᵢ`. The
//! general constrained-deadline form (Baruah et al.) is
//! `dbf(t, τᵢ) = (⌊(t − Dᵢ)/Tᵢ⌋ + 1) · Cᵢ` for `t ≥ Dᵢ`, which reduces to
//! the paper's expression when `Dᵢ = Tᵢ`. Constrained deadlines let the
//! BlueScale composition reserve end-to-end slack per level.

use crate::task::{Task, TaskSet};
use crate::Time;

/// Demand bound of a single task over an interval of length `t`.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::Task;
/// use bluescale_rt::demand::dbf_task;
///
/// let tau = Task::new(0, 10, 3)?;
/// assert_eq!(dbf_task(&tau, 9), 0);
/// assert_eq!(dbf_task(&tau, 10), 3);
/// assert_eq!(dbf_task(&tau, 25), 6);
/// // A constrained deadline moves the demand steps earlier.
/// let tight = Task::with_deadline(1, 10, 6, 3)?;
/// assert_eq!(dbf_task(&tight, 5), 0);
/// assert_eq!(dbf_task(&tight, 6), 3);
/// assert_eq!(dbf_task(&tight, 16), 6);
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn dbf_task(task: &Task, t: Time) -> Time {
    if t < task.deadline() {
        0
    } else {
        ((t - task.deadline()) / task.period() + 1) * task.wcet()
    }
}

/// Demand bound of a whole task set: `Σᵢ dbf(t, τᵢ)`.
pub fn dbf_set(set: &TaskSet, t: Time) -> Time {
    set.iter().map(|tau| dbf_task(tau, t)).sum()
}

/// Iterator over the *demand change points* of a task set up to (and
/// excluding) `horizon`: the instants `Dᵢ + k·Tᵢ` at which `dbf_set` steps.
///
/// Between consecutive change points `dbf_set` is constant while the supply
/// bound function is non-decreasing, so checking `dbf ≤ sbf` at change
/// points only is exact (standard argument; see Shin & Lee 2003).
///
/// Points are returned sorted and deduplicated.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::demand::change_points;
///
/// let set = TaskSet::new(vec![Task::new(0, 4, 1)?, Task::new(1, 6, 1)?])?;
/// assert_eq!(change_points(&set, 13), vec![4, 6, 8, 12]);
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn change_points(set: &TaskSet, horizon: Time) -> Vec<Time> {
    let mut points: Vec<Time> = Vec::new();
    for tau in set {
        let mut t = tau.deadline();
        while t < horizon {
            points.push(t);
            t += tau.period();
        }
    }
    points.sort_unstable();
    points.dedup();
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn dbf_task_is_step_function() {
        let tau = Task::new(0, 5, 2).unwrap();
        assert_eq!(dbf_task(&tau, 0), 0);
        assert_eq!(dbf_task(&tau, 4), 0);
        assert_eq!(dbf_task(&tau, 5), 2);
        assert_eq!(dbf_task(&tau, 9), 2);
        assert_eq!(dbf_task(&tau, 10), 4);
    }

    #[test]
    fn dbf_set_sums_tasks() {
        let s = set(&[(4, 1), (6, 2)]);
        assert_eq!(dbf_set(&s, 12), 3 + 2 * 2);
    }

    #[test]
    fn dbf_set_zero_before_first_deadline() {
        let s = set(&[(10, 3), (15, 4)]);
        assert_eq!(dbf_set(&s, 9), 0);
        assert_eq!(dbf_set(&s, 10), 3);
    }

    #[test]
    fn dbf_monotone_nondecreasing() {
        let s = set(&[(3, 1), (7, 2), (11, 3)]);
        let mut prev = 0;
        for t in 0..200 {
            let d = dbf_set(&s, t);
            assert!(d >= prev);
            prev = d;
        }
    }

    #[test]
    fn dbf_linear_bound() {
        // dbf(t) <= U * t for all t.
        let s = set(&[(5, 2), (8, 3)]);
        let u = s.utilization();
        for t in 0..500 {
            assert!(dbf_set(&s, t) as f64 <= u * t as f64 + 1e-9);
        }
    }

    #[test]
    fn change_points_are_period_multiples() {
        let s = set(&[(4, 1), (6, 1)]);
        assert_eq!(change_points(&s, 13), vec![4, 6, 8, 12]);
        // horizon is exclusive
        assert_eq!(change_points(&s, 12), vec![4, 6, 8]);
    }

    #[test]
    fn change_points_dedup_shared_multiples() {
        let s = set(&[(4, 1), (8, 1)]);
        assert_eq!(change_points(&s, 17), vec![4, 8, 12, 16]);
    }

    #[test]
    fn change_points_empty_set() {
        assert!(change_points(&TaskSet::empty(), 100).is_empty());
    }

    #[test]
    fn constrained_deadline_steps_at_d_plus_kt() {
        let s = TaskSet::new(vec![Task::with_deadline(0, 10, 4, 2).unwrap()]).unwrap();
        assert_eq!(change_points(&s, 30), vec![4, 14, 24]);
        assert_eq!(dbf_set(&s, 3), 0);
        assert_eq!(dbf_set(&s, 4), 2);
        assert_eq!(dbf_set(&s, 13), 2);
        assert_eq!(dbf_set(&s, 14), 4);
    }

    #[test]
    fn constrained_dbf_linear_bound_with_excess() {
        // dbf(t) <= U t + K where K = Σ C (1 - D/T).
        let s = TaskSet::new(vec![
            Task::with_deadline(0, 10, 5, 2).unwrap(),
            Task::with_deadline(1, 7, 4, 1).unwrap(),
        ])
        .unwrap();
        let u = s.utilization();
        let k = s.density_excess();
        for t in 0..500 {
            assert!(
                dbf_set(&s, t) as f64 <= u * t as f64 + k + 1e-9,
                "violated at t={t}"
            );
        }
    }

    #[test]
    fn dbf_constant_between_change_points() {
        let s = set(&[(5, 2), (7, 3)]);
        let pts = change_points(&s, 100);
        for w in pts.windows(2) {
            let (a, b) = (w[0], w[1]);
            for t in a..b {
                assert_eq!(dbf_set(&s, t), dbf_set(&s, a));
            }
        }
    }
}
