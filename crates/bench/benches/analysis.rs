//! Criterion micro-benchmarks of the analysis path: SBF/DBF evaluation,
//! schedulability testing and interface selection — the computation the
//! interface selector's datapath (ALU + scratchpad) performs in hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use bluescale_rt::demand::dbf_set;
use bluescale_rt::fixed_priority::is_schedulable_fp;
use bluescale_rt::interface::{select_interface, select_se_interfaces, SelectionContext};
use bluescale_rt::schedulability::is_schedulable;
use bluescale_rt::validate::edf_meets_deadlines;
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::rng::SimRng;
use bluescale_workload::uunifast::taskset_with_utilization;

fn sample_set(tasks: usize, seed: u64) -> TaskSet {
    let mut rng = SimRng::seed_from(seed);
    taskset_with_utilization(tasks, 0.4, 100, 2000, &mut rng)
}

fn bench_dbf(c: &mut Criterion) {
    let set = sample_set(8, 1);
    c.bench_function("dbf_set/8tasks/t=10k", |b| {
        b.iter(|| dbf_set(black_box(&set), black_box(10_000)))
    });
}

fn bench_sbf(c: &mut Criterion) {
    let r = PeriodicResource::new(50, 17).expect("valid");
    c.bench_function("sbf/t=10k", |b| {
        b.iter(|| black_box(&r).sbf(black_box(10_000)))
    });
}

fn bench_schedulability(c: &mut Criterion) {
    let mut group = c.benchmark_group("is_schedulable");
    for tasks in [2usize, 4, 8] {
        let set = sample_set(tasks, tasks as u64);
        let r = PeriodicResource::new(16, 8).expect("valid");
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &set, |b, set| {
            b.iter(|| is_schedulable(black_box(set), black_box(&r)))
        });
    }
    group.finish();
}

fn bench_interface_selection(c: &mut Criterion) {
    let mut group = c.benchmark_group("select_interface");
    for tasks in [1usize, 2, 4] {
        let set = sample_set(tasks, 10 + tasks as u64);
        let ctx = SelectionContext::isolated(&set);
        group.bench_with_input(BenchmarkId::from_parameter(tasks), &set, |b, set| {
            b.iter(|| select_interface(black_box(set), black_box(&ctx)).expect("feasible"))
        });
    }
    group.finish();
}

fn bench_se_composition(c: &mut Criterion) {
    // Sizing a full SE (4 clients) — the per-element cost of the
    // distributed reconfiguration property.
    let clients: Vec<TaskSet> = (0..4)
        .map(|i| {
            TaskSet::new(vec![Task::new(0, 400 + 50 * i, 8).expect("valid")])
                .expect("valid set")
        })
        .collect();
    c.bench_function("select_se_interfaces/4clients", |b| {
        b.iter(|| select_se_interfaces(black_box(&clients)).expect("feasible"))
    });
}

fn bench_fixed_priority(c: &mut Criterion) {
    let set = sample_set(4, 21);
    let r = PeriodicResource::new(16, 10).expect("valid");
    c.bench_function("is_schedulable_fp/4tasks", |b| {
        b.iter(|| is_schedulable_fp(black_box(&set), black_box(&r)))
    });
}

fn bench_validate(c: &mut Criterion) {
    let set = sample_set(3, 31);
    let r = PeriodicResource::new(8, 6).expect("valid");
    c.bench_function("edf_simulate/3tasks/5k", |b| {
        b.iter(|| edf_meets_deadlines(black_box(&set), black_box(&r), 5_000))
    });
}

criterion_group!(
    benches,
    bench_dbf,
    bench_sbf,
    bench_schedulability,
    bench_interface_selection,
    bench_se_composition,
    bench_fixed_priority,
    bench_validate
);
criterion_main!(benches);
