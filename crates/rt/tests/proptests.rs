//! Property-based tests of the analysis crate's cross-module invariants.

use bluescale_rt::demand::dbf_set;
use bluescale_rt::edp::{is_schedulable_edp, EdpResource};
use bluescale_rt::fixed_priority::{
    deadline_monotonic_order, is_schedulable_fp, rbf, response_time,
};
use bluescale_rt::schedulability::is_schedulable;
use bluescale_rt::supply::PeriodicResource;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_rt::validate::edf_meets_deadlines;
use proptest::prelude::*;

fn arb_task(id: u32) -> impl Strategy<Value = Task> {
    (2u64..150, 1u64..30).prop_map(move |(period, raw_wcet)| {
        Task::new(id, period, raw_wcet.min(period)).expect("valid parameters")
    })
}

fn arb_taskset() -> impl Strategy<Value = TaskSet> {
    prop::collection::vec(0u8..1, 1..4).prop_flat_map(|slots| {
        let strategies: Vec<_> = (0..slots.len()).map(|i| arb_task(i as u32)).collect();
        strategies.prop_filter_map("U ≤ 1", |tasks| TaskSet::new(tasks).ok())
    })
}

fn arb_resource() -> impl Strategy<Value = PeriodicResource> {
    (1u64..40).prop_flat_map(|period| {
        (Just(period), 1u64..=period)
            .prop_map(|(p, b)| PeriodicResource::new(p, b).expect("b ≤ p"))
    })
}

proptest! {
    /// EDF is optimal on a periodic resource: anything the fixed-priority
    /// test admits, the EDF test must admit too.
    #[test]
    fn fp_admission_implies_edf_admission(
        set in arb_taskset(),
        r in arb_resource(),
    ) {
        if is_schedulable_fp(&set, &r) {
            prop_assert!(
                is_schedulable(&set, &r),
                "FP admitted {set:?} on {r:?} but EDF rejected"
            );
        }
    }

    /// FP admission also implies the worst-case-supply EDF simulation
    /// passes (EDF dominates any fixed-priority order at run time).
    #[test]
    fn fp_admission_implies_simulation_passes(
        set in arb_taskset(),
        r in arb_resource(),
    ) {
        if is_schedulable_fp(&set, &r) {
            let horizon = set
                .hyperperiod()
                .unwrap_or(10_000)
                .saturating_mul(2)
                .min(100_000);
            prop_assert!(edf_meets_deadlines(&set, &r, horizon));
        }
    }

    /// The request bound function is monotone in t and starts at the
    /// task's own WCET.
    #[test]
    fn rbf_is_monotone(set in arb_taskset(), t in 1u64..300) {
        let ordered = deadline_monotonic_order(&set);
        for i in 0..ordered.len() {
            prop_assert!(rbf(&ordered, i, t + 1) >= rbf(&ordered, i, t));
            prop_assert!(rbf(&ordered, i, 1) >= ordered[i].wcet());
        }
    }

    /// Response times respect priority order economics: on the same
    /// resource a task never responds faster than the highest-priority
    /// task's own WCET supply time.
    #[test]
    fn response_time_at_least_supply_of_own_wcet(
        set in arb_taskset(),
        r in arb_resource(),
    ) {
        let ordered = deadline_monotonic_order(&set);
        for i in 0..ordered.len() {
            if let Some(rt) = response_time(&ordered, i, &r) {
                // By definition of the analysis: sbf(rt) ≥ rbf ≥ C.
                prop_assert!(r.sbf(rt) >= ordered[i].wcet());
                prop_assert!(rt <= ordered[i].deadline());
            }
        }
    }

    /// Growing the budget never hurts: FP admission is monotone in Θ.
    #[test]
    fn fp_admission_monotone_in_budget(set in arb_taskset(), period in 2u64..30) {
        let mut admitted = false;
        for budget in 1..=period {
            let r = PeriodicResource::new(period, budget).expect("valid");
            let now = is_schedulable_fp(&set, &r);
            prop_assert!(!admitted || now, "admission lost when Θ grew to {budget}");
            admitted = now;
        }
    }

    /// For identical (Π, Θ), the EDP supply dominates the periodic supply
    /// for every deadline choice, and therefore admits at least as much.
    #[test]
    fn edp_supply_dominates_periodic(
        set in arb_taskset(),
        r in arb_resource(),
        t in 0u64..400,
    ) {
        // Tightest EDP deadline Δ = Θ.
        let edp = EdpResource::new(r.period(), r.budget(), r.budget())
            .expect("Θ ≤ Θ ≤ Π");
        prop_assert!(edp.sbf(t) >= r.sbf(t), "EDP supply below periodic at t={t}");
        if is_schedulable(&set, &r) {
            prop_assert!(
                is_schedulable_edp(&set, &edp),
                "periodic admitted {set:?} on {r:?} but EDP rejected"
            );
        }
    }

    /// EDP sbf is monotone and unit-rate bounded for random triples.
    #[test]
    fn edp_sbf_well_formed(
        period in 1u64..40,
        budget_frac in 1u64..40,
        deadline_frac in 0u64..40,
        t in 0u64..300,
    ) {
        let budget = (budget_frac % period).max(1);
        let deadline = budget + deadline_frac % (period - budget + 1);
        let r = EdpResource::new(period, budget, deadline).expect("constructed valid");
        prop_assert!(r.sbf(t + 1) >= r.sbf(t));
        prop_assert!(r.sbf(t + 1) - r.sbf(t) <= 1);
        prop_assert!(r.sbf(t) <= t);
    }

    /// dbf never exceeds rbf-style total demand: the EDF demand in an
    /// interval is at most every task's synchronous releases.
    #[test]
    fn dbf_bounded_by_release_counts(set in arb_taskset(), t in 0u64..500) {
        let upper: u64 = set
            .iter()
            .map(|task| (t / task.period() + 1) * task.wcet())
            .sum();
        prop_assert!(dbf_set(&set, t) <= upper);
    }
}
