//! Differential tests for the online admission-control subsystem.
//!
//! Three contracts are pinned here:
//!
//! * **Inertness.** An *empty* [`ChurnPlan`] is indistinguishable from no
//!   plan at all — bit-identical counts, per-client counts, per-SE/port
//!   counters, and full sample sequences, with fast-forward both on and
//!   off. (This transitively pins the fig5/fig6 markdown to the pre-churn
//!   baseline: those harnesses never install a plan.)
//! * **Fast-forward integration.** With a non-empty plan, the next-event
//!   fast-forward path must never jump over a reconfiguration cycle: the
//!   jumping run and the per-cycle oracle agree bit-for-bit while jumps
//!   actually happen.
//! * **Zero disturbance.** Across every admitted transition of a live
//!   churn plan, clients the plan never touched meet all their deadlines
//!   — the safe mode-change protocol's whole point.

use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_interconnect::admission::{ChurnKind, ChurnPlan};
use bluescale_interconnect::system::System;
use bluescale_rt::task::{Task, TaskSet};
use bluescale_sim::metrics::{ComponentId, Counter};
use bluescale_sim::rng::SimRng;
use bluescale_workload::casestudy::{generate as casestudy, CaseStudyConfig};
use bluescale_workload::synthetic::{generate, SyntheticConfig};

const SEED: u64 = 0xC0DE;
const HORIZON: u64 = 20_000;

fn task_sets(config: &SyntheticConfig) -> Vec<TaskSet> {
    let mut rng = SimRng::seed_from(SEED);
    generate(config, &mut rng)
}

/// Low-utilization, long-period workload: real idle stretches to jump over.
fn sparse_config(clients: usize) -> SyntheticConfig {
    SyntheticConfig {
        clients,
        util_lo: 0.05,
        util_hi: 0.10,
        max_tasks_per_client: 1,
        period_min: 2_000,
        period_max: 4_000,
        util_floor: 1e-4,
    }
}

fn build_system(sets: &[TaskSet]) -> System<BlueScaleInterconnect> {
    let mut config = BlueScaleConfig::for_clients(sets.len());
    config.work_conserving = true;
    let ic = BlueScaleInterconnect::new(config, sets).expect("valid task sets");
    System::new(Box::new(ic), sets)
}

/// Everything two runs must agree on to count as bit-identical.
fn fingerprint(sys: &mut System<BlueScaleInterconnect>, horizon: u64) -> (Vec<u64>, Vec<f64>) {
    let mut m = sys.run(horizon);
    let mut counts = vec![m.issued(), m.completed(), m.missed(), m.backlog()];
    for c in sys.per_client_metrics() {
        counts.extend([c.issued(), c.completed(), c.missed()]);
    }
    for level in sys.interconnect().forward_counts() {
        counts.extend(level);
    }
    let config = sys.interconnect().config().clone();
    for counter in [Counter::Grants, Counter::Replenishments] {
        for depth in 0..config.levels() {
            for order in 0..config.elements_at(depth) {
                counts.extend(sys.interconnect().metrics().port_counters(
                    depth,
                    order,
                    config.branch,
                    counter,
                ));
            }
        }
    }
    let mut samples = m.latency().as_slice().to_vec();
    samples.extend_from_slice(m.blocking().as_slice());
    (counts, samples)
}

/// A three-event plan over a sparse workload: retask, leave, rejoin.
fn light_plan(sets: &[TaskSet]) -> ChurnPlan {
    let mut plan = ChurnPlan::new(SEED ^ 0xC482);
    plan.push(
        6_000,
        2,
        ChurnKind::UpdateTasks {
            tasks: TaskSet::new(vec![Task::new(0, 2_500, 2).unwrap()]).unwrap(),
        },
    )
    .push(9_000, 9, ChurnKind::Leave)
    .push(
        13_000,
        9,
        ChurnKind::Join {
            tasks: sets[9].clone(),
        },
    );
    plan
}

#[test]
fn empty_churn_plan_is_bit_identical_to_no_plan() {
    let sets = task_sets(&SyntheticConfig::fig6(16));
    for fast_forward in [false, true] {
        let mut with_plan = build_system(&sets);
        with_plan.set_churn_plan(ChurnPlan::new(42));
        let mut without = build_system(&sets);
        with_plan.set_fast_forward(fast_forward);
        without.set_fast_forward(fast_forward);
        let a = fingerprint(&mut with_plan, HORIZON);
        let b = fingerprint(&mut without, HORIZON);
        assert!(b.0[0] > 0, "the workload must issue requests");
        assert_eq!(
            a, b,
            "an empty churn plan must be inert (fast_forward={fast_forward})"
        );
    }
}

#[test]
fn fast_forward_never_jumps_over_a_reconfiguration_cycle() {
    let sets = task_sets(&sparse_config(16));
    let mut fast = build_system(&sets);
    let mut slow = build_system(&sets);
    fast.set_churn_plan(light_plan(&sets));
    slow.set_churn_plan(light_plan(&sets));
    fast.set_fast_forward(true);
    slow.set_fast_forward(false);
    let a = fingerprint(&mut fast, HORIZON);
    let b = fingerprint(&mut slow, HORIZON);
    assert_eq!(a, b, "fast-forward must be bit-identical under churn");
    assert!(
        fast.fast_forward_jumps() > 0,
        "the sparse churned run must still jump, or the check is vacuous"
    );
    for sys in [&fast, &slow] {
        assert_eq!(
            sys.registry()
                .counter(ComponentId::System, Counter::Admitted),
            3,
            "all three churn events are feasible and must be admitted"
        );
    }
}

#[test]
fn merged_registry_counts_churn_exactly_once() {
    // Churn accounting (`Reconfigurations`/`Admitted`/`AdmissionRejected`)
    // is owned by the harness registry alone; the fabric must not tally it
    // too, or `merged_registry()` doubles every admitted transition.
    let sets = task_sets(&sparse_config(16));
    let mut sys = build_system(&sets);
    sys.set_churn_plan(light_plan(&sets));
    sys.run(HORIZON);
    for counter in [
        Counter::Reconfigurations,
        Counter::Admitted,
        Counter::AdmissionRejected,
        Counter::TransitionCycles,
    ] {
        let system_count = sys.registry().counter(ComponentId::System, counter);
        let fabric_count = sys
            .interconnect()
            .metrics()
            .counter(ComponentId::System, counter);
        assert_eq!(
            fabric_count, 0,
            "{counter:?}: the fabric registry must not tally churn"
        );
        let merged = sys.merged_registry().counter(ComponentId::System, counter);
        assert_eq!(
            merged, system_count,
            "{counter:?}: merged view must equal the harness tally"
        );
    }
    // `TransitionCycles` used to be tallied a second time per affected SE
    // by the fabric registry; pin that no SE component carries it anymore,
    // and that the single-owner total survives the merge untouched.
    let config = sys.interconnect().config().clone();
    for depth in 0..config.levels() {
        for order in 0..config.elements_at(depth) {
            assert_eq!(
                sys.interconnect()
                    .metrics()
                    .counter(ComponentId::Se { depth, order }, Counter::TransitionCycles),
                0,
                "se.{depth}.{order}: the fabric must not tally transition cycles"
            );
        }
    }
    let transition_total = sys
        .merged_registry()
        .counter(ComponentId::System, Counter::TransitionCycles);
    assert!(
        transition_total > 0,
        "admitted deferred swaps must report a nonzero transition latency"
    );
    assert_eq!(
        transition_total,
        sys.registry()
            .counter(ComponentId::System, Counter::TransitionCycles),
        "the merged transition-cycle total must equal the harness tally exactly"
    );
    assert_eq!(
        sys.registry()
            .counter(ComponentId::System, Counter::Admitted),
        3,
        "all three churn events are feasible and must be admitted"
    );
}

#[test]
fn transitions_never_disturb_untouched_tenants() {
    // Schedulable case-study workloads under live churn: every client the
    // plan does not touch keeps its guarantee through all transitions.
    let churned = [3u32, 7u32];
    let mut admitted_total = 0;
    for seed in 0..3u64 {
        for &target in &[0.3, 0.5] {
            let mut rng = SimRng::seed_from(4_000 + seed);
            let sets = casestudy(&CaseStudyConfig::fig7(16, target), &mut rng);
            let mut sys = build_system(&sets);
            if !sys.interconnect().composition().schedulable {
                continue;
            }
            // Case-study generation may leave a client idle; a Join must
            // declare at least one task, so fall back to a light tenant.
            let rejoin = if sets[churned[1] as usize].is_empty() {
                TaskSet::new(vec![Task::new(0, 2_000, 1).unwrap()]).unwrap()
            } else {
                sets[churned[1] as usize].clone()
            };
            let mut plan = ChurnPlan::new(seed);
            plan.push(
                5_000,
                churned[0],
                ChurnKind::UpdateTasks {
                    tasks: TaskSet::new(vec![Task::new(0, 1_000, 2).unwrap()]).unwrap(),
                },
            )
            .push(9_000, churned[1], ChurnKind::Leave)
            .push(13_000, churned[1], ChurnKind::Join { tasks: rejoin });
            sys.set_churn_plan(plan);
            sys.run(HORIZON);
            for (c, m) in sys.per_client_metrics().iter().enumerate() {
                if churned.contains(&(c as u32)) {
                    continue;
                }
                assert_eq!(
                    m.missed(),
                    0,
                    "seed {seed}, target {target}: untouched client {c} \
                     missed {} deadlines across transitions",
                    m.missed()
                );
            }
            admitted_total += sys
                .registry()
                .counter(ComponentId::System, Counter::Admitted);
        }
    }
    assert!(
        admitted_total > 0,
        "at least some transitions must actually be admitted"
    );
}

#[test]
fn rejected_reconfigurations_roll_back_bit_identically_mid_run() {
    // A hog request mid-run is rejected; the run must continue exactly as
    // if the request never arrived (compare against a run with no plan).
    let sets = task_sets(&sparse_config(16));
    let mut churned = build_system(&sets);
    let mut baseline = build_system(&sets);
    let mut plan = ChurnPlan::new(7);
    plan.push(
        8_000,
        5,
        ChurnKind::UpdateTasks {
            tasks: TaskSet::new(vec![Task::new(0, 10, 9).unwrap()]).unwrap(),
        },
    );
    churned.set_churn_plan(plan);
    let a = fingerprint(&mut churned, HORIZON);
    let b = fingerprint(&mut baseline, HORIZON);
    assert_eq!(
        churned
            .registry()
            .counter(ComponentId::System, Counter::AdmissionRejected),
        1,
        "the hog must be rejected"
    );
    assert_eq!(a, b, "a rejected request must leave no trace");
}
