//! Random-access buffers — the low-level nested priority queue.
//!
//! The hardware (paper, Section 4.1) stores pending requests in a register
//! chain with per-entry parameter banks; comparators continuously scan the
//! banks and steer the highest-priority (earliest-deadline) request to the
//! fetcher. The software model mirrors that structure directly: a small
//! vector of entries scanned linearly (the comparator tree), with FIFO
//! tie-breaking by arrival order (the register-chain position).
//!
//! Unlike a FIFO, the buffer also supports *blocking accounting*: when the
//! local scheduler forwards a request with deadline `D`, every buffered
//! request with an earlier deadline was just blocked by lower-priority
//! traffic for one cycle ([`RandomAccessBuffer::charge_blocking`]).

use bluescale_interconnect::MemoryRequest;

/// Ordering discipline of the low-level queue — the nested-priority-queue
/// ablation of DESIGN.md: the paper's random-access buffer surfaces the
/// earliest deadline; a conventional FIFO ignores deadlines entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueuePolicy {
    /// Earliest-deadline-first (the paper's comparator-bank arbiter).
    #[default]
    EarliestDeadline,
    /// Plain FIFO (ablation: what a conventional stage buffer would do).
    Fifo,
}

/// A bounded earliest-deadline-first random-access buffer.
///
/// # Example
///
/// ```
/// use bluescale::rab::RandomAccessBuffer;
/// use bluescale_interconnect::{AccessKind, MemoryRequest};
///
/// let mk = |id, deadline| MemoryRequest {
///     id, client: 0, task: 0, addr: 0, kind: AccessKind::Read,
///     issued_at: 0, deadline, blocked_cycles: 0,
/// };
/// let mut rab = RandomAccessBuffer::with_capacity(4);
/// rab.try_push(mk(1, 90)).expect("space");
/// rab.try_push(mk(2, 30)).expect("space");
/// assert_eq!(rab.peek_deadline(), Some(30)); // earliest deadline wins
/// assert_eq!(rab.pop().expect("entry").id, 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RandomAccessBuffer {
    entries: Vec<(u64, MemoryRequest)>, // (arrival seq, request)
    next_seq: u64,
    capacity: usize,
    policy: QueuePolicy,
}

impl RandomAccessBuffer {
    /// Creates an EDF buffer holding at most `capacity` requests (the
    /// register chain depth).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        Self::with_policy(capacity, QueuePolicy::EarliestDeadline)
    }

    /// Creates a buffer with an explicit ordering [`QueuePolicy`].
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_policy(capacity: usize, policy: QueuePolicy) -> Self {
        assert!(capacity > 0, "buffer capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            next_seq: 0,
            capacity,
            policy,
        }
    }

    /// The ordering discipline in use.
    pub fn policy(&self) -> QueuePolicy {
        self.policy
    }

    /// Loads a request, or hands it back when the register chain is full.
    ///
    /// # Errors
    ///
    /// Returns the request as the error value if the buffer is at capacity.
    pub fn try_push(&mut self, request: MemoryRequest) -> Result<(), MemoryRequest> {
        if self.entries.len() == self.capacity {
            return Err(request);
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.push((seq, request));
        Ok(())
    }

    fn best_index(&self) -> Option<usize> {
        match self.policy {
            QueuePolicy::EarliestDeadline => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (seq, r))| (r.deadline, *seq))
                .map(|(i, _)| i),
            QueuePolicy::Fifo => self
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, (seq, _))| *seq)
                .map(|(i, _)| i),
        }
    }

    /// The earliest deadline among buffered requests.
    pub fn peek_deadline(&self) -> Option<u64> {
        self.best_index().map(|i| self.entries[i].1.deadline)
    }

    /// Borrows the highest-priority request.
    pub fn peek(&self) -> Option<&MemoryRequest> {
        self.best_index().map(|i| &self.entries[i].1)
    }

    /// Fetches (removes) the highest-priority request.
    pub fn pop(&mut self) -> Option<MemoryRequest> {
        let i = self.best_index()?;
        Some(self.entries.swap_remove(i).1)
    }

    /// Charges one cycle of blocking to every buffered request whose
    /// deadline is strictly earlier than `served_deadline` — they just
    /// waited while a lower-priority request used the provider port.
    /// Returns how many requests were charged.
    pub fn charge_blocking(&mut self, served_deadline: u64) -> usize {
        let mut charged = 0;
        for (_, r) in &mut self.entries {
            if r.deadline < served_deadline {
                r.blocked_cycles += 1;
                charged += 1;
            }
        }
        charged
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether the buffer is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.capacity
    }

    /// The configured capacity (register-chain depth).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Iterates buffered requests in arbitrary order (bank inspection).
    pub fn iter(&self) -> impl Iterator<Item = &MemoryRequest> {
        self.entries.iter().map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    fn req(id: u64, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client: 0,
            task: 0,
            addr: 0,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn pops_earliest_deadline() {
        let mut rab = RandomAccessBuffer::with_capacity(8);
        for (id, dl) in [(1, 50), (2, 10), (3, 30)] {
            rab.try_push(req(id, dl)).unwrap();
        }
        assert_eq!(rab.pop().unwrap().id, 2);
        assert_eq!(rab.pop().unwrap().id, 3);
        assert_eq!(rab.pop().unwrap().id, 1);
        assert_eq!(rab.pop(), None);
    }

    #[test]
    fn backpressure_at_capacity() {
        let mut rab = RandomAccessBuffer::with_capacity(2);
        rab.try_push(req(1, 10)).unwrap();
        rab.try_push(req(2, 20)).unwrap();
        assert!(rab.is_full());
        let rejected = rab.try_push(req(3, 5)).unwrap_err();
        assert_eq!(rejected.id, 3);
        rab.pop();
        assert!(rab.try_push(req(3, 5)).is_ok());
        assert_eq!(rab.peek_deadline(), Some(5));
    }

    #[test]
    fn fifo_among_equal_deadlines() {
        let mut rab = RandomAccessBuffer::with_capacity(4);
        rab.try_push(req(1, 10)).unwrap();
        rab.try_push(req(2, 10)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 1);
        assert_eq!(rab.pop().unwrap().id, 2);
    }

    #[test]
    fn fifo_survives_interleaved_pops() {
        let mut rab = RandomAccessBuffer::with_capacity(8);
        rab.try_push(req(1, 10)).unwrap();
        rab.try_push(req(2, 10)).unwrap();
        rab.try_push(req(3, 5)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 3);
        rab.try_push(req(4, 10)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 1);
        assert_eq!(rab.pop().unwrap().id, 2);
        assert_eq!(rab.pop().unwrap().id, 4);
    }

    #[test]
    fn charge_blocking_hits_earlier_deadlines_only() {
        let mut rab = RandomAccessBuffer::with_capacity(4);
        rab.try_push(req(1, 10)).unwrap();
        rab.try_push(req(2, 50)).unwrap();
        rab.try_push(req(3, 30)).unwrap();
        // A request with deadline 40 was served: ids 1 (dl 10) and 3
        // (dl 30) were blocked; id 2 (dl 50) was not.
        let charged = rab.charge_blocking(40);
        assert_eq!(charged, 2);
        let blocked: Vec<(u64, u64)> = rab.iter().map(|r| (r.id, r.blocked_cycles)).collect();
        for (id, b) in blocked {
            match id {
                1 | 3 => assert_eq!(b, 1),
                2 => assert_eq!(b, 0),
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn charge_blocking_accumulates() {
        let mut rab = RandomAccessBuffer::with_capacity(2);
        rab.try_push(req(1, 10)).unwrap();
        rab.charge_blocking(100);
        rab.charge_blocking(100);
        rab.charge_blocking(100);
        assert_eq!(rab.pop().unwrap().blocked_cycles, 3);
    }

    #[test]
    fn empty_behaviour() {
        let mut rab = RandomAccessBuffer::with_capacity(1);
        assert!(rab.is_empty());
        assert_eq!(rab.pop(), None);
        assert_eq!(rab.peek_deadline(), None);
        assert_eq!(rab.charge_blocking(100), 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_panics() {
        let _ = RandomAccessBuffer::with_capacity(0);
    }

    #[test]
    fn capacity_one_alternates_full_and_empty() {
        // The smallest legal buffer: every push fills it, every pop
        // empties it, and backpressure is immediate.
        let mut rab = RandomAccessBuffer::with_capacity(1);
        assert_eq!(rab.capacity(), 1);
        rab.try_push(req(1, 10)).unwrap();
        assert!(rab.is_full());
        assert_eq!(rab.try_push(req(2, 1)).unwrap_err().id, 2);
        assert_eq!(rab.pop().unwrap().id, 1);
        assert!(rab.is_empty());
        rab.try_push(req(3, 5)).unwrap();
        assert_eq!(rab.peek().unwrap().id, 3);
        assert_eq!(rab.pop().unwrap().id, 3);
    }

    #[test]
    fn refill_at_capacity_keeps_edf_order() {
        // Drain-and-refill at the capacity boundary must not disturb
        // deadline ordering: the slot vacated by a pop is immediately
        // reusable by an earlier-deadline arrival.
        let mut rab = RandomAccessBuffer::with_capacity(3);
        rab.try_push(req(1, 30)).unwrap();
        rab.try_push(req(2, 20)).unwrap();
        rab.try_push(req(3, 40)).unwrap();
        assert!(rab.is_full());
        assert_eq!(rab.pop().unwrap().id, 2);
        rab.try_push(req(4, 10)).unwrap();
        assert!(rab.is_full());
        assert_eq!(rab.pop().unwrap().id, 4, "late arrival with urgent dl");
        assert_eq!(rab.pop().unwrap().id, 1);
        assert_eq!(rab.pop().unwrap().id, 3);
    }

    #[test]
    fn tied_deadlines_fifo_across_refills() {
        // Three waves of equal-deadline requests with pops in between:
        // the FIFO tiebreak must order by arrival globally, not merely
        // within one resident set.
        let mut rab = RandomAccessBuffer::with_capacity(4);
        rab.try_push(req(1, 10)).unwrap();
        rab.try_push(req(2, 10)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 1);
        rab.try_push(req(3, 10)).unwrap();
        rab.try_push(req(4, 10)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 2);
        rab.try_push(req(5, 10)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 3);
        assert_eq!(rab.pop().unwrap().id, 4);
        assert_eq!(rab.pop().unwrap().id, 5);
        assert!(rab.is_empty());
    }

    #[test]
    fn tie_prefers_earlier_arrival_over_later_urgent_duplicate() {
        // An equal-deadline arrival never overtakes a waiting request.
        let mut rab = RandomAccessBuffer::with_capacity(2);
        rab.try_push(req(7, 25)).unwrap();
        rab.charge_blocking(100); // ageing must not affect the tiebreak
        rab.try_push(req(8, 25)).unwrap();
        assert_eq!(rab.pop().unwrap().id, 7);
        assert_eq!(rab.pop().unwrap().id, 8);
    }

    #[test]
    fn fifo_policy_ignores_deadlines() {
        let mut rab = RandomAccessBuffer::with_policy(4, QueuePolicy::Fifo);
        rab.try_push(req(1, 90)).unwrap();
        rab.try_push(req(2, 10)).unwrap();
        assert_eq!(rab.policy(), QueuePolicy::Fifo);
        assert_eq!(rab.pop().unwrap().id, 1, "FIFO serves arrival order");
        assert_eq!(rab.pop().unwrap().id, 2);
    }
}
