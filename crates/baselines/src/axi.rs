//! AXI-IC^RT: a centralized real-time memory interconnect.
//!
//! Per-client FIFO port buffers (AXI transactions are ordered per port)
//! feed a monolithic switch box. Each cycle the central arbiter admits the
//! earliest-deadline *port head* into the switch; admitted requests cross
//! the arbitration pipeline (latency grows logarithmically with the port
//! count — the monolithic arbiter's fan-in) and wait in a central
//! random-access queue from which the memory controller pulls in EDF order.

use crate::charge_fifo;
use bluescale_interconnect::buffer::{DelayLine, FifoBuffer};
use bluescale_interconnect::{Interconnect, MemoryRequest, MemoryResponse, ServiceEvent};
use bluescale_mem::{DramConfig, GrantCandidate, MemPolicyConfig, MemoryController, MemoryPolicy};
use bluescale_sim::Cycle;
use std::collections::VecDeque;

/// The centralized AXI-IC^RT baseline.
#[derive(Debug)]
pub struct AxiIcRt {
    ports: Vec<FifoBuffer<MemoryRequest>>,
    /// Pipeline through the monolithic switch box.
    switch: DelayLine<MemoryRequest>,
    /// Central EDF queue in front of the memory controller.
    central: Vec<MemoryRequest>,
    controller: MemoryController<MemoryRequest>,
    /// Memory-scheduling policy at the controller seam. A passive policy
    /// keeps [`feed_memory`](Self::feed_memory) on the plain EDF pull.
    policy: Box<dyn MemoryPolicy>,
    /// Central-queue pulls deferred by the policy (candidate-cycles).
    policy_deferred: u64,
    response_line: DelayLine<MemoryRequest>,
    ready: VecDeque<MemoryResponse>,
    service_events: VecDeque<ServiceEvent>,
}

impl AxiIcRt {
    /// Creates an AXI-IC^RT with `num_clients` ports, per-port buffers of
    /// `port_capacity` entries and `service_cycles` flat memory service.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` or `port_capacity` is zero.
    pub fn new(num_clients: usize, port_capacity: usize, service_cycles: u64) -> Self {
        Self::with_dram(num_clients, port_capacity, DramConfig::flat(service_cycles))
    }

    /// Creates an AXI-IC^RT backed by a full DRAM timing model (row-buffer
    /// hits and conflicts) instead of flat service.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` or `port_capacity` is zero.
    pub fn with_dram(num_clients: usize, port_capacity: usize, dram: DramConfig) -> Self {
        Self::with_dram_policy(
            num_clients,
            port_capacity,
            dram,
            &MemPolicyConfig::Unregulated,
        )
    }

    /// [`with_dram`](Self::with_dram) plus a memory-scheduling policy
    /// applied where the controller pulls from the central queue — the
    /// same seam the BlueScale engines regulate, so policy × interconnect
    /// comparisons hold the policy constant.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients` or `port_capacity` is zero.
    pub fn with_dram_policy(
        num_clients: usize,
        port_capacity: usize,
        dram: DramConfig,
        policy: &MemPolicyConfig,
    ) -> Self {
        assert!(num_clients > 0, "at least one client required");
        let arbitration_latency = Self::arbitration_latency(num_clients);
        Self {
            ports: (0..num_clients)
                .map(|_| FifoBuffer::with_capacity(port_capacity))
                .collect(),
            switch: DelayLine::new(arbitration_latency),
            central: Vec::new(),
            controller: MemoryController::new(dram),
            policy: policy.build(),
            policy_deferred: 0,
            response_line: DelayLine::new(1),
            ready: VecDeque::new(),
            service_events: VecDeque::new(),
        }
    }

    /// Central-queue pulls the policy deferred so far (candidate-cycles).
    pub fn policy_deferred(&self) -> u64 {
        self.policy_deferred
    }

    /// The memory controller's statistics (row hits, busy cycles, …).
    pub fn memory_stats(&self) -> bluescale_mem::ControllerStats {
        self.controller.stats()
    }

    /// Pipeline depth of the central arbiter: `⌈log2(n)⌉ / 2`, min 1 — the
    /// comparator tree of a monolithic n-port arbiter.
    pub fn arbitration_latency(num_clients: usize) -> Cycle {
        let bits = usize::BITS - (num_clients.max(2) - 1).leading_zeros();
        (bits as Cycle).div_ceil(2).max(1)
    }

    fn admit(&mut self, now: Cycle) {
        // Central arbiter: earliest-deadline port head is admitted.
        let winner = self
            .ports
            .iter()
            .enumerate()
            .filter_map(|(i, p)| p.front().map(|r| (r.deadline, i)))
            .min();
        if let Some((deadline, port)) = winner {
            let req = self.ports[port].pop().expect("winner has a head");
            for p in &mut self.ports {
                charge_fifo(p, deadline);
            }
            for r in &mut self.central {
                if r.deadline < deadline {
                    r.blocked_cycles += 1;
                }
            }
            self.switch.push(req, now);
        }
    }

    fn feed_memory(&mut self, now: Cycle) {
        if !self.controller.can_accept() || self.central.is_empty() {
            return;
        }
        let passive = self.policy.is_passive();
        let best = if passive {
            self.central
                .iter()
                .enumerate()
                .min_by_key(|(_, r)| r.deadline)
                .map(|(i, _)| i)
                .expect("non-empty")
        } else {
            // Show the policy each client's earliest-deadline entry (up
            // to 64 clients, in deadline order) and pull the earliest
            // non-deferred one — the central-queue analog of the trees'
            // per-port heads. One candidacy slot per client means a
            // deferred client's backlog can never crowd other clients out
            // of the window. A fully-deferred set leaves the channel idle
            // this cycle; everything stays queued, so nothing is lost.
            let mut order: Vec<(Cycle, usize)> = self
                .central
                .iter()
                .enumerate()
                .map(|(i, r)| (r.deadline, i))
                .collect();
            order.sort_unstable();
            let mut seen_clients: Vec<u32> = Vec::new();
            order.retain(|&(_, i)| {
                let client = self.central[i].client;
                if seen_clients.contains(&client) {
                    false
                } else {
                    seen_clients.push(client);
                    true
                }
            });
            order.truncate(64);
            let candidates: Vec<GrantCandidate> = order
                .iter()
                .map(|&(deadline, i)| {
                    let r = &self.central[i];
                    let (bank, _) = self.controller.decode(r.addr);
                    GrantCandidate {
                        port: i,
                        client: r.client,
                        bank,
                        deadline,
                    }
                })
                .collect();
            let defer = self.policy.defer_mask(now, &candidates);
            self.policy_deferred += defer.count_ones() as u64;
            let Some(winner) = candidates
                .iter()
                .enumerate()
                .filter(|&(slot, _)| defer & (1 << slot) == 0)
                .map(|(_, c)| c.port)
                .next()
            else {
                return;
            };
            winner
        };
        let req = self.central.swap_remove(best);
        let addr = req.addr;
        let client = req.client;
        let deadline = req.deadline;
        let class = self.policy.service_class(client);
        let duration = self.controller.accept_classed(req, addr, now, 0, class);
        if !passive {
            let (bank, _) = self.controller.decode(addr);
            self.policy.on_issue(now, client, bank);
        }
        self.service_events.push_back(ServiceEvent {
            at: now,
            deadline,
            duration,
        });
    }
}

impl Interconnect for AxiIcRt {
    fn name(&self) -> &'static str {
        "AXI-IC^RT"
    }

    fn num_clients(&self) -> usize {
        self.ports.len()
    }

    fn inject(&mut self, request: MemoryRequest, _now: Cycle) -> Result<(), MemoryRequest> {
        self.ports[request.client as usize].try_push(request)
    }

    fn step(&mut self, now: Cycle) {
        if let Some(done) = self.controller.poll_complete(now) {
            self.response_line.push(done, now);
        }
        while let Some(request) = self.response_line.pop_ready(now) {
            self.ready.push_back(MemoryResponse {
                request,
                completed_at: now,
            });
        }
        while let Some(req) = self.switch.pop_ready(now) {
            self.central.push(req);
        }
        self.feed_memory(now);
        self.admit(now);
    }

    fn pop_response(&mut self) -> Option<MemoryResponse> {
        self.ready.pop_front()
    }

    fn pop_service_event(&mut self) -> Option<ServiceEvent> {
        self.service_events.pop_front()
    }

    fn pending(&self) -> usize {
        let ports: usize = self.ports.iter().map(FifoBuffer::len).sum();
        ports
            + self.switch.len()
            + self.central.len()
            + usize::from(!self.controller.can_accept())
            + self.response_line.len()
            + self.ready.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    fn req(client: u32, id: u64, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client,
            task: 0,
            addr: id * 64,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    #[test]
    fn arbitration_latency_grows_with_ports() {
        assert_eq!(AxiIcRt::arbitration_latency(4), 1);
        assert_eq!(AxiIcRt::arbitration_latency(16), 2);
        assert_eq!(AxiIcRt::arbitration_latency(64), 3);
        assert_eq!(AxiIcRt::arbitration_latency(1), 1);
    }

    #[test]
    fn single_request_completes() {
        let mut ic = AxiIcRt::new(4, 8, 1);
        ic.inject(req(0, 1, 100), 0).unwrap();
        let mut done = None;
        for now in 0..50 {
            ic.step(now);
            if let Some(r) = ic.pop_response() {
                done = Some((now, r));
                break;
            }
        }
        let (_, resp) = done.expect("must complete");
        assert_eq!(resp.request.id, 1);
        assert_eq!(ic.pending(), 0);
    }

    #[test]
    fn edf_order_across_ports() {
        let mut ic = AxiIcRt::new(4, 8, 1);
        ic.inject(req(0, 1, 500), 0).unwrap();
        ic.inject(req(1, 2, 100), 0).unwrap();
        ic.inject(req(2, 3, 300), 0).unwrap();
        let mut order = Vec::new();
        for now in 0..100 {
            ic.step(now);
            while let Some(r) = ic.pop_response() {
                order.push(r.request.id);
            }
        }
        assert_eq!(order, vec![2, 3, 1]);
    }

    #[test]
    fn head_of_line_blocking_within_port() {
        // The early-deadline request sits behind a late one in the same
        // port FIFO: the port order wins (AXI ordering), so the other
        // port's mid-deadline request passes first.
        let mut ic = AxiIcRt::new(2, 8, 1);
        ic.inject(req(0, 1, 900), 0).unwrap(); // head of port 0
        ic.inject(req(0, 2, 10), 0).unwrap(); // stuck behind it
        ic.inject(req(1, 3, 200), 0).unwrap();
        let mut order = Vec::new();
        for now in 0..100 {
            ic.step(now);
            while let Some(r) = ic.pop_response() {
                order.push(r.request.id);
            }
        }
        assert_eq!(order[0], 3, "port 1 head has the earliest *head* deadline");
        // And request 2 accumulated blocking behind the id-1 head.
        let blocked: Vec<(u64, u64)> = Vec::new();
        drop(blocked);
    }

    #[test]
    fn per_bank_regulation_defers_but_conserves() {
        // One client hammers a single bank (default map: sequential rows
        // land on successive banks, so fixed addr stride 0 pins bank 0).
        let mut reg = AxiIcRt::with_dram_policy(
            2,
            64,
            DramConfig::flat(1),
            &MemPolicyConfig::PerBankRegulation {
                window: 100,
                budget: 2,
            },
        );
        let mut base = AxiIcRt::new(2, 64, 1);
        let mut id = 0;
        for now in 0..40 {
            id += 1;
            // All requests share bank 0 (addr 0 row) from client 0.
            let mut r = req(0, id, now + 10_000);
            r.addr = 0;
            let _ = reg.inject(r.clone(), now);
            let _ = base.inject(r, now);
            reg.step(now);
            base.step(now);
        }
        assert!(reg.policy_deferred() > 0, "budget must bite");
        assert_eq!(base.policy_deferred(), 0, "unregulated never defers");
        // Conservation: everything injected is still accounted for.
        let mut done = 0;
        for now in 40..4_000 {
            reg.step(now);
            while reg.pop_response().is_some() {
                done += 1;
            }
            if done == id {
                break;
            }
        }
        assert_eq!(done, id, "deferred requests drain, none are lost");
    }

    #[test]
    fn deferred_backlog_cannot_crowd_out_other_clients() {
        // Client 0 floods bank 0 with *early* deadlines and gets deferred
        // by a tight bank budget; its backlog of early-deadline entries
        // must not occupy every candidacy slot — client 1 (bank 1, later
        // deadlines) holds exactly one candidate slot of its own and keeps
        // being served while the rogue's bank is budget-blocked.
        let mut reg = AxiIcRt::with_dram_policy(
            2,
            64,
            DramConfig::flat(1),
            // Budget above the victim's per-window demand (20 requests)
            // and below the rogue's flood (~100), so only bank 0 defers.
            &MemPolicyConfig::PerBankRegulation {
                window: 1_000,
                budget: 25,
            },
        );
        let mut id = 0;
        let mut victim_done = 0;
        for now in 0..200 {
            // Half-rate flood: the port arbiter (one admission per cycle,
            // EDF, which always prefers the rogue's earlier deadlines)
            // still has slots left for the victim — the starvation under
            // test is at the *policy* stage, in the central queue.
            if now % 2 == 0 {
                id += 1;
                let mut rogue = req(0, id, now + 100);
                rogue.addr = 0; // bank 0
                let _ = reg.inject(rogue, now);
            }
            if now % 10 == 0 {
                id += 1;
                let mut victim = req(1, id, now + 10_000);
                victim.addr = 8192; // bank 1
                let _ = reg.inject(victim, now);
            }
            reg.step(now);
            while let Some(r) = reg.pop_response() {
                if r.request.client == 1 {
                    victim_done += 1;
                }
            }
        }
        assert!(reg.policy_deferred() > 0, "the rogue's bank must saturate");
        assert!(
            victim_done >= 15,
            "victim starved behind the deferred backlog: {victim_done} of 20"
        );
    }

    #[test]
    fn backpressure_on_full_port() {
        let mut ic = AxiIcRt::new(1, 2, 4);
        assert!(ic.inject(req(0, 1, 10), 0).is_ok());
        assert!(ic.inject(req(0, 2, 20), 0).is_ok());
        assert!(ic.inject(req(0, 3, 30), 0).is_err());
    }

    #[test]
    fn saturation_throughput_is_one_per_service() {
        let mut ic = AxiIcRt::new(2, 64, 2);
        let mut id = 0;
        let mut done = 0;
        for now in 0..400 {
            for c in 0..2 {
                id += 1;
                let _ = ic.inject(req(c, id, now + 10_000), now);
            }
            ic.step(now);
            while ic.pop_response().is_some() {
                done += 1;
            }
        }
        // Service takes 2 cycles → ~200 completions in 400 cycles.
        assert!((190..=200).contains(&done), "done = {done}");
    }

    #[test]
    fn blocking_recorded_for_hol_victims() {
        let mut ic = AxiIcRt::new(1, 8, 1);
        ic.inject(req(0, 1, 1000), 0).unwrap();
        ic.inject(req(0, 2, 5), 0).unwrap();
        let mut victim = None;
        for now in 0..50 {
            ic.step(now);
            while let Some(r) = ic.pop_response() {
                if r.request.id == 2 {
                    victim = Some(r.request.blocked_cycles);
                }
            }
        }
        assert!(victim.expect("id 2 completes") > 0);
    }
}
