//! Cycle-level simulation kernel shared by every interconnect model in the
//! BlueScale reproduction.
//!
//! This crate is deliberately small and dependency-free. It provides:
//!
//! * [`Cycle`] — the simulation time unit (one interconnect clock cycle) and
//!   the [`Clock`] that advances it and converts it to wall-clock time.
//! * [`rng::SimRng`] — a deterministic, seedable `SplitMix64` generator so
//!   every experiment is exactly reproducible from its seed.
//! * [`stats`] — online statistics (Welford mean/variance) and sample-based
//!   percentile summaries used to report latency distributions.
//! * [`trace`] — an optional bounded event trace for debugging schedules.
//! * [`metrics`] — a typed observability registry (counters, gauges,
//!   distributions, events, per-request latency breakdowns) shared by every
//!   interconnect model and consumed by the benches.
//! * [`fault`] — deterministic, cycle-keyed fault-injection plans replayed
//!   bit-identically from a seed.
//! * [`next_event`] — the conservative "nothing before cycle X" contract
//!   that lets harnesses fast-forward provably-idle stretches.
//!
//! # Example
//!
//! ```
//! use bluescale_sim::{Clock, rng::SimRng, stats::OnlineStats};
//!
//! let mut clock = Clock::with_frequency_mhz(100);
//! let mut rng = SimRng::seed_from(42);
//! let mut lat = OnlineStats::new();
//! for _ in 0..1000 {
//!     clock.tick();
//!     lat.push(rng.range_u64(1, 10) as f64);
//! }
//! assert_eq!(clock.now(), 1000);
//! assert!(lat.mean() > 1.0 && lat.mean() < 10.0);
//! ```

#![warn(missing_docs)]

pub mod fault;
pub mod metrics;
pub mod next_event;
pub mod rng;
pub mod stats;
pub mod trace;

/// Simulation time, measured in interconnect clock cycles.
///
/// All models in this workspace are cycle-driven: each component is stepped
/// once per cycle and time only ever moves forward.
pub type Cycle = u64;

/// A simulation clock: a monotone cycle counter plus a nominal frequency used
/// only for converting cycle counts into microseconds when reporting results
/// in the paper's units.
///
/// # Example
///
/// ```
/// use bluescale_sim::Clock;
///
/// let mut clock = Clock::with_frequency_mhz(100);
/// clock.advance(250);
/// assert_eq!(clock.now(), 250);
/// // 250 cycles at 100 MHz = 2.5 microseconds.
/// assert!((clock.micros(250) - 2.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clock {
    now: Cycle,
    frequency_mhz: u64,
}

impl Clock {
    /// Creates a clock at cycle 0 with the default nominal frequency
    /// (100 MHz — the clock domain the paper's latency plots assume).
    pub fn new() -> Self {
        Self::with_frequency_mhz(100)
    }

    /// Creates a clock with an explicit nominal frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `frequency_mhz` is zero.
    pub fn with_frequency_mhz(frequency_mhz: u64) -> Self {
        assert!(frequency_mhz > 0, "clock frequency must be positive");
        Self {
            now: 0,
            frequency_mhz,
        }
    }

    /// Current simulation time in cycles.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Nominal frequency in MHz used for time conversion.
    pub fn frequency_mhz(&self) -> u64 {
        self.frequency_mhz
    }

    /// Advances the clock by one cycle and returns the new time.
    pub fn tick(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances the clock by `cycles`.
    pub fn advance(&mut self, cycles: Cycle) {
        self.now += cycles;
    }

    /// Converts a cycle count to microseconds at this clock's frequency.
    pub fn micros(&self, cycles: Cycle) -> f64 {
        cycles as f64 / self.frequency_mhz as f64
    }
}

impl Default for Clock {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_starts_at_zero() {
        assert_eq!(Clock::new().now(), 0);
    }

    #[test]
    fn tick_advances_by_one() {
        let mut c = Clock::new();
        assert_eq!(c.tick(), 1);
        assert_eq!(c.tick(), 2);
        assert_eq!(c.now(), 2);
    }

    #[test]
    fn advance_moves_forward() {
        let mut c = Clock::new();
        c.advance(100);
        c.advance(23);
        assert_eq!(c.now(), 123);
    }

    #[test]
    fn micros_conversion_uses_frequency() {
        let c = Clock::with_frequency_mhz(200);
        // 400 cycles at 200 MHz = 2 us.
        assert!((c.micros(400) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = Clock::with_frequency_mhz(0);
    }

    #[test]
    fn default_matches_new() {
        assert_eq!(Clock::default(), Clock::new());
    }
}
