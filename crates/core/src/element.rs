//! The Scale Element: random-access buffers + local scheduler + interface
//! selector, wired as in Fig 2(b) of the paper.
//!
//! An SE makes one arbitration decision per cycle using only local
//! information: the occupancy of its per-port buffers and the state of its
//! server-task counters. The decision is combinational in hardware; here it
//! is [`ScaleElement::step`], which returns at most one request to forward
//! to the local provider.

use crate::rab::{QueuePolicy, RandomAccessBuffer};
use crate::scheduler::LocalScheduler;
use crate::selector::InterfaceSelector;
use crate::topology::SeIndex;
use bluescale_interconnect::MemoryRequest;
use bluescale_rt::supply::PeriodicResource;
use bluescale_sim::metrics::{ComponentId, Counter, MetricsRegistry};
use bluescale_sim::Cycle;

/// One Scale Element.
#[derive(Debug, Clone)]
pub struct ScaleElement {
    index: SeIndex,
    buffers: Vec<RandomAccessBuffer>,
    scheduler: LocalScheduler,
    selector: InterfaceSelector,
    /// The response path's demultiplexer queue (paper, Fig 2(b)): one
    /// response per cycle is routed back toward a local client port.
    responses: std::collections::VecDeque<MemoryRequest>,
}

impl ScaleElement {
    /// Creates an SE with `ports` local client ports and per-port EDF
    /// buffers of `buffer_capacity` entries.
    pub fn new(
        index: SeIndex,
        ports: usize,
        buffer_capacity: usize,
        work_conserving: bool,
    ) -> Self {
        Self::with_queue_policy(
            index,
            ports,
            buffer_capacity,
            work_conserving,
            QueuePolicy::EarliestDeadline,
        )
    }

    /// Creates an SE with an explicit low-level [`QueuePolicy`] (the
    /// nested-priority-queue ablation).
    pub fn with_queue_policy(
        index: SeIndex,
        ports: usize,
        buffer_capacity: usize,
        work_conserving: bool,
        policy: QueuePolicy,
    ) -> Self {
        Self {
            index,
            buffers: (0..ports)
                .map(|_| RandomAccessBuffer::with_policy(buffer_capacity, policy))
                .collect(),
            scheduler: LocalScheduler::new(
                ComponentId::Se {
                    depth: index.depth,
                    order: index.order,
                },
                ports,
                work_conserving,
            ),
            selector: InterfaceSelector::new(ports),
            responses: std::collections::VecDeque::new(),
        }
    }

    /// The metrics component id of this SE.
    pub fn component(&self) -> ComponentId {
        self.scheduler.component()
    }

    /// Accepts a response from the local provider into the demultiplexer.
    pub fn accept_response(&mut self, response: MemoryRequest) {
        self.responses.push_back(response);
    }

    /// Routes at most one response per cycle back toward its client: the
    /// demultiplexer is a single register stage in hardware.
    pub fn pop_response(&mut self) -> Option<MemoryRequest> {
        self.responses.pop_front()
    }

    /// Responses currently queued in the demultiplexer.
    pub fn response_occupancy(&self) -> usize {
        self.responses.len()
    }

    /// The element's position in the tree.
    pub fn index(&self) -> SeIndex {
        self.index
    }

    /// Number of local client ports.
    pub fn ports(&self) -> usize {
        self.buffers.len()
    }

    /// Mutable access to the interface selector (the parameter path).
    pub fn selector_mut(&mut self) -> &mut InterfaceSelector {
        &mut self.selector
    }

    /// Read access to the interface selector.
    pub fn selector(&self) -> &InterfaceSelector {
        &self.selector
    }

    /// Programs the scheduler's server tasks from `interfaces` (one slot
    /// per port; `None` clears the port).
    ///
    /// # Panics
    ///
    /// Panics if `interfaces.len()` differs from the port count.
    pub fn program(&mut self, interfaces: &[Option<PeriodicResource>]) {
        assert_eq!(interfaces.len(), self.ports(), "one interface per port");
        for (port, iface) in interfaces.iter().enumerate() {
            match iface {
                Some(r) => self.scheduler.program(port, *r),
                None => self.scheduler.clear(port),
            }
        }
    }

    /// Programs the scheduler's server tasks from `interfaces` through the
    /// safe mode-change protocol: changed interfaces on running servers are
    /// staged and swap at each server's own replenishment boundary, new
    /// servers program immediately, `None` clears immediately (see
    /// [`LocalScheduler::program_deferred`]). Returns the summed transition
    /// latency (cycles until every staged swap has committed, added over
    /// the affected ports).
    ///
    /// # Panics
    ///
    /// Panics if `interfaces.len()` differs from the port count.
    pub fn program_deferred(&mut self, interfaces: &[Option<PeriodicResource>]) -> u64 {
        assert_eq!(interfaces.len(), self.ports(), "one interface per port");
        interfaces
            .iter()
            .enumerate()
            .map(|(port, iface)| self.scheduler.program_deferred(port, *iface))
            .sum()
    }

    /// The interface currently programmed at `port`.
    pub fn interface(&self, port: usize) -> Option<PeriodicResource> {
        self.scheduler.interface(port)
    }

    /// Whether `port`'s buffer can accept a request this cycle.
    pub fn can_accept(&self, port: usize) -> bool {
        !self.buffers[port].is_full()
    }

    /// The request `port`'s buffer would release next (the grant
    /// candidate a memory policy inspects before arbitration), without
    /// removing it.
    pub fn peek_port(&self, port: usize) -> Option<&MemoryRequest> {
        self.buffers[port].peek()
    }

    /// Offers a request at `port`.
    ///
    /// # Errors
    ///
    /// Returns the request back when the port buffer is full.
    pub fn try_accept(&mut self, port: usize, request: MemoryRequest) -> Result<(), MemoryRequest> {
        self.buffers[port].try_push(request)
    }

    /// Advances one cycle. When `provider_ready` is true the SE may forward
    /// one request toward its local provider; the forwarded request (if
    /// any) is returned. Server counters tick regardless. Grant, throttle
    /// and forward tallies (and, when detail is on, typed events plus the
    /// granted request's lifecycle) land in `metrics` under this SE's
    /// component id.
    pub fn step(
        &mut self,
        now: Cycle,
        provider_ready: bool,
        metrics: &mut MetricsRegistry,
    ) -> Option<MemoryRequest> {
        self.step_masked(now, provider_ready, metrics, None)
    }

    /// Like [`step`](Self::step), but ports flagged in `stuck` are hidden
    /// from the scheduler this cycle — their buffered requests are not
    /// eligible for a grant, as if the grant port's handshake were held
    /// low. This is the fault layer's stuck-grant hook; `None` is the
    /// healthy path and behaves exactly like [`step`](Self::step).
    /// Masked-out ports still accrue blocking charges and their servers
    /// still tick, so time advances uniformly.
    pub fn step_masked(
        &mut self,
        now: Cycle,
        provider_ready: bool,
        metrics: &mut MetricsRegistry,
        stuck: Option<&[bool]>,
    ) -> Option<MemoryRequest> {
        let pending: Vec<bool> = self
            .buffers
            .iter()
            .enumerate()
            .map(|(p, b)| {
                !b.is_empty() && stuck.is_none_or(|m| !m.get(p).copied().unwrap_or(false))
            })
            .collect();
        let any_pending = pending.iter().any(|&p| p);
        let mut granted = None;
        if provider_ready {
            if let Some(port) = self.scheduler.select(&pending, now) {
                let request = self.buffers[port]
                    .pop()
                    .expect("selected port must have a pending request");
                self.scheduler.commit_grant(port, metrics);
                // Blocking accounting: everything still buffered with an
                // earlier deadline just lost a cycle to lower-priority
                // traffic.
                for buffer in &mut self.buffers {
                    buffer.charge_blocking(request.deadline);
                }
                metrics.inc(self.component(), Counter::Forwarded);
                metrics.request_granted(now, request.id, self.component(), port);
                granted = Some(request);
            }
        }
        self.scheduler
            .tick(any_pending && granted.is_none(), now, metrics);
        granted
    }

    /// Requests currently buffered across all ports.
    pub fn occupancy(&self) -> usize {
        self.buffers.iter().map(RandomAccessBuffer::len).sum()
    }

    /// Whether this SE is quiescent: no request buffered at any port and no
    /// response queued in the demultiplexer. A quiescent SE stepped
    /// per-cycle does nothing but tick its server counters, which is
    /// exactly what [`advance_idle`](Self::advance_idle) replays in closed
    /// form.
    pub fn is_quiescent(&self) -> bool {
        self.responses.is_empty() && self.buffers.iter().all(RandomAccessBuffer::is_empty)
    }

    /// Advances `delta` cycles across a quiescent stretch: equivalent to
    /// `delta` calls of [`step`](Self::step) with empty buffers (no grant
    /// possible, no throttle — nothing pending), collapsing to the
    /// scheduler's closed-form counter jump.
    pub fn advance_idle(&mut self, delta: Cycle, metrics: &mut MetricsRegistry) {
        debug_assert!(self.is_quiescent(), "advance_idle on a non-idle SE");
        self.scheduler.advance_idle(delta, metrics);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_interconnect::AccessKind;

    fn req(id: u64, client: u32, deadline: u64) -> MemoryRequest {
        MemoryRequest {
            id,
            client,
            task: 0,
            addr: 0,
            kind: AccessKind::Read,
            issued_at: 0,
            deadline,
            blocked_cycles: 0,
        }
    }

    fn programmed_se(ports: usize) -> ScaleElement {
        let mut se = ScaleElement::new(SeIndex::new(1, 0), ports, 8, false);
        let ifaces: Vec<Option<PeriodicResource>> = (0..ports)
            .map(|_| Some(PeriodicResource::new(4, 1).unwrap()))
            .collect();
        se.program(&ifaces);
        se
    }

    const SE: ComponentId = ComponentId::Se { depth: 1, order: 0 };

    #[test]
    fn forwards_only_when_provider_ready() {
        let mut reg = MetricsRegistry::new();
        let mut se = programmed_se(4);
        se.try_accept(0, req(1, 0, 100)).unwrap();
        assert_eq!(se.step(0, false, &mut reg), None);
        assert!(se.step(1, true, &mut reg).is_some());
    }

    #[test]
    fn idle_se_forwards_nothing() {
        let mut reg = MetricsRegistry::new();
        let mut se = programmed_se(4);
        assert_eq!(se.step(0, true, &mut reg), None);
        assert_eq!(reg.counter(SE, Counter::Forwarded), 0);
    }

    #[test]
    fn earliest_server_deadline_wins_across_ports() {
        let mut se = ScaleElement::new(SeIndex::new(1, 0), 2, 8, false);
        se.program(&[
            Some(PeriodicResource::new(10, 2).unwrap()),
            Some(PeriodicResource::new(3, 1).unwrap()),
        ]);
        se.try_accept(0, req(1, 0, 5)).unwrap();
        se.try_accept(1, req(2, 1, 500)).unwrap();
        // Port 1's server replenishes sooner (deadline 3 < 10), so its
        // request forwards first even though its request deadline is later:
        // the upper-level queue arbitrates *servers*, not requests.
        let fwd = se.step(0, true, &mut MetricsRegistry::new()).unwrap();
        assert_eq!(fwd.id, 2);
    }

    #[test]
    fn budget_exhaustion_throttles_port() {
        let mut reg = MetricsRegistry::new();
        let mut se = ScaleElement::new(SeIndex::new(1, 0), 1, 8, false);
        se.program(&[Some(PeriodicResource::new(10, 2).unwrap())]);
        for i in 0..5 {
            se.try_accept(0, req(i, 0, 100 + i)).unwrap();
        }
        let mut forwarded = 0;
        for now in 0..10 {
            if se.step(now, true, &mut reg).is_some() {
                forwarded += 1;
            }
        }
        // Budget Θ=2 per Π=10: only two forwards in the first period.
        assert_eq!(forwarded, 2);
        // Next period allows more.
        for now in 10..20 {
            if se.step(now, true, &mut reg).is_some() {
                forwarded += 1;
            }
        }
        assert_eq!(forwarded, 4);
        assert_eq!(reg.counter(SE, Counter::Forwarded), 4);
        assert!(reg.counter(SE, Counter::ThrottledCycles) > 0);
    }

    #[test]
    fn blocking_charged_to_earlier_deadlines() {
        let mut se = ScaleElement::new(SeIndex::new(1, 0), 2, 8, false);
        // Port 1 replenishes sooner → wins; port 0 has the earlier request
        // deadline → gets blocked.
        se.program(&[
            Some(PeriodicResource::new(10, 5).unwrap()),
            Some(PeriodicResource::new(2, 1).unwrap()),
        ]);
        se.try_accept(0, req(1, 0, 50)).unwrap();
        se.try_accept(1, req(2, 1, 90)).unwrap();
        let mut reg = MetricsRegistry::new();
        let first = se.step(0, true, &mut reg).unwrap();
        assert_eq!(first.id, 2, "port 1 wins on server deadline");
        // Now the remaining request carries one blocked cycle.
        let second = se.step(1, true, &mut reg).unwrap();
        assert_eq!(second.id, 1);
        assert_eq!(second.blocked_cycles, 1);
    }

    #[test]
    fn unprogrammed_ports_are_dead() {
        let mut reg = MetricsRegistry::new();
        let mut se = ScaleElement::new(SeIndex::new(0, 0), 4, 8, false);
        se.try_accept(2, req(1, 2, 10)).unwrap();
        for now in 0..20 {
            assert_eq!(se.step(now, true, &mut reg), None);
        }
    }

    #[test]
    fn occupancy_tracks_buffers() {
        let mut se = programmed_se(4);
        se.try_accept(0, req(1, 0, 10)).unwrap();
        se.try_accept(3, req(2, 3, 20)).unwrap();
        assert_eq!(se.occupancy(), 2);
        se.step(0, true, &mut MetricsRegistry::new());
        assert_eq!(se.occupancy(), 1);
    }

    #[test]
    fn step_with_detail_tracks_grant_lifecycle() {
        let mut reg = MetricsRegistry::with_detail(32);
        let mut se = programmed_se(2);
        reg.request_enqueued(0, 7, 0, se.component());
        se.try_accept(0, req(7, 0, 100)).unwrap();
        let fwd = se.step(3, true, &mut reg).unwrap();
        assert_eq!(fwd.id, 7);
        use bluescale_sim::metrics::Event;
        assert!(reg.events().iter().any(|e| matches!(
            e.event,
            Event::Grant {
                component: SE,
                port: 0,
                request: 7
            }
        )));
        let b = reg.request_completed(10, 7).expect("lifecycle tracked");
        assert_eq!(b.queueing, 3);
    }

    #[test]
    fn advance_idle_equals_idle_steps() {
        let mut stepped = programmed_se(4);
        let mut reg_s = MetricsRegistry::new();
        for now in 0..13 {
            assert_eq!(stepped.step(now, true, &mut reg_s), None);
        }
        let mut jumped = programmed_se(4);
        let mut reg_j = MetricsRegistry::new();
        assert!(jumped.is_quiescent());
        jumped.advance_idle(13, &mut reg_j);
        for port in 0..4 {
            assert_eq!(
                reg_j.counter(SE.port(port), Counter::Replenishments),
                reg_s.counter(SE.port(port), Counter::Replenishments),
                "replenishments at port {port}"
            );
            assert_eq!(
                jumped.interface(port).map(|i| i.period()),
                stepped.interface(port).map(|i| i.period())
            );
        }
        // Counter phase matches: the next request is granted at the same
        // budget state either way.
        stepped.try_accept(0, req(1, 0, 100)).unwrap();
        jumped.try_accept(0, req(2, 0, 100)).unwrap();
        assert!(!jumped.is_quiescent());
        assert_eq!(
            stepped.step(13, true, &mut reg_s).is_some(),
            jumped.step(13, true, &mut reg_j).is_some()
        );
    }

    #[test]
    #[should_panic(expected = "one interface per port")]
    fn program_wrong_arity_panics() {
        let mut se = ScaleElement::new(SeIndex::new(0, 0), 4, 8, false);
        se.program(&[None]);
    }
}
