//! Runs the scheduling-scalability extension sweep (4→256 clients) and
//! the fast-forward speedup sweep (4→4096 clients on a sparse workload),
//! writing `results/BENCH_fastforward.json`.
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin scalability -- \
//!    [--trials N] [--horizon N] [--max-clients N] [--clients a,b,c] \
//!    [--json path] [--ff-only]`
//!
//! `--max-clients` caps both sweeps' client counts (the 4096-client
//! per-cycle oracle run dominates wall-clock); `--clients` replaces the
//! fast-forward sweep's point list outright; `--ff-only` skips the
//! architecture-comparison sweep when only the JSON artefact is wanted.

use bluescale_bench::scalability::{
    render, render_fastforward_json, render_fastforward_table, run, run_fastforward,
    FastForwardConfig, ScalabilityConfig,
};
use bluescale_bench::{arg_u64, arg_usize, arg_usize_list, arg_value};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let max_clients = arg_usize(&args, "--max-clients", usize::MAX);
    let ff_only = args.iter().any(|a| a == "--ff-only");

    if !ff_only {
        let mut config = ScalabilityConfig::default();
        config.trials = arg_u64(&args, "--trials", config.trials);
        config.horizon = arg_u64(&args, "--horizon", config.horizon);
        config.client_counts.retain(|&c| c <= max_clients);
        if !config.client_counts.is_empty() {
            let points = run(&config);
            println!("{}", render(&config, &points));
        }
    }

    let mut ff = FastForwardConfig::default();
    ff.client_counts = arg_usize_list(&args, "--clients", &ff.client_counts);
    ff.client_counts.retain(|&c| c <= max_clients);
    if ff.client_counts.is_empty() {
        return;
    }
    println!(
        "# Fast-forward speedup (sparse workload, {} requests/job)\n",
        ff.demand
    );
    let points = run_fastforward(&ff);
    println!("{}", render_fastforward_table(&points));

    let json = render_fastforward_json(&ff, &points);
    let out =
        arg_value(&args, "--json").unwrap_or_else(|| "results/BENCH_fastforward.json".to_string());
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {out}"),
        Err(e) => {
            eprintln!("could not write {out}: {e}");
            println!("{json}");
        }
    }
}
