//! The explicit-deadline periodic (EDP) resource model — an extension
//! beyond the paper.
//!
//! Shin & Lee's periodic model `(Π, Θ)` (which the paper uses) allows the
//! budget to land anywhere in the period, giving a worst-case blackout of
//! `2(Π − Θ)`. Easwaran, Shin & Lee's **EDP** model `(Π, Θ, Δ)` commits to
//! delivering the budget within a deadline `Δ ≤ Π` after each period
//! start, shrinking the blackout to `Π + Δ − 2Θ`. The result is less
//! bandwidth inflation for the same guarantees — the "compositional
//! abstraction overhead" the admission experiment measures.
//!
//! In BlueScale hardware terms an EDP server is the same P/B counter pair
//! plus a deadline register: the GEDF comparator uses `period start + Δ`
//! instead of the next replenishment instant. This module provides the
//! *analysis* side so the overhead reduction can be quantified; the
//! default runtime keeps the paper's periodic servers.
//!
//! Note the hierarchical trade-off: a tighter supply deadline `Δ` makes
//! the *exported* server task a constrained-deadline task (`C = Θ`,
//! `D = Δ`, `T = Π`), which is harder for the level above to serve. The
//! leaf-level bandwidth savings reported by the admission experiment are
//! therefore an upper bound on the end-to-end benefit.

use crate::demand::{change_points, dbf_set};
use crate::schedulability::MAX_TEST_POINTS;
use crate::task::TaskSet;
use crate::{Error, Time};

/// An EDP resource `(Π, Θ, Δ)`: `Θ` units are guaranteed within `Δ` of
/// each period start, `Θ ≤ Δ ≤ Π`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdpResource {
    period: Time,
    budget: Time,
    deadline: Time,
}

impl EdpResource {
    /// Creates an EDP resource; `None` unless `0 < Θ ≤ Δ ≤ Π`.
    pub fn new(period: Time, budget: Time, deadline: Time) -> Option<Self> {
        if period == 0 || budget == 0 || budget > deadline || deadline > period {
            None
        } else {
            Some(Self {
                period,
                budget,
                deadline,
            })
        }
    }

    /// The replenishment period `Π`.
    pub fn period(&self) -> Time {
        self.period
    }

    /// The budget `Θ`.
    pub fn budget(&self) -> Time {
        self.budget
    }

    /// The supply deadline `Δ`.
    pub fn deadline(&self) -> Time {
        self.deadline
    }

    /// Bandwidth `Θ/Π`.
    pub fn bandwidth(&self) -> f64 {
        self.budget as f64 / self.period as f64
    }

    /// Supply bound function of the EDP model (Easwaran et al. 2007):
    /// worst-case blackout `Π + Δ − 2Θ`, then `Θ` per period with a
    /// unit-rate ramp inside each delivery window.
    pub fn sbf(&self, t: Time) -> Time {
        let blackout = self.period + self.deadline - 2 * self.budget;
        if t < blackout {
            return 0;
        }
        let t_prime = t - blackout;
        let full = t_prime / self.period;
        let into = t_prime % self.period;
        full * self.budget + into.min(self.budget)
    }

    /// Exact bandwidth comparison via cross-multiplication.
    pub fn bandwidth_lt(&self, other: &EdpResource) -> bool {
        (self.budget as u128) * (other.period as u128)
            < (other.budget as u128) * (self.period as u128)
    }
}

/// EDF schedulability of `set` on an EDP resource: `dbf(t) ≤ sbf(t)` at
/// all demand change points below the utilization-slack horizon (same
/// argument as Theorem 1, with the EDP blackout).
pub fn is_schedulable_edp(set: &TaskSet, resource: &EdpResource) -> bool {
    if set.is_empty() {
        return true;
    }
    let bw = resource.bandwidth();
    let u = set.utilization();
    let k = set.density_excess();
    if bw <= u {
        return bw >= 1.0 - 1e-12 && k == 0.0;
    }
    let blackout = (resource.period + resource.deadline - 2 * resource.budget) as f64;
    let beta = (k + bw * blackout) / (bw - u) + blackout;
    let horizon = beta.ceil() as Time;
    let estimated: u64 = set.iter().map(|tau| horizon / tau.period()).sum();
    if estimated > MAX_TEST_POINTS {
        return false;
    }
    change_points(set, horizon)
        .into_iter()
        .all(|t| dbf_set(set, t) <= resource.sbf(t))
}

/// Minimum-bandwidth EDP interface for `set`: for each candidate `Π`
/// (bounded by the set's smallest deadline), the minimal `Θ` with the most
/// aggressive supply deadline `Δ = Θ` is searched — the EDP configuration
/// with the smallest possible blackout for a given bandwidth.
///
/// # Errors
///
/// Returns [`Error::NoFeasibleInterface`] for an empty set or when no
/// candidate admits the set.
pub fn select_interface_edp(set: &TaskSet) -> Result<EdpResource, Error> {
    select_interface_edp_with_laxity(set, 0.0)
}

/// Like [`select_interface_edp`], but with a configurable supply-deadline
/// *laxity* `λ ∈ [0, 1]`: the interface's deadline is
/// `Δ = Θ + ⌊λ·(Π − Θ)⌋`. `λ = 0` is the tightest supply contract
/// (smallest blackout, hardest for the level above); `λ = 1` degenerates
/// to the paper's periodic model. Sweeping λ locates the hierarchical
/// optimum between the two.
///
/// # Errors
///
/// Returns [`Error::NoFeasibleInterface`] for an empty set or when no
/// candidate admits the set.
///
/// # Panics
///
/// Panics if `laxity` is outside `[0, 1]`.
pub fn select_interface_edp_with_laxity(set: &TaskSet, laxity: f64) -> Result<EdpResource, Error> {
    assert!((0.0..=1.0).contains(&laxity), "laxity must be in [0, 1]");
    if set.is_empty() {
        return Err(Error::NoFeasibleInterface);
    }
    let max_period = set
        .min_deadline()
        .expect("non-empty set")
        .clamp(1, crate::interface::MAX_PERIOD_CANDIDATES);
    let mut best: Option<EdpResource> = None;
    for period in 1..=max_period {
        // Θ monotone: both the budget and (for fixed λ) the shrinking
        // blackout increase the supply, so binary search applies.
        let delta_for = |theta: Time| theta + ((laxity * (period - theta) as f64).floor() as Time);
        let feasible = |theta: Time| {
            EdpResource::new(period, theta, delta_for(theta))
                .is_some_and(|r| is_schedulable_edp(set, &r))
        };
        if !feasible(period) {
            continue;
        }
        let mut lo = ((set.utilization() * period as f64).ceil() as Time).max(1);
        let mut hi = period;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let candidate = EdpResource::new(period, lo, delta_for(lo)).expect("validated");
        best = match best {
            None => Some(candidate),
            Some(b) if candidate.bandwidth_lt(&b) => Some(candidate),
            Some(b) => Some(b),
        };
    }
    best.ok_or(Error::NoFeasibleInterface)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interface::{select_interface, SelectionContext};
    use crate::supply::PeriodicResource;
    use crate::task::Task;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn new_validates_ordering() {
        assert!(EdpResource::new(10, 3, 5).is_some());
        assert!(EdpResource::new(10, 3, 3).is_some());
        assert!(EdpResource::new(10, 3, 2).is_none()); // Δ < Θ
        assert!(EdpResource::new(10, 3, 11).is_none()); // Δ > Π
        assert!(EdpResource::new(10, 0, 5).is_none());
    }

    #[test]
    fn edp_with_deadline_equal_period_matches_periodic_blackout() {
        // Δ = Π degenerates to the periodic model's blackout 2(Π−Θ).
        let edp = EdpResource::new(10, 4, 10).unwrap();
        let periodic = PeriodicResource::new(10, 4).unwrap();
        for t in 0..13 {
            // Both are 0 throughout the shared blackout.
            assert_eq!(edp.sbf(t) == 0, periodic.sbf(t) == 0, "t = {t}");
        }
    }

    #[test]
    fn edp_sbf_monotone_and_rate_bounded() {
        let r = EdpResource::new(9, 4, 6).unwrap();
        for t in 0..300 {
            assert!(r.sbf(t + 1) >= r.sbf(t));
            assert!(r.sbf(t + 1) - r.sbf(t) <= 1);
        }
    }

    #[test]
    fn edp_dominates_periodic_supply() {
        // Same (Π, Θ): committing to an earlier supply deadline can only
        // increase the guaranteed supply.
        for (p, b) in [(10u64, 4u64), (7, 3), (12, 5)] {
            let periodic = PeriodicResource::new(p, b).unwrap();
            let edp = EdpResource::new(p, b, b).unwrap();
            for t in 0..300 {
                assert!(
                    edp.sbf(t) >= periodic.sbf(t),
                    "EDP supply below periodic at Π={p}, Θ={b}, t={t}"
                );
            }
        }
    }

    #[test]
    fn edp_interface_never_costs_more_bandwidth() {
        let sets = [
            set(&[(20, 2), (50, 5)]),
            set(&[(12, 3)]),
            set(&[(40, 4), (60, 6), (100, 5)]),
        ];
        for s in &sets {
            let periodic = select_interface(s, &SelectionContext::isolated(s)).expect("feasible");
            let edp = select_interface_edp(s).expect("feasible");
            assert!(
                edp.bandwidth() <= periodic.bandwidth() + 1e-12,
                "EDP {} vs periodic {} for {s:?}",
                edp.bandwidth(),
                periodic.bandwidth()
            );
            assert!(is_schedulable_edp(s, &edp));
        }
    }

    #[test]
    fn edp_admits_what_its_sbf_covers() {
        let s = set(&[(10, 2)]);
        // Periodic (8, 2) has blackout 12 > deadline 10: unschedulable.
        let periodic = PeriodicResource::new(8, 2).unwrap();
        assert!(!crate::schedulability::is_schedulable(&s, &periodic));
        // EDP (8, 2, 2) has blackout 8 − 2 = 6 < 10 and supplies 2 by 8:
        let edp = EdpResource::new(8, 2, 2).unwrap();
        assert_eq!(edp.sbf(10), 2);
        assert!(is_schedulable_edp(&s, &edp));
    }

    #[test]
    fn laxity_one_matches_periodic_behaviour() {
        // λ = 1 → Δ = Π: the EDP sbf equals the periodic sbf, so the
        // selected bandwidth matches the periodic selection (same Π cap).
        let s = set(&[(30, 3), (50, 5)]);
        let relaxed = select_interface_edp_with_laxity(&s, 1.0).expect("feasible");
        assert_eq!(relaxed.deadline(), relaxed.period());
        let tight = select_interface_edp_with_laxity(&s, 0.0).expect("feasible");
        assert!(tight.bandwidth() <= relaxed.bandwidth() + 1e-12);
    }

    #[test]
    #[should_panic(expected = "laxity must be in")]
    fn bad_laxity_panics() {
        let s = set(&[(10, 1)]);
        let _ = select_interface_edp_with_laxity(&s, 1.5);
    }

    #[test]
    fn empty_set_has_no_interface() {
        assert_eq!(
            select_interface_edp(&TaskSet::empty()).unwrap_err(),
            Error::NoFeasibleInterface
        );
    }
}
