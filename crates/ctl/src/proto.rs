//! Wire protocol for the control-plane daemon.
//!
//! Frames are length-prefixed: `[u32 le length][payload]`, with the
//! length bounded by [`MAX_FRAME`] so a corrupt or hostile peer cannot
//! make the daemon allocate unbounded memory. Payloads are hand-rolled
//! tagged encodings (one leading tag byte, little-endian fixed-width
//! integers) — the workspace carries no serialization dependency, and the
//! protocol is small enough that an explicit byte layout doubles as its
//! specification (DESIGN.md §15).
//!
//! The conversation is strictly request/response per connection: a client
//! writes one [`Request`] frame and reads exactly one [`Response`] frame
//! before writing the next. Admission requests carry an `attempt`
//! counter so the daemon can tally deadline-aware retries
//! (`Counter::Retries`) without trusting wall-clock correlation.

use std::fmt;
use std::io::{self, ErrorKind, Read, Write};

/// Hard upper bound on a frame payload, in bytes.
pub const MAX_FRAME: u32 = 64 * 1024;

/// Most tasks a single tenant may declare in one request.
pub const MAX_TASKS: u32 = 64;

/// Service class a tenant negotiates at join time. Guaranteed tenants are
/// shed last and their admissions must complete within the request
/// deadline even at overload; best-effort tenants absorb the shedding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TenantClass {
    /// Shed last; the overload bench asserts zero misses for this class.
    Guaranteed,
    /// Shed first under pressure.
    BestEffort,
}

impl TenantClass {
    fn to_byte(self) -> u8 {
        match self {
            TenantClass::Guaranteed => 0,
            TenantClass::BestEffort => 1,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(TenantClass::Guaranteed),
            1 => Ok(TenantClass::BestEffort),
            other => Err(ProtoError::BadTag(other)),
        }
    }

    /// Short stable name used in logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            TenantClass::Guaranteed => "guaranteed",
            TenantClass::BestEffort => "best-effort",
        }
    }
}

/// One periodic task as declared over the wire (implicit deadline =
/// period, matching [`bluescale_rt::task::Task::new`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TaskSpec {
    /// Release period in cycles.
    pub period: u64,
    /// Worst-case execution (service) demand per job, in cycles.
    pub wcet: u64,
}

/// A client-to-daemon message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`] without touching
    /// the admission queue.
    Ping,
    /// Admit `tenant` with the declared task set. Idempotent: retrying an
    /// already-applied join with identical parameters re-reports the
    /// original admission instead of failing.
    Join {
        /// Caller-chosen stable tenant identity.
        tenant: u64,
        /// Service class, fixed for the tenant's lifetime.
        class: TenantClass,
        /// Declared periodic demand.
        tasks: Vec<TaskSpec>,
        /// 0 on the first send, incremented per client-side retry.
        attempt: u32,
    },
    /// Replace the tenant's declared task set (a software mode change;
    /// must pass admission before taking effect).
    Renegotiate {
        /// The tenant being renegotiated.
        tenant: u64,
        /// The replacement task set.
        tasks: Vec<TaskSpec>,
        /// 0 on the first send, incremented per client-side retry.
        attempt: u32,
    },
    /// Release the tenant's reservation. Never shed.
    Leave {
        /// The tenant leaving.
        tenant: u64,
        /// 0 on the first send, incremented per client-side retry.
        attempt: u32,
    },
    /// Read the tenant's own miss/latency stream from the sim registry.
    Stats {
        /// The tenant whose stream is requested.
        tenant: u64,
    },
    /// Switch this connection into a one-way telemetry stream for the
    /// tenant's own SLO series. The daemon answers with
    /// [`Response::Subscribed`] and then pushes [`Response::Telemetry`]
    /// frames on every flush epoch until the client disconnects. A slow
    /// reader is shed (updates dropped, `subscriber_lagged` counted) —
    /// never allowed to backpressure the simulation.
    Subscribe {
        /// The tenant whose stream is requested (must be admitted).
        tenant: u64,
    },
}

impl Request {
    /// Client-side retry attempt carried by admission requests (0 for the
    /// read-only requests).
    pub fn attempt(&self) -> u32 {
        match *self {
            Request::Join { attempt, .. }
            | Request::Renegotiate { attempt, .. }
            | Request::Leave { attempt, .. } => attempt,
            Request::Ping | Request::Stats { .. } | Request::Subscribe { .. } => 0,
        }
    }

    /// Short stable name used in logs and exports.
    pub fn name(&self) -> &'static str {
        match self {
            Request::Ping => "ping",
            Request::Join { .. } => "join",
            Request::Renegotiate { .. } => "renegotiate",
            Request::Leave { .. } => "leave",
            Request::Stats { .. } => "stats",
            Request::Subscribe { .. } => "subscribe",
        }
    }

    /// Encodes the payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Request::Ping => buf.push(0),
            Request::Join {
                tenant,
                class,
                tasks,
                attempt,
            } => {
                buf.push(1);
                put_u64(&mut buf, *tenant);
                buf.push(class.to_byte());
                put_u32(&mut buf, *attempt);
                put_tasks(&mut buf, tasks);
            }
            Request::Renegotiate {
                tenant,
                tasks,
                attempt,
            } => {
                buf.push(2);
                put_u64(&mut buf, *tenant);
                put_u32(&mut buf, *attempt);
                put_tasks(&mut buf, tasks);
            }
            Request::Leave { tenant, attempt } => {
                buf.push(3);
                put_u64(&mut buf, *tenant);
                put_u32(&mut buf, *attempt);
            }
            Request::Stats { tenant } => {
                buf.push(4);
                put_u64(&mut buf, *tenant);
            }
            Request::Subscribe { tenant } => {
                buf.push(5);
                put_u64(&mut buf, *tenant);
            }
        }
        buf
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let req = match c.take_u8()? {
            0 => Request::Ping,
            1 => {
                let tenant = c.take_u64()?;
                let class = TenantClass::from_byte(c.take_u8()?)?;
                let attempt = c.take_u32()?;
                let tasks = take_tasks(&mut c)?;
                Request::Join {
                    tenant,
                    class,
                    tasks,
                    attempt,
                }
            }
            2 => {
                let tenant = c.take_u64()?;
                let attempt = c.take_u32()?;
                let tasks = take_tasks(&mut c)?;
                Request::Renegotiate {
                    tenant,
                    tasks,
                    attempt,
                }
            }
            3 => Request::Leave {
                tenant: c.take_u64()?,
                attempt: c.take_u32()?,
            },
            4 => Request::Stats {
                tenant: c.take_u64()?,
            },
            5 => Request::Subscribe {
                tenant: c.take_u64()?,
            },
            other => return Err(ProtoError::BadTag(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

/// Why the daemon refused an admission request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The root admission test `Σ Θ/Π ≤ 1` failed for the composition.
    Inadmissible,
    /// The tenant is not currently admitted.
    UnknownTenant,
    /// A join for an already-admitted tenant with different parameters.
    AlreadyJoined,
    /// Every tenant slot is occupied.
    CapacityFull,
    /// The tenant's circuit breaker is open (flapping → quarantined).
    Quarantined,
    /// The declared tasks are empty, too many, or fail validation.
    InvalidTasks,
}

impl RejectReason {
    fn to_byte(self) -> u8 {
        match self {
            RejectReason::Inadmissible => 0,
            RejectReason::UnknownTenant => 1,
            RejectReason::AlreadyJoined => 2,
            RejectReason::CapacityFull => 3,
            RejectReason::Quarantined => 4,
            RejectReason::InvalidTasks => 5,
        }
    }

    fn from_byte(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => RejectReason::Inadmissible,
            1 => RejectReason::UnknownTenant,
            2 => RejectReason::AlreadyJoined,
            3 => RejectReason::CapacityFull,
            4 => RejectReason::Quarantined,
            5 => RejectReason::InvalidTasks,
            other => return Err(ProtoError::BadTag(other)),
        })
    }

    /// Short stable name used in logs and exports.
    pub fn name(self) -> &'static str {
        match self {
            RejectReason::Inadmissible => "inadmissible",
            RejectReason::UnknownTenant => "unknown-tenant",
            RejectReason::AlreadyJoined => "already-joined",
            RejectReason::CapacityFull => "capacity-full",
            RejectReason::Quarantined => "quarantined",
            RejectReason::InvalidTasks => "invalid-tasks",
        }
    }
}

/// Per-tenant counters and latency tail returned by [`Request::Stats`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TenantStats {
    /// Requests the tenant's traffic generator issued.
    pub issued: u64,
    /// Requests that completed service.
    pub completed: u64,
    /// Deadline misses.
    pub missed: u64,
    /// p99 of the tenant's end-to-end latency samples (0 if none yet).
    pub p99_latency: f64,
}

/// One pushed telemetry epoch for a subscribed tenant: cumulative
/// counters plus the SLO values derived at the flush boundary
/// (windowed over the daemon's configured number of recent epochs).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryUpdate {
    /// The subscribed tenant (caller-chosen identity, not the slot).
    pub tenant: u64,
    /// Monotone flush epoch within the daemon's pipeline.
    pub epoch: u64,
    /// Simulation cycle of the flush.
    pub cycle: u64,
    /// Requests issued, cumulative.
    pub issued: u64,
    /// Requests completed, cumulative.
    pub completed: u64,
    /// Deadline misses, cumulative.
    pub missed: u64,
    /// Windowed miss rate (`slo_miss_rate`).
    pub miss_rate: f64,
    /// Windowed p99 normalized response time (`slo_p99_normalized`).
    pub p99_normalized: f64,
    /// Windowed budget-overrun rate (`slo_overrun_rate`).
    pub overrun_rate: f64,
}

/// A daemon-to-client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// The admission request was applied and is durable in the journal.
    Admitted {
        /// Journal sequence number of the committed operation.
        seq: u64,
        /// Mode-change transition latency reported by the interconnect.
        transition_cycles: u64,
    },
    /// The admission request was refused (never silently dropped).
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// The request was shed by tiered overload control before reaching
    /// the admission queue; the client may retry after backoff.
    Shed {
        /// Shedding tier that fired (0 = shed first).
        tier: u8,
    },
    /// The request's queueing deadline expired before the admission
    /// worker reached it.
    TimedOut,
    /// Answer to [`Request::Stats`].
    Stats(TenantStats),
    /// Daemon-side failure (journal I/O, internal shutdown).
    Err {
        /// Coarse error code; 1 = internal, 2 = journal write failed,
        /// 3 = telemetry streaming disabled on this daemon.
        code: u16,
    },
    /// Answer to [`Request::Subscribe`]: the stream is live; every
    /// following frame on this connection is [`Response::Telemetry`].
    Subscribed,
    /// One pushed telemetry epoch (only after [`Response::Subscribed`]).
    Telemetry(TelemetryUpdate),
}

impl Response {
    /// Encodes the payload (without the frame length prefix).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::new();
        match self {
            Response::Pong => buf.push(0),
            Response::Admitted {
                seq,
                transition_cycles,
            } => {
                buf.push(1);
                put_u64(&mut buf, *seq);
                put_u64(&mut buf, *transition_cycles);
            }
            Response::Rejected { reason } => {
                buf.push(2);
                buf.push(reason.to_byte());
            }
            Response::Shed { tier } => {
                buf.push(3);
                buf.push(*tier);
            }
            Response::TimedOut => buf.push(4),
            Response::Stats(s) => {
                buf.push(5);
                put_u64(&mut buf, s.issued);
                put_u64(&mut buf, s.completed);
                put_u64(&mut buf, s.missed);
                put_u64(&mut buf, s.p99_latency.to_bits());
            }
            Response::Err { code } => {
                buf.push(6);
                buf.extend_from_slice(&code.to_le_bytes());
            }
            Response::Subscribed => buf.push(7),
            Response::Telemetry(u) => {
                buf.push(8);
                put_u64(&mut buf, u.tenant);
                put_u64(&mut buf, u.epoch);
                put_u64(&mut buf, u.cycle);
                put_u64(&mut buf, u.issued);
                put_u64(&mut buf, u.completed);
                put_u64(&mut buf, u.missed);
                put_u64(&mut buf, u.miss_rate.to_bits());
                put_u64(&mut buf, u.p99_normalized.to_bits());
                put_u64(&mut buf, u.overrun_rate.to_bits());
            }
        }
        buf
    }

    /// Decodes a payload produced by [`encode`](Self::encode).
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let resp = match c.take_u8()? {
            0 => Response::Pong,
            1 => Response::Admitted {
                seq: c.take_u64()?,
                transition_cycles: c.take_u64()?,
            },
            2 => Response::Rejected {
                reason: RejectReason::from_byte(c.take_u8()?)?,
            },
            3 => Response::Shed { tier: c.take_u8()? },
            4 => Response::TimedOut,
            5 => Response::Stats(TenantStats {
                issued: c.take_u64()?,
                completed: c.take_u64()?,
                missed: c.take_u64()?,
                p99_latency: f64::from_bits(c.take_u64()?),
            }),
            6 => Response::Err {
                code: u16::from_le_bytes([c.take_u8()?, c.take_u8()?]),
            },
            7 => Response::Subscribed,
            8 => Response::Telemetry(TelemetryUpdate {
                tenant: c.take_u64()?,
                epoch: c.take_u64()?,
                cycle: c.take_u64()?,
                issued: c.take_u64()?,
                completed: c.take_u64()?,
                missed: c.take_u64()?,
                miss_rate: f64::from_bits(c.take_u64()?),
                p99_normalized: f64::from_bits(c.take_u64()?),
                overrun_rate: f64::from_bits(c.take_u64()?),
            }),
            other => return Err(ProtoError::BadTag(other)),
        };
        c.finish()?;
        Ok(resp)
    }
}

/// Decode/validation failure for a frame payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// The payload ended before the advertised fields.
    Truncated,
    /// The payload continued past the last field.
    TrailingBytes,
    /// Unknown tag or enum discriminant.
    BadTag(u8),
    /// Frame length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// Task count exceeds [`MAX_TASKS`].
    TooManyTasks(u32),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "payload truncated"),
            ProtoError::TrailingBytes => write!(f, "payload has trailing bytes"),
            ProtoError::BadTag(t) => write!(f, "unknown tag {t}"),
            ProtoError::FrameTooLarge(n) => {
                write!(f, "frame length {n} exceeds the {MAX_FRAME}-byte bound")
            }
            ProtoError::TooManyTasks(n) => {
                write!(f, "task count {n} exceeds the {MAX_TASKS}-task bound")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<ProtoError> for io::Error {
    fn from(e: ProtoError) -> Self {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// Writes one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    debug_assert!(payload.len() <= MAX_FRAME as usize);
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame, rejecting oversized prefixes before
/// allocating.
///
/// Uses `read_exact`, whose contract leaves consumed bytes unspecified on
/// error — so this is only safe on streams where an error means the
/// connection is abandoned. A reader that must *survive* read timeouts
/// mid-frame (the daemon's per-connection handler) needs [`FrameReader`],
/// which buffers partial progress across calls.
pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(ProtoError::FrameTooLarge(len).into());
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Incremental frame reader that survives read timeouts mid-frame.
///
/// A bounded read timeout can fire after part of the length prefix or
/// payload has been consumed; restarting `read_frame` at that point would
/// desynchronize the framing and turn a slow-but-healthy peer's bytes
/// into garbage requests. `FrameReader` keeps partial progress across
/// calls instead: a `WouldBlock`/`TimedOut` error yields `Ok(None)` with
/// every consumed byte retained, and the next call resumes exactly where
/// the stream paused.
#[derive(Debug)]
pub struct FrameReader {
    /// Bytes being filled: the 4-byte length prefix, then the payload.
    buf: Vec<u8>,
    filled: usize,
    in_payload: bool,
}

impl Default for FrameReader {
    fn default() -> Self {
        Self::new()
    }
}

impl FrameReader {
    /// A reader positioned at a frame boundary.
    pub fn new() -> Self {
        FrameReader {
            buf: vec![0; 4],
            filled: 0,
            in_payload: false,
        }
    }

    /// True when part of a frame has been consumed (a timeout now means
    /// a slow peer mid-frame, not an idle connection).
    pub fn mid_frame(&self) -> bool {
        self.in_payload || self.filled > 0
    }

    /// Drives the reader forward. Returns `Ok(Some(payload))` once a
    /// whole frame is buffered, `Ok(None)` on a read timeout (state
    /// preserved; call again), and `Err` on disconnect, oversized frame
    /// or I/O failure.
    pub fn read(&mut self, r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
        loop {
            while self.filled < self.buf.len() {
                match r.read(&mut self.buf[self.filled..]) {
                    Ok(0) => {
                        return Err(io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "stream closed before the frame completed",
                        ))
                    }
                    Ok(n) => self.filled += n,
                    Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                        return Ok(None)
                    }
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(e),
                }
            }
            if self.in_payload {
                let payload = std::mem::replace(&mut self.buf, vec![0; 4]);
                self.filled = 0;
                self.in_payload = false;
                return Ok(Some(payload));
            }
            let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes"));
            if len > MAX_FRAME {
                return Err(ProtoError::FrameTooLarge(len).into());
            }
            self.buf = vec![0; len as usize];
            self.filled = 0;
            self.in_payload = true;
        }
    }
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_tasks(buf: &mut Vec<u8>, tasks: &[TaskSpec]) {
    put_u32(buf, tasks.len() as u32);
    for t in tasks {
        put_u64(buf, t.period);
        put_u64(buf, t.wcet);
    }
}

pub(crate) fn take_tasks(c: &mut Cursor<'_>) -> Result<Vec<TaskSpec>, ProtoError> {
    let n = c.take_u32()?;
    if n > MAX_TASKS {
        return Err(ProtoError::TooManyTasks(n));
    }
    let mut tasks = Vec::with_capacity(n as usize);
    for _ in 0..n {
        tasks.push(TaskSpec {
            period: c.take_u64()?,
            wcet: c.take_u64()?,
        });
    }
    Ok(tasks)
}

/// Bounds-checked payload reader shared by the protocol and the journal.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn take_u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.buf.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    pub(crate) fn take_u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.pos.checked_add(4).ok_or(ProtoError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    pub(crate) fn take_u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.pos.checked_add(8).ok_or(ProtoError::Truncated)?;
        let bytes = self.buf.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Asserts the payload was consumed exactly.
    pub(crate) fn finish(self) -> Result<(), ProtoError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_request(req: Request) {
        let bytes = req.encode();
        assert_eq!(Request::decode(&bytes).expect("decodes"), req);
    }

    fn roundtrip_response(resp: Response) {
        let bytes = resp.encode();
        assert_eq!(Response::decode(&bytes).expect("decodes"), resp);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip_request(Request::Ping);
        roundtrip_request(Request::Join {
            tenant: 42,
            class: TenantClass::Guaranteed,
            tasks: vec![
                TaskSpec {
                    period: 400,
                    wcet: 3,
                },
                TaskSpec {
                    period: 1000,
                    wcet: 7,
                },
            ],
            attempt: 2,
        });
        roundtrip_request(Request::Renegotiate {
            tenant: 7,
            tasks: vec![TaskSpec {
                period: 250,
                wcet: 1,
            }],
            attempt: 0,
        });
        roundtrip_request(Request::Leave {
            tenant: u64::MAX,
            attempt: 1,
        });
        roundtrip_request(Request::Stats { tenant: 3 });
        roundtrip_request(Request::Subscribe { tenant: 11 });
    }

    #[test]
    fn responses_roundtrip() {
        roundtrip_response(Response::Pong);
        roundtrip_response(Response::Admitted {
            seq: 9,
            transition_cycles: 128,
        });
        for reason in [
            RejectReason::Inadmissible,
            RejectReason::UnknownTenant,
            RejectReason::AlreadyJoined,
            RejectReason::CapacityFull,
            RejectReason::Quarantined,
            RejectReason::InvalidTasks,
        ] {
            roundtrip_response(Response::Rejected { reason });
        }
        roundtrip_response(Response::Shed { tier: 3 });
        roundtrip_response(Response::TimedOut);
        roundtrip_response(Response::Stats(TenantStats {
            issued: 10,
            completed: 9,
            missed: 1,
            p99_latency: 123.5,
        }));
        roundtrip_response(Response::Err { code: 2 });
        roundtrip_response(Response::Subscribed);
        roundtrip_response(Response::Telemetry(TelemetryUpdate {
            tenant: 11,
            epoch: 4,
            cycle: 8192,
            issued: 40,
            completed: 39,
            missed: 1,
            miss_rate: 0.025,
            p99_normalized: 1.75,
            overrun_rate: 0.0,
        }));
    }

    #[test]
    fn truncated_payloads_are_rejected_not_panicked() {
        let full = Request::Join {
            tenant: 1,
            class: TenantClass::BestEffort,
            tasks: vec![TaskSpec {
                period: 100,
                wcet: 2,
            }],
            attempt: 0,
        }
        .encode();
        for cut in 0..full.len() {
            let err = Request::decode(&full[..cut]).expect_err("truncation must fail");
            assert!(
                matches!(err, ProtoError::Truncated | ProtoError::BadTag(_)),
                "cut={cut}: {err:?}"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Request::Ping.encode();
        bytes.push(0xFF);
        assert_eq!(Request::decode(&bytes), Err(ProtoError::TrailingBytes));
    }

    #[test]
    fn oversized_frames_are_refused_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let err = read_frame(&mut buf.as_slice()).expect_err("too large");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn task_count_is_bounded() {
        let mut buf = vec![2u8]; // Renegotiate
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        buf.extend_from_slice(&(MAX_TASKS + 1).to_le_bytes());
        assert_eq!(
            Request::decode(&buf),
            Err(ProtoError::TooManyTasks(MAX_TASKS + 1))
        );
    }

    #[test]
    fn frames_roundtrip_over_a_byte_stream() {
        let payload = Request::Stats { tenant: 5 }.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");
        let got = read_frame(&mut wire.as_slice()).expect("read");
        assert_eq!(got, payload);
    }

    /// Yields the wire bytes one at a time, with a timeout error between
    /// every delivered byte — the worst-case slow peer.
    struct TrickleReader {
        wire: Vec<u8>,
        pos: usize,
        ready: bool,
    }

    impl Read for TrickleReader {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            if !self.ready {
                self.ready = true;
                return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
            }
            self.ready = false;
            if self.pos == self.wire.len() {
                return Ok(0);
            }
            buf[0] = self.wire[self.pos];
            self.pos += 1;
            Ok(1)
        }
    }

    #[test]
    fn frame_reader_survives_timeouts_mid_frame() {
        let requests = [
            Request::Join {
                tenant: 3,
                class: TenantClass::Guaranteed,
                tasks: vec![TaskSpec {
                    period: 400,
                    wcet: 2,
                }],
                attempt: 1,
            },
            Request::Ping,
            Request::Stats { tenant: 3 },
        ];
        let mut wire = Vec::new();
        for req in &requests {
            write_frame(&mut wire, &req.encode()).expect("write");
        }
        let mut stream = TrickleReader {
            wire,
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        let mut decoded = Vec::new();
        let mut timeouts = 0u32;
        while decoded.len() < requests.len() {
            match reader.read(&mut stream) {
                Ok(Some(payload)) => {
                    decoded.push(Request::decode(&payload).expect("framing stayed in sync"));
                }
                Ok(None) => timeouts += 1,
                Err(e) => panic!("trickled stream must reassemble: {e}"),
            }
        }
        assert_eq!(decoded, requests);
        assert!(timeouts > 0, "every byte was preceded by a timeout");
        assert!(!reader.mid_frame(), "ends at a frame boundary");
    }

    #[test]
    fn frame_reader_reports_mid_frame_progress_and_eof() {
        let payload = Request::Ping.encode();
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).expect("write");

        // Deliver only half the length prefix, then time out forever.
        let mut half = TrickleReader {
            wire: wire[..2].to_vec(),
            pos: 0,
            ready: false,
        };
        let mut reader = FrameReader::new();
        assert!(matches!(reader.read(&mut half), Ok(None)));
        assert!(matches!(reader.read(&mut half), Ok(None)));
        assert!(reader.mid_frame(), "partial prefix is mid-frame");
        // The stream closing mid-frame is an error, not a silent None.
        let mut eof = std::io::empty();
        // Drain the remaining trickle first: each call delivers one byte.
        loop {
            match reader.read(&mut half) {
                Ok(None) if half.pos < half.wire.len() => continue,
                Ok(None) => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        let err = reader.read(&mut eof).expect_err("EOF mid-frame");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn frame_reader_rejects_oversized_frames() {
        let mut wire = Vec::new();
        wire.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        let mut reader = FrameReader::new();
        let err = reader
            .read(&mut wire.as_slice())
            .expect_err("oversized prefix");
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
