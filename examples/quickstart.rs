//! Quickstart: build a 16-client BlueScale, run a workload, print metrics.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bluescale_repro::core::{BlueScaleConfig, BlueScaleInterconnect};
use bluescale_repro::interconnect::system::System;
use bluescale_repro::interconnect::Interconnect;
use bluescale_repro::rt::task::{Task, TaskSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One periodic task per client: every `period` cycles, issue `wcet`
    // memory transactions with an implicit deadline one period later.
    let task_sets: Vec<TaskSet> = (0..16)
        .map(|i| {
            let period = 400 + 25 * i as u64;
            TaskSet::new(vec![Task::new(0, period, 8)?])
        })
        .collect::<Result<_, _>>()?;

    // Build the interconnect. Construction runs the paper's full analysis:
    // interface selection at every Scale Element from the leaves to the
    // root, then the root admission test.
    let config = BlueScaleConfig::for_clients(16);
    let ic = BlueScaleInterconnect::new(config, &task_sets)?;

    let composition = ic.composition();
    println!("schedulable        : {}", composition.schedulable);
    println!("root bandwidth     : {:.3}", composition.root_bandwidth);
    println!("scale elements     : {}", composition.reprogrammed_elements);
    println!();
    println!("per-port interfaces at the root SE:");
    for (port, iface) in composition.interfaces[0][0].iter().enumerate() {
        match iface {
            Some(r) => println!(
                "  port {port}: (Π = {}, Θ = {}) → bandwidth {:.3}",
                r.period(),
                r.budget(),
                r.bandwidth()
            ),
            None => println!("  port {port}: idle"),
        }
    }

    // Drive it for 100k cycles with periodic traffic generators.
    let mut system = System::new(Box::new(ic) as Box<dyn Interconnect>, &task_sets);
    let metrics = system.run(100_000);

    println!();
    println!("requests issued    : {}", metrics.issued());
    println!("requests completed : {}", metrics.completed());
    println!("deadline misses    : {}", metrics.missed());
    println!("mean latency       : {:.1} cycles", metrics.mean_latency());
    println!("mean blocking      : {:.1} cycles", metrics.mean_blocking());
    Ok(())
}
