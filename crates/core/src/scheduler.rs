//! The local scheduler — the upper-level nested priority queue.
//!
//! One server task per local client port, realized as P-counter/B-counter
//! pairs ([`bluescale_rt::server::ServerTask`]). Every cycle the scheduling
//! circuits pick, among servers that (a) hold budget and (b) have a pending
//! request, the one with the earliest server deadline (its next
//! replenishment) — Algorithm 1 of the paper with the hardware's budget
//! gating. The decision is "combinational": exactly one grant per cycle.
//!
//! The scheduler keeps no statistics of its own: grant and throttle tallies
//! live in the [`MetricsRegistry`] under this scheduler's
//! [`ComponentId`], so every consumer (tests, benches, the JSON exporter)
//! reads the same numbers.

use bluescale_rt::server::ServerTask;
use bluescale_rt::supply::PeriodicResource;
use bluescale_sim::metrics::{ComponentId, Counter, Event, MetricsRegistry};
use bluescale_sim::Cycle;

/// GEDF arbiter over up to `branch` server tasks.
#[derive(Debug, Clone)]
pub struct LocalScheduler {
    /// The SE this scheduler arbitrates for (metrics key).
    component: ComponentId,
    servers: Vec<Option<ServerTask>>,
    work_conserving: bool,
}

impl LocalScheduler {
    /// Creates a scheduler for `component` with `ports` unprogrammed server
    /// slots.
    pub fn new(component: ComponentId, ports: usize, work_conserving: bool) -> Self {
        Self {
            component,
            servers: vec![None; ports],
            work_conserving,
        }
    }

    /// The component id this scheduler reports metrics under.
    pub fn component(&self) -> ComponentId {
        self.component
    }

    /// Number of client ports.
    pub fn ports(&self) -> usize {
        self.servers.len()
    }

    /// Programs (or reprograms) the server task of `port` with `interface`,
    /// as the interface selector does through the counters' program ports.
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn program(&mut self, port: usize, interface: PeriodicResource) {
        match &mut self.servers[port] {
            Some(server) => server.reprogram(interface),
            slot => *slot = Some(ServerTask::new(interface)),
        }
    }

    /// Removes the server of `port` (the client became idle).
    pub fn clear(&mut self, port: usize) {
        self.servers[port] = None;
    }

    /// Programs `port` through the safe mode-change protocol of a live
    /// reconfiguration. A changed interface on a running server is *staged*
    /// and swaps in at that server's next replenishment boundary
    /// ([`ServerTask::reprogram_at_boundary`]), so the current period's
    /// budget contract is honoured to the end; an unchanged interface with
    /// no swap pending is left alone entirely. A fresh server on an empty
    /// slot is programmed immediately (a joining tenant disturbs nobody),
    /// and `None` clears the slot immediately (a leaving tenant has no
    /// contract left to honour).
    ///
    /// Returns the transition latency: cycles from now until the staged
    /// swap commits (0 for the immediate and no-op cases).
    ///
    /// # Panics
    ///
    /// Panics if `port` is out of range.
    pub fn program_deferred(&mut self, port: usize, interface: Option<PeriodicResource>) -> u64 {
        match (interface, &mut self.servers[port]) {
            (Some(next), Some(server)) => {
                if server.interface() == next && server.pending_interface().is_none() {
                    return 0;
                }
                let latency = server.until_replenish();
                server.reprogram_at_boundary(next);
                latency
            }
            (Some(next), slot @ None) => {
                *slot = Some(ServerTask::new(next));
                0
            }
            (None, slot) => {
                *slot = None;
                0
            }
        }
    }

    /// The interface currently programmed at `port`.
    pub fn interface(&self, port: usize) -> Option<PeriodicResource> {
        self.servers[port].map(|s| s.interface())
    }

    /// Remaining budget at `port` in the current period.
    pub fn budget_remaining(&self, port: usize) -> Option<u64> {
        self.servers[port].map(|s| s.budget_remaining())
    }

    /// Picks the port to grant this cycle. `pending[p]` tells whether port
    /// `p` has a request ready; the winner is the budget-holding server
    /// with the earliest deadline among pending ports.
    ///
    /// In work-conserving mode (ablation), if no budgeted server is
    /// pending, the pending port whose server has the earliest deadline is
    /// granted anyway (unprogrammed ports use their request order).
    pub fn select(&self, pending: &[bool], now: Cycle) -> Option<usize> {
        debug_assert_eq!(pending.len(), self.servers.len());
        let mut winner: Option<(Cycle, usize)> = None;
        for (port, server) in self.servers.iter().enumerate() {
            if !pending[port] {
                continue;
            }
            let Some(server) = server else { continue };
            if !server.has_budget() {
                continue;
            }
            let deadline = server.deadline(now);
            if winner.is_none_or(|(best, _)| deadline < best) {
                winner = Some((deadline, port));
            }
        }
        if winner.is_none() && self.work_conserving {
            // Grant the earliest-deadline pending port ignoring budgets.
            for (port, server) in self.servers.iter().enumerate() {
                if !pending[port] {
                    continue;
                }
                let deadline = server.map_or(Cycle::MAX, |s| s.deadline(now));
                if winner.is_none_or(|(best, _)| deadline < best) {
                    winner = Some((deadline, port));
                }
            }
        }
        winner.map(|(_, port)| port)
    }

    /// Commits a grant: consumes one budget unit at `port` (no-op on an
    /// unprogrammed or exhausted server, which can only happen in
    /// work-conserving mode) and tallies the grant under both the SE and
    /// its port component.
    pub fn commit_grant(&mut self, port: usize, metrics: &mut MetricsRegistry) {
        metrics.inc(self.component, Counter::Grants);
        metrics.inc(self.component.port(port), Counter::Grants);
        match &mut self.servers[port] {
            Some(server) if server.has_budget() => server.consume(),
            // Audit trail for the B-counter path: a grant charged to an
            // unprogrammed or exhausted server means the port consumed
            // channel time beyond its reserved budget (work-conserving
            // slack, or a reconfiguration race).
            _ => {
                metrics.inc(self.component, Counter::BudgetOverruns);
                metrics.inc(self.component.port(port), Counter::BudgetOverruns);
            }
        }
    }

    /// Advances all period counters by one cycle. `any_pending_without_grant`
    /// feeds the throttled-cycles statistic: true when some port had work
    /// this cycle but nothing was granted. Budget replenishments are tallied
    /// per port.
    pub fn tick(
        &mut self,
        any_pending_without_grant: bool,
        now: Cycle,
        metrics: &mut MetricsRegistry,
    ) {
        if any_pending_without_grant {
            metrics.inc(self.component, Counter::ThrottledCycles);
            metrics.record(
                now,
                Event::Throttle {
                    component: self.component,
                },
            );
        }
        for (port, server) in self.servers.iter_mut().enumerate() {
            let Some(server) = server else { continue };
            if server.tick() {
                metrics.inc(self.component.port(port), Counter::Replenishments);
                metrics.record(
                    now,
                    Event::Replenish {
                        component: self.component,
                        port,
                    },
                );
            }
        }
    }

    /// Advances all period counters by `delta` cycles in closed form —
    /// exactly `delta` idle [`tick`](Self::tick)s (no pending work, no
    /// grant): counters count down, budgets replenish at each period
    /// boundary, and per-port `Replenishments` are tallied by crossing
    /// count.
    ///
    /// Callers must only use this across stretches with nothing pending
    /// anywhere: a replenishment during such a stretch cannot cause a grant
    /// (selection requires a pending request, in strict *and*
    /// work-conserving mode), so skipping the intermediate cycles is
    /// unobservable. Typed `Replenish` events are *not* emitted — the
    /// fast-forward path is gated off when detail recording is on.
    pub fn advance_idle(&mut self, delta: Cycle, metrics: &mut MetricsRegistry) {
        debug_assert!(!metrics.detail(), "fast-forward requires detail off");
        if delta == 0 {
            return;
        }
        for (port, server) in self.servers.iter_mut().enumerate() {
            let Some(server) = server else { continue };
            let crossings = server.advance(delta);
            if crossings > 0 {
                metrics.add(
                    self.component.port(port),
                    Counter::Replenishments,
                    crossings,
                );
            }
        }
    }

    /// The earliest cycle ≥ `now` at which any programmed server
    /// replenishes, or [`Cycle::MAX`] with no servers. Purely informational
    /// for schedulers embedded in a quiescent SE: the harness does not need
    /// to stop a jump here (an idle replenishment cannot grant), but
    /// diagnostics and tests use it to reason about counter phase.
    pub fn next_replenish(&self, now: Cycle) -> Cycle {
        self.servers
            .iter()
            .flatten()
            .map(|s| now + s.until_replenish())
            .min()
            .unwrap_or(Cycle::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SE: ComponentId = ComponentId::Se { depth: 1, order: 0 };

    fn iface(p: u64, b: u64) -> PeriodicResource {
        PeriodicResource::new(p, b).unwrap()
    }

    fn grants(reg: &MetricsRegistry, ports: usize) -> Vec<u64> {
        reg.port_counters(1, 0, ports, Counter::Grants)
    }

    #[test]
    fn selects_earliest_server_deadline() {
        let mut s = LocalScheduler::new(SE, 4, false);
        s.program(0, iface(10, 2));
        s.program(1, iface(4, 1)); // earliest replenishment → earliest deadline
        s.program(2, iface(20, 5));
        assert_eq!(s.select(&[true, true, true, false], 0), Some(1));
    }

    #[test]
    fn skips_ports_without_pending() {
        let mut s = LocalScheduler::new(SE, 2, false);
        s.program(0, iface(4, 1));
        s.program(1, iface(10, 2));
        assert_eq!(s.select(&[false, true], 0), Some(1));
        assert_eq!(s.select(&[false, false], 0), None);
    }

    #[test]
    fn skips_exhausted_budgets() {
        let mut reg = MetricsRegistry::new();
        let mut s = LocalScheduler::new(SE, 2, false);
        s.program(0, iface(4, 1));
        s.program(1, iface(10, 2));
        s.commit_grant(0, &mut reg); // budget of port 0 now 0
        assert_eq!(s.select(&[true, true], 0), Some(1));
        s.commit_grant(1, &mut reg);
        s.commit_grant(1, &mut reg);
        // All budgets exhausted → idle even with pending work.
        assert_eq!(s.select(&[true, true], 0), None);
    }

    #[test]
    fn budget_replenishes_on_period() {
        let mut reg = MetricsRegistry::new();
        let mut s = LocalScheduler::new(SE, 1, false);
        s.program(0, iface(3, 1));
        s.commit_grant(0, &mut reg);
        assert_eq!(s.select(&[true], 0), None);
        s.tick(true, 0, &mut reg);
        s.tick(true, 1, &mut reg);
        s.tick(true, 2, &mut reg); // period boundary
        assert_eq!(s.select(&[true], 3), Some(0));
        assert_eq!(reg.counter(SE, Counter::ThrottledCycles), 3);
        assert_eq!(reg.counter(SE.port(0), Counter::Replenishments), 1);
    }

    #[test]
    fn unprogrammed_ports_never_win_strict_mode() {
        let mut s = LocalScheduler::new(SE, 2, false);
        s.program(0, iface(8, 2));
        assert_eq!(s.select(&[false, true], 0), None);
    }

    #[test]
    fn work_conserving_grants_without_budget() {
        let mut reg = MetricsRegistry::new();
        let mut s = LocalScheduler::new(SE, 2, true);
        s.program(0, iface(4, 1));
        s.commit_grant(0, &mut reg);
        // Strictly, port 0 is out of budget; work-conserving grants anyway.
        assert_eq!(s.select(&[true, false], 0), Some(0));
        // Unprogrammed port also eligible in work-conserving mode.
        assert_eq!(s.select(&[false, true], 0), Some(1));
    }

    #[test]
    fn advance_idle_matches_unit_ticks() {
        let build = || {
            let mut s = LocalScheduler::new(SE, 3, false);
            s.program(0, iface(3, 1));
            s.program(2, iface(7, 4)); // port 1 left unprogrammed
            s
        };
        for delta in [0u64, 1, 2, 3, 6, 7, 20, 21, 100] {
            let mut ticked = build();
            let mut reg_t = MetricsRegistry::new();
            for now in 0..delta {
                ticked.tick(false, now, &mut reg_t);
            }
            let mut jumped = build();
            let mut reg_j = MetricsRegistry::new();
            jumped.advance_idle(delta, &mut reg_j);
            for port in 0..3 {
                assert_eq!(
                    jumped.budget_remaining(port),
                    ticked.budget_remaining(port),
                    "budget at port {port} after delta {delta}"
                );
                assert_eq!(
                    reg_j.counter(SE.port(port), Counter::Replenishments),
                    reg_t.counter(SE.port(port), Counter::Replenishments),
                    "replenishments at port {port} after delta {delta}"
                );
            }
            assert_eq!(
                jumped.next_replenish(delta),
                ticked.next_replenish(delta),
                "phase after delta {delta}"
            );
        }
    }

    #[test]
    fn program_deferred_swaps_only_at_the_boundary() {
        let mut reg = MetricsRegistry::new();
        let mut s = LocalScheduler::new(SE, 3, false);
        s.program(0, iface(10, 2));
        for now in 0..4 {
            s.tick(false, now, &mut reg);
        }
        // Port 0 mid-period (6 cycles to its boundary): the swap is staged.
        assert_eq!(s.program_deferred(0, Some(iface(5, 1))), 6);
        assert_eq!(s.interface(0).unwrap().period(), 10, "old contract holds");
        // Port 1 empty: immediate, no transition latency.
        assert_eq!(s.program_deferred(1, Some(iface(8, 4))), 0);
        assert_eq!(s.interface(1).unwrap().period(), 8);
        // Port 2 stays empty via None; port 0 unchanged-iface is a no-op.
        assert_eq!(s.program_deferred(2, None), 0);
        assert_eq!(s.program_deferred(1, Some(iface(8, 4))), 0, "no-op");
        for now in 4..10 {
            s.tick(false, now, &mut reg);
        }
        assert_eq!(s.interface(0).unwrap().period(), 5, "swapped at boundary");
        assert_eq!(s.budget_remaining(0), Some(1));
    }

    #[test]
    fn program_deferred_clears_immediately() {
        let mut s = LocalScheduler::new(SE, 1, false);
        s.program(0, iface(10, 2));
        assert_eq!(s.program_deferred(0, None), 0);
        assert!(s.interface(0).is_none());
    }

    #[test]
    fn next_replenish_reports_earliest_boundary() {
        let mut s = LocalScheduler::new(SE, 2, false);
        assert_eq!(s.next_replenish(10), Cycle::MAX);
        s.program(0, iface(8, 2));
        s.program(1, iface(5, 1));
        assert_eq!(s.next_replenish(100), 105);
    }

    #[test]
    fn reprogram_changes_interface() {
        let mut s = LocalScheduler::new(SE, 1, false);
        s.program(0, iface(10, 1));
        assert_eq!(s.interface(0).unwrap().period(), 10);
        s.program(0, iface(6, 3));
        assert_eq!(s.interface(0).unwrap().period(), 6);
        assert_eq!(s.budget_remaining(0), Some(3));
    }

    #[test]
    fn grants_counted_per_port() {
        let mut reg = MetricsRegistry::new();
        let mut s = LocalScheduler::new(SE, 2, false);
        s.program(0, iface(10, 5));
        s.commit_grant(0, &mut reg);
        s.commit_grant(0, &mut reg);
        assert_eq!(grants(&reg, 2), vec![2, 0]);
        assert_eq!(reg.counter(SE, Counter::Grants), 2);
    }

    #[test]
    fn throttle_and_replenish_emit_typed_events() {
        let mut reg = MetricsRegistry::with_detail(16);
        let mut s = LocalScheduler::new(SE, 1, false);
        s.program(0, iface(2, 1));
        s.commit_grant(0, &mut reg);
        s.tick(true, 0, &mut reg);
        s.tick(true, 1, &mut reg); // period boundary at cycle 2
        let events: Vec<Event> = reg.events().iter().map(|e| e.event).collect();
        assert!(events.contains(&Event::Throttle { component: SE }));
        assert!(events.contains(&Event::Replenish {
            component: SE,
            port: 0
        }));
    }

    #[test]
    fn long_run_grant_share_matches_bandwidth() {
        // Two saturated ports with bandwidths 1/4 and 1/2: over many
        // periods grants split 1:2.
        let mut reg = MetricsRegistry::new();
        let mut s = LocalScheduler::new(SE, 2, false);
        s.program(0, iface(4, 1));
        s.program(1, iface(4, 2));
        for now in 0..4000 {
            if let Some(p) = s.select(&[true, true], now) {
                s.commit_grant(p, &mut reg);
            }
            s.tick(true, now, &mut reg);
        }
        assert_eq!(grants(&reg, 2), vec![1000, 2000]);
    }
}
