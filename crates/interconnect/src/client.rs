//! Traffic-generating clients.
//!
//! The paper's interconnect-level evaluation (Section 6.3) drives each
//! interconnect with *traffic generators* "simulating memory requests
//! without processing any data": periodic tasks whose jobs issue a burst of
//! memory transactions with an implicit deadline one period after release.
//! [`TrafficGenerator`] reproduces that: it wraps a [`TaskSet`], releases
//! `C` requests per job, and offers at most one request per cycle to its
//! client port (port width 1).

use crate::{AccessKind, ClientId, MemoryRequest};
use bluescale_rt::edf::EdfQueue;
use bluescale_rt::task::TaskSet;
use bluescale_sim::Cycle;

/// Per-task release bookkeeping inside a generator.
#[derive(Debug, Clone)]
struct TaskState {
    task_id: u32,
    period: Cycle,
    demand: u64,
    next_release: Cycle,
    next_addr: u64,
    addr_stride: u64,
}

/// A periodic traffic generator attached to one client port.
///
/// Pending requests are offered in EDF order: the paper's traffic
/// generators run a local scheduler that assigns request priorities with
/// GEDF (Section 6.3), so an urgent job released later overtakes a large
/// earlier burst *inside the client* before the interconnect even sees it.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_interconnect::client::TrafficGenerator;
///
/// let tasks = TaskSet::new(vec![Task::new(0, 100, 3)?])?;
/// let mut gen = TrafficGenerator::new(7, &tasks);
/// gen.on_cycle(0);
/// // The job released at cycle 0 carries 3 requests, offered one per cycle.
/// assert!(gen.peek().is_some());
/// let r = gen.take().expect("request pending");
/// assert_eq!(r.client, 7);
/// assert_eq!(r.deadline, 100);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug)]
pub struct TrafficGenerator {
    client: ClientId,
    tasks: Vec<TaskState>,
    pending: EdfQueue<MemoryRequest>,
    issued: u64,
    next_request_serial: u64,
    /// Multiplies every job's demand at release time (1 = well-behaved).
    misbehaviour_factor: u64,
    /// Earliest `next_release` across `tasks` ([`Cycle::MAX`] when
    /// taskless): lets [`on_cycle`](Self::on_cycle) return in one compare
    /// on the (vast majority of) cycles with no release due.
    earliest_release: Cycle,
    /// PALLOC-style bank partition `(banks, row_bytes)`: when set, this
    /// client's address walk stays inside DRAM bank `client % banks`
    /// under the modulo address map (`bank = (addr / row_bytes) % banks`).
    partition: Option<(u32, u64)>,
}

impl TrafficGenerator {
    /// Creates a generator for `client` running `tasks`. All tasks release
    /// their first job at cycle 0 (synchronous arrival — the worst case for
    /// contention, which is what the evaluation wants to expose).
    pub fn new(client: ClientId, tasks: &TaskSet) -> Self {
        let states = tasks
            .iter()
            .map(|t| TaskState {
                task_id: t.id(),
                period: t.period(),
                demand: t.wcet(),
                next_release: 0,
                // Give every (client, task) pair a distinct address region
                // so DRAM row locality differs between streams.
                next_addr: (client as u64) << 32 | (t.id() as u64) << 24,
                addr_stride: 64,
            })
            .collect();
        let mut this = Self {
            client,
            tasks: states,
            pending: EdfQueue::new(),
            issued: 0,
            next_request_serial: 0,
            misbehaviour_factor: 1,
            earliest_release: 0,
            partition: None,
        };
        this.refresh_earliest_release();
        this
    }

    fn refresh_earliest_release(&mut self) {
        self.earliest_release = self
            .tasks
            .iter()
            .map(|t| t.next_release)
            .min()
            .unwrap_or(Cycle::MAX);
    }

    /// Creates a generator whose task `i` releases its first job at
    /// `offsets[i]` instead of cycle 0 — staggered phasing for
    /// steady-state studies (synchronous release is the contention worst
    /// case; real systems start de-phased).
    ///
    /// # Panics
    ///
    /// Panics if `offsets.len()` differs from the task count.
    pub fn with_offsets(client: ClientId, tasks: &TaskSet, offsets: &[Cycle]) -> Self {
        let mut this = Self::new(client, tasks);
        assert_eq!(
            offsets.len(),
            this.tasks.len(),
            "one offset per task required"
        );
        for (state, &offset) in this.tasks.iter_mut().zip(offsets) {
            state.next_release = offset;
        }
        this.refresh_earliest_release();
        this
    }

    /// Turns the generator into a *rogue*: every job issues `factor ×` its
    /// declared demand. Models a misbehaving or compromised client whose
    /// runtime behaviour exceeds the parameters it registered with the
    /// interconnect — the scenario budget-based isolation exists for.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is zero.
    pub fn set_misbehaviour_factor(&mut self, factor: u64) {
        assert!(factor > 0, "misbehaviour factor must be positive");
        self.misbehaviour_factor = factor;
    }

    /// Confines this client's address walk to DRAM bank `client % banks`
    /// under the modulo address map (`bank = (addr / row_bytes) % banks`)
    /// — software bank partitioning in the PALLOC style, the workload
    /// shape per-bank regulation assumes. Every task's stream is rebased
    /// onto the client's bank stripe; subsequent strides skip foreign
    /// banks' rows at each row crossing. The default layout
    /// (`client << 32 | task << 24`, stride 64) puts *every* stream in
    /// bank 0 of the default map — all clients collide on one bank — so
    /// bank-sensitive experiments opt in via this call.
    ///
    /// # Panics
    ///
    /// Panics if `banks` or `row_bytes` is zero, or if `row_bytes` is not
    /// a multiple of the address stride (the row-crossing skip must land
    /// exactly on a row boundary).
    pub fn set_bank_partition(&mut self, banks: u32, row_bytes: u64) {
        assert!(banks > 0, "at least one bank required");
        assert!(row_bytes > 0, "row size must be positive");
        self.partition = Some((banks, row_bytes));
        let client = self.client;
        for t in &mut self.tasks {
            assert!(
                row_bytes.is_multiple_of(t.addr_stride),
                "row size must be a multiple of the address stride"
            );
            let base = (client as u64) << 32 | (t.task_id as u64) << 24;
            t.next_addr = base + (client % banks) as u64 * row_bytes;
        }
    }

    /// One stride forward in a task's address stream, staying inside the
    /// client's bank stripe when a partition is set: a walk that just
    /// crossed a row boundary jumps over the other banks' rows.
    fn advance_addr(addr: u64, stride: u64, partition: Option<(u32, u64)>) -> u64 {
        let next = addr.wrapping_add(stride);
        match partition {
            Some((banks, row_bytes)) if next.is_multiple_of(row_bytes) => {
                next.wrapping_add((banks as u64 - 1) * row_bytes)
            }
            _ => next,
        }
    }

    /// Replaces the generator's task set from cycle `now` onward — the
    /// client-side half of a live reconfiguration (join, leave, task
    /// update). The request serial counter and the issued tally continue,
    /// so ids never collide with earlier traffic; requests already released
    /// under the old contract stay queued and drain normally; every new
    /// task releases its first job at `now` (a joining tenant's synchronous
    /// start). An empty set turns the generator silent once its backlog
    /// drains.
    pub fn set_tasks(&mut self, tasks: &TaskSet, now: Cycle) {
        self.tasks = tasks
            .iter()
            .map(|t| TaskState {
                task_id: t.id(),
                period: t.period(),
                demand: t.wcet(),
                next_release: now,
                // The full 32-bit client id occupies bits 32..64, so the
                // per-client 4 GiB windows stay disjoint for ids ≥ 65 536.
                next_addr: (self.client as u64) << 32 | (t.id() as u64) << 24,
                addr_stride: 64,
            })
            .collect();
        if let Some((banks, row_bytes)) = self.partition {
            self.set_bank_partition(banks, row_bytes);
        }
        self.refresh_earliest_release();
    }

    /// The client port this generator feeds.
    pub fn client(&self) -> ClientId {
        self.client
    }

    /// Total requests released so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// The longest deadline window across this generator's tasks: with
    /// implicit deadlines (absolute deadline = release + period) a request
    /// can legitimately stay outstanding for up to its task's period, so
    /// the maximum period bounds how long *any* healthy request may be in
    /// flight. Zero for a taskless generator. Guard validation compares
    /// watchdog timeouts against this value.
    pub fn longest_deadline_window(&self) -> Cycle {
        self.tasks.iter().map(|t| t.period).max().unwrap_or(0)
    }

    /// Requests released but not yet accepted by the interconnect.
    pub fn backlog(&self) -> usize {
        self.pending.len()
    }

    /// The next globally unique request id: the 32-bit client id in the
    /// high word, the per-client serial in the low word. The old layout
    /// packed the client into the top 16 bits (`client << 48`), so client
    /// ids ≥ 65 536 silently wrapped into the serial field and collided
    /// with other clients' ids; 32/32 keeps ids unique up to 2³² clients
    /// issuing 2³² requests each.
    fn next_id(client: ClientId, serial: &mut u64) -> u64 {
        debug_assert!(
            *serial < (1 << 32),
            "client {client} serial overflowed the 32-bit id field"
        );
        let id = ((client as u64) << 32) | *serial;
        *serial += 1;
        id
    }

    /// Advances task releases to cycle `now`, enqueueing the requests of
    /// every job released at this cycle. Call exactly once per cycle.
    pub fn on_cycle(&mut self, now: Cycle) {
        self.on_cycle_with_factor(now, 1);
    }

    /// Like [`on_cycle`](Self::on_cycle), but demand is additionally
    /// multiplied by `extra_factor` — the hook a fault plan's rogue-demand
    /// fault uses to make the client exceed its declared parameters for a
    /// window of cycles without mutating the generator's own configuration.
    pub fn on_cycle_with_factor(&mut self, now: Cycle, extra_factor: u64) {
        if now < self.earliest_release {
            return;
        }
        for t in &mut self.tasks {
            while t.next_release <= now {
                let release = t.next_release;
                let deadline = release + t.period;
                for _ in 0..t.demand * self.misbehaviour_factor * extra_factor {
                    let id = Self::next_id(self.client, &mut self.next_request_serial);
                    self.issued += 1;
                    self.pending.push(
                        MemoryRequest {
                            id,
                            client: self.client,
                            task: t.task_id,
                            addr: t.next_addr,
                            kind: if self.next_request_serial.is_multiple_of(4) {
                                AccessKind::Write
                            } else {
                                AccessKind::Read
                            },
                            issued_at: release,
                            deadline,
                            blocked_cycles: 0,
                        },
                        deadline,
                    );
                    t.next_addr = Self::advance_addr(t.next_addr, t.addr_stride, self.partition);
                }
                t.next_release += t.period;
            }
        }
        self.refresh_earliest_release();
    }

    /// Enqueues `count` extra requests released *now*, modelled on the
    /// generator's first task (same stride and deadline window). This is
    /// the fault plan's request-burst hook: traffic the client never
    /// declared, appearing at a chosen cycle. Returns how many requests
    /// were actually enqueued (0 when the generator has no tasks).
    pub fn inject_burst(&mut self, now: Cycle, count: u64) -> u64 {
        let Some(t) = self.tasks.first() else {
            return 0;
        };
        let (task_id, period, stride) = (t.task_id, t.period, t.addr_stride);
        let mut addr = t.next_addr;
        for _ in 0..count {
            let id = Self::next_id(self.client, &mut self.next_request_serial);
            self.issued += 1;
            let deadline = now + period;
            self.pending.push(
                MemoryRequest {
                    id,
                    client: self.client,
                    task: task_id,
                    addr,
                    kind: if self.next_request_serial.is_multiple_of(4) {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                    issued_at: now,
                    deadline,
                    blocked_cycles: 0,
                },
                deadline,
            );
            addr = Self::advance_addr(addr, stride, self.partition);
        }
        self.tasks[0].next_addr = addr;
        count
    }

    /// The earliest cycle ≥ `now` at which this generator can act: `now`
    /// itself while a backlog is queued (it will offer a request every
    /// cycle), otherwise the earliest pending job release across its tasks
    /// ([`Cycle::MAX`] for a taskless generator). The release catch-up loop
    /// in [`on_cycle`](Self::on_cycle) already tolerates skipped cycles, so
    /// a harness may jump straight to the reported cycle.
    pub fn next_event(&self, now: Cycle) -> Cycle {
        if !self.pending.is_empty() {
            return now;
        }
        self.earliest_release
    }

    /// Borrows the next request to offer (earliest deadline first).
    pub fn peek(&self) -> Option<&MemoryRequest> {
        self.pending.peek()
    }

    /// Takes the next request to offer the interconnect (EDF order).
    pub fn take(&mut self) -> Option<MemoryRequest> {
        self.pending.pop().map(|(r, _)| r)
    }

    /// Returns a rejected request to the queue (the port was full this
    /// cycle; it competes again by deadline next cycle).
    pub fn give_back(&mut self, request: MemoryRequest) {
        let deadline = request.deadline;
        self.pending.push(request, deadline);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bluescale_rt::task::Task;

    fn gen(specs: &[(u64, u64)]) -> TrafficGenerator {
        let set = TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap();
        TrafficGenerator::new(3, &set)
    }

    #[test]
    fn request_ids_stay_unique_above_the_u16_client_boundary() {
        // Regression: ids used to pack the client into bits 48..64, so
        // client 65 536 collided with client 0's serials, 65 537 with
        // client 1's, and so on. Generators straddling the old boundary
        // must now produce fully disjoint id streams.
        let set = TaskSet::new(vec![Task::new(0, 10, 4).unwrap()]).unwrap();
        let clients: Vec<u32> = vec![0, 1, 65_535, 65_536, 65_537, 1_000_000];
        let mut ids = std::collections::HashSet::new();
        for &c in &clients {
            let mut g = TrafficGenerator::new(c, &set);
            for now in 0..40 {
                g.on_cycle(now);
                while let Some(r) = g.take() {
                    assert_eq!(r.client, c);
                    assert!(
                        ids.insert(r.id),
                        "duplicate request id {:#x} for client {c}",
                        r.id
                    );
                    assert_eq!(r.id >> 32, c as u64, "client field occupies bits 32..64");
                }
            }
        }
    }

    #[test]
    fn releases_demand_requests_per_job() {
        let mut g = gen(&[(10, 3)]);
        g.on_cycle(0);
        assert_eq!(g.backlog(), 3);
        assert_eq!(g.issued(), 3);
    }

    #[test]
    fn releases_periodically() {
        let mut g = gen(&[(10, 2)]);
        for now in 0..25 {
            g.on_cycle(now);
            while g.take().is_some() {}
        }
        // Releases at 0, 10, 20 → 6 requests.
        assert_eq!(g.issued(), 6);
    }

    #[test]
    fn deadline_is_release_plus_period() {
        let mut g = gen(&[(50, 1)]);
        g.on_cycle(0);
        assert_eq!(g.take().unwrap().deadline, 50);
        for now in 1..=50 {
            g.on_cycle(now);
        }
        let r = g.take().unwrap();
        assert_eq!(r.issued_at, 50);
        assert_eq!(r.deadline, 100);
    }

    #[test]
    fn catch_up_after_gap() {
        // If on_cycle is first called late, all missed releases appear.
        let mut g = gen(&[(10, 1)]);
        g.on_cycle(35);
        // Releases at 0, 10, 20, 30.
        assert_eq!(g.issued(), 4);
    }

    #[test]
    fn next_event_pins_backlog_and_reports_earliest_release() {
        let mut g = gen(&[(10, 1), (25, 1)]);
        assert_eq!(g.next_event(0), 0, "first releases are due at cycle 0");
        g.on_cycle(0);
        assert_eq!(g.next_event(1), 1, "backlogged generator is busy now");
        while g.take().is_some() {}
        assert_eq!(g.next_event(1), 10, "earliest of next releases 10 and 25");
        g.on_cycle(10);
        while g.take().is_some() {}
        assert_eq!(g.next_event(11), 20);
        let empty = TrafficGenerator::new(0, &TaskSet::new(vec![]).unwrap());
        assert_eq!(empty.next_event(5), Cycle::MAX);
    }

    #[test]
    fn bank_partition_confines_each_client_to_its_stripe() {
        const BANKS: u32 = 8;
        const ROW_BYTES: u64 = 8192;
        let bank_of = |addr: u64| ((addr / ROW_BYTES) % BANKS as u64) as u32;
        let set = TaskSet::new(vec![Task::new(0, 10, 4).unwrap()]).unwrap();
        for client in [0u32, 3, 9, 17] {
            let mut g = TrafficGenerator::new(client, &set);
            g.set_bank_partition(BANKS, ROW_BYTES);
            // Walk far enough to cross several row boundaries
            // (8192 / 64 = 128 requests per row).
            let mut banks_seen = std::collections::HashSet::new();
            for now in 0..1_000 {
                g.on_cycle(now);
                while let Some(r) = g.take() {
                    banks_seen.insert(bank_of(r.addr));
                }
            }
            assert_eq!(
                banks_seen.into_iter().collect::<Vec<_>>(),
                vec![client % BANKS],
                "client {client} must stay in its own bank"
            );
        }
    }

    #[test]
    fn unpartitioned_default_walk_shares_bank_zero() {
        // Documents the aliasing the partition exists to break: the default
        // layout puts every client's stream in bank 0 of the default map.
        let set = TaskSet::new(vec![Task::new(0, 10, 1).unwrap()]).unwrap();
        for client in [0u32, 5, 11] {
            let mut g = TrafficGenerator::new(client, &set);
            g.on_cycle(0);
            let addr = g.take().unwrap().addr;
            assert_eq!((addr / 8192) % 8, 0);
        }
    }

    #[test]
    fn bank_partition_survives_set_tasks_and_bursts() {
        const BANKS: u32 = 8;
        const ROW_BYTES: u64 = 8192;
        let bank_of = |addr: u64| ((addr / ROW_BYTES) % BANKS as u64) as u32;
        let set = TaskSet::new(vec![Task::new(0, 10, 2).unwrap()]).unwrap();
        let mut g = TrafficGenerator::new(5, &set);
        g.set_bank_partition(BANKS, ROW_BYTES);
        let replacement = TaskSet::new(vec![Task::new(1, 20, 2).unwrap()]).unwrap();
        g.set_tasks(&replacement, 40);
        g.inject_burst(40, 300); // crosses at least two row boundaries
        g.on_cycle(40);
        let mut banks_seen = std::collections::HashSet::new();
        while let Some(r) = g.take() {
            banks_seen.insert(bank_of(r.addr));
        }
        assert_eq!(banks_seen.into_iter().collect::<Vec<_>>(), vec![5]);
    }

    #[test]
    fn give_back_competes_by_deadline() {
        // Two tasks: the urgent one (period 10) and a lazy one (period 90).
        let mut g = gen(&[(10, 1), (90, 1)]);
        g.on_cycle(0);
        let urgent = g.take().unwrap();
        assert_eq!(urgent.deadline, 10);
        // Rejected by a full port: it must still beat the lazy request.
        g.give_back(urgent);
        assert_eq!(g.take().unwrap().deadline, 10);
        assert_eq!(g.take().unwrap().deadline, 90);
    }

    #[test]
    fn offsets_delay_first_release() {
        let set = TaskSet::new(vec![
            Task::new(0, 10, 1).unwrap(),
            Task::new(1, 20, 1).unwrap(),
        ])
        .unwrap();
        let mut g = TrafficGenerator::with_offsets(0, &set, &[3, 7]);
        g.on_cycle(0);
        assert_eq!(g.backlog(), 0, "nothing released before its offset");
        g.on_cycle(3);
        assert_eq!(g.backlog(), 1);
        g.on_cycle(7);
        assert_eq!(g.backlog(), 2);
        // Subsequent periods keep the phase: next releases at 13 and 27.
        g.on_cycle(13);
        assert_eq!(g.issued(), 3);
    }

    #[test]
    #[should_panic(expected = "one offset per task")]
    fn wrong_offset_count_panics() {
        let set = TaskSet::new(vec![Task::new(0, 10, 1).unwrap()]).unwrap();
        let _ = TrafficGenerator::with_offsets(0, &set, &[1, 2]);
    }

    #[test]
    fn rogue_generator_floods() {
        let mut g = gen(&[(10, 2)]);
        g.set_misbehaviour_factor(5);
        g.on_cycle(0);
        assert_eq!(g.backlog(), 10, "5× the declared demand");
    }

    #[test]
    #[should_panic(expected = "factor must be positive")]
    fn zero_misbehaviour_factor_panics() {
        let mut g = gen(&[(10, 1)]);
        g.set_misbehaviour_factor(0);
    }

    #[test]
    fn extra_factor_multiplies_on_top_of_configured_rogue() {
        let mut g = gen(&[(10, 2)]);
        g.set_misbehaviour_factor(3);
        g.on_cycle_with_factor(0, 2);
        assert_eq!(g.backlog(), 12, "2 × 3 × 2 requests");
    }

    #[test]
    fn burst_injects_undeclared_traffic_with_fresh_ids() {
        let mut g = gen(&[(10, 1)]);
        g.on_cycle(0);
        assert_eq!(g.inject_burst(5, 4), 4);
        assert_eq!(g.issued(), 5);
        let mut ids = Vec::new();
        while let Some(r) = g.take() {
            assert!(r.deadline == 10 || r.deadline == 15);
            ids.push(r.id);
        }
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 5, "burst ids never collide with releases");
    }

    #[test]
    fn burst_on_taskless_generator_is_a_noop() {
        let set = TaskSet::empty();
        let mut g = TrafficGenerator::new(0, &set);
        assert_eq!(g.inject_burst(0, 8), 0);
        assert_eq!(g.backlog(), 0);
    }

    #[test]
    fn set_tasks_preserves_serials_and_backlog() {
        let mut g = gen(&[(10, 2)]);
        g.on_cycle(0);
        let before = g.take().unwrap();
        let kept_backlog = g.backlog();
        assert_eq!(kept_backlog, 1, "one release still queued");
        let new_set = TaskSet::new(vec![Task::new(5, 20, 1).unwrap()]).unwrap();
        g.set_tasks(&new_set, 7);
        assert_eq!(g.backlog(), kept_backlog, "old backlog survives a retask");
        assert_eq!(g.next_event(7), 7, "backlogged generator is busy");
        g.on_cycle(7);
        assert_eq!(g.issued(), 3, "new task releases at the retask cycle");
        let mut ids = vec![before.id];
        while let Some(r) = g.take() {
            ids.push(r.id);
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n, "serials continue across the retask");
        // Releases keep the new phase and period afterwards.
        while g.take().is_some() {}
        assert_eq!(g.next_event(8), 27);
        // The empty set silences the generator once drained.
        g.set_tasks(&TaskSet::empty(), 30);
        assert_eq!(g.next_event(30), Cycle::MAX);
    }

    #[test]
    fn urgent_job_overtakes_large_backlog() {
        // A 6-request burst with a late deadline is queued; an urgent job
        // released later must be offered first (client-side GEDF).
        let mut g = gen(&[(500, 6), (20, 1)]);
        g.on_cycle(0);
        // Drain the cycle-0 queue: the (20,1) request first, then bursts.
        assert_eq!(g.take().unwrap().deadline, 20);
        g.on_cycle(20); // next urgent release, burst still queued
        assert_eq!(g.take().unwrap().deadline, 40);
        assert_eq!(g.take().unwrap().deadline, 500);
    }

    #[test]
    fn request_ids_unique_across_tasks() {
        let mut g = gen(&[(10, 3), (20, 4)]);
        g.on_cycle(0);
        let mut ids = Vec::new();
        while let Some(r) = g.take() {
            ids.push(r.id);
        }
        let n = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), n);
    }

    #[test]
    fn multiple_tasks_all_release() {
        let mut g = gen(&[(10, 1), (15, 2), (30, 3)]);
        g.on_cycle(0);
        assert_eq!(g.backlog(), 6);
    }

    #[test]
    fn address_regions_distinct_per_task() {
        let mut g = gen(&[(10, 1), (10, 1)]);
        g.on_cycle(0);
        let a = g.take().unwrap().addr;
        let b = g.take().unwrap().addr;
        assert_ne!(a >> 24, b >> 24);
    }
}
