//! **BlueScale** — a hierarchically distributed real-time memory
//! interconnect (reproduction of Jiang et al., DAC 2022).
//!
//! BlueScale connects SoC clients (processors, hardware accelerators) to a
//! shared memory sub-system through a quadtree of identical **Scale
//! Elements** ([`element::ScaleElement`]). Each SE implements two nested priority
//! queues:
//!
//! * a **low-level** queue per local client port — the random-access buffer
//!   ([`rab::RandomAccessBuffer`]) that always surfaces the pending request
//!   with the earliest deadline, and
//! * an **upper-level** queue over four **server tasks** — the local
//!   scheduler ([`scheduler::LocalScheduler`]) whose period/budget counters
//!   enforce the periodic-resource interfaces `(Π, Θ)` computed by the
//!   interface selector ([`selector`]).
//!
//! The result is *iterative compositional scheduling*: every SE makes a
//! single-cycle GEDF decision using only local information, while the
//! interface-selection analysis (in [`bluescale_rt`]) guarantees end-to-end
//! schedulability when the root admission test passes.
//!
//! # Quick start
//!
//! ```
//! use bluescale::{BlueScaleConfig, BlueScaleInterconnect};
//! use bluescale_rt::task::{Task, TaskSet};
//!
//! // 16 clients, each running one light periodic task.
//! let task_sets: Vec<TaskSet> = (0..16)
//!     .map(|i| TaskSet::new(vec![Task::new(0, 400, 4).expect("valid task")]).expect("valid set"))
//!     .collect();
//!
//! let config = BlueScaleConfig::for_clients(16);
//! let ic = BlueScaleInterconnect::new(config, &task_sets)?;
//! assert!(ic.composition().schedulable);
//! # Ok::<(), bluescale::BuildError>(())
//! ```

#![warn(missing_docs)]

pub mod element;
pub mod network;
pub mod rab;
pub mod scheduler;
pub mod selector;
pub mod shard;
pub mod soa;
pub mod topology;

pub use network::{BlueScaleInterconnect, BuildError, CompositionReport, InjectError};
pub use shard::ShardedSystem;
pub use topology::BlueScaleConfig;
