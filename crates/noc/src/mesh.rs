//! A W×H mesh of XY-routed routers.
//!
//! Each router has five bounded input buffers (north, south, east, west,
//! local injection) and moves at most one packet per output link per
//! cycle, arbitrating contending inputs round-robin — the classic
//! best-effort mesh router, with no notion of deadlines.

use std::collections::VecDeque;

/// Coordinates of a mesh node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId {
    /// Column (0 = west edge).
    pub x: usize,
    /// Row (0 = north edge).
    pub y: usize,
}

impl NodeId {
    /// Creates a node id.
    pub fn new(x: usize, y: usize) -> Self {
        Self { x, y }
    }
}

/// Static mesh configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MeshConfig {
    /// Columns.
    pub width: usize,
    /// Rows.
    pub height: usize,
    /// Capacity of each router input buffer.
    pub buffer_capacity: usize,
}

impl MeshConfig {
    /// A square mesh large enough to host `nodes` endpoints (the paper's
    /// platform uses a 9×9 mesh), with 4-entry buffers.
    pub fn square_for(nodes: usize) -> Self {
        let mut side = 1;
        while side * side < nodes {
            side += 1;
        }
        Self {
            width: side,
            height: side,
            buffer_capacity: 4,
        }
    }
}

/// Router ports, in arbitration order.
const PORTS: usize = 5;
const NORTH: usize = 0;
const SOUTH: usize = 1;
const EAST: usize = 2;
const WEST: usize = 3;
const LOCAL: usize = 4;

#[derive(Debug)]
struct Router<T> {
    inputs: [VecDeque<Packet<T>>; PORTS],
    delivered: VecDeque<Packet<T>>,
    round_robin: usize,
}

impl<T> Router<T> {
    fn new() -> Self {
        Self {
            inputs: Default::default(),
            delivered: VecDeque::new(),
            round_robin: 0,
        }
    }

    fn occupancy(&self) -> usize {
        self.inputs.iter().map(VecDeque::len).sum::<usize>() + self.delivered.len()
    }
}

/// A packet travelling through the mesh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet<T> {
    /// Destination node.
    pub dest: NodeId,
    /// Carried payload.
    pub payload: T,
}

/// The mesh network.
///
/// # Example
///
/// ```
/// use bluescale_noc::{Mesh, MeshConfig, NodeId};
/// use bluescale_noc::mesh::Packet;
///
/// let mut mesh: Mesh<u32> = Mesh::new(MeshConfig::square_for(9));
/// mesh.inject(NodeId::new(2, 2), Packet { dest: NodeId::new(0, 0), payload: 7 })
///     .expect("buffer has space");
/// // Four hops (2 west + 2 north) plus delivery.
/// let mut arrived = None;
/// for _ in 0..10 {
///     mesh.step();
///     if let Some(p) = mesh.take_delivered(NodeId::new(0, 0)) {
///         arrived = Some(p.payload);
///     }
/// }
/// assert_eq!(arrived, Some(7));
/// ```
#[derive(Debug)]
pub struct Mesh<T> {
    config: MeshConfig,
    routers: Vec<Router<T>>,
}

impl<T> Mesh<T> {
    /// Creates an idle mesh.
    ///
    /// # Panics
    ///
    /// Panics if any dimension or the buffer capacity is zero.
    pub fn new(config: MeshConfig) -> Self {
        assert!(config.width > 0 && config.height > 0, "empty mesh");
        assert!(
            config.buffer_capacity > 0,
            "buffer capacity must be positive"
        );
        Self {
            routers: (0..config.width * config.height)
                .map(|_| Router::new())
                .collect(),
            config,
        }
    }

    /// The mesh configuration.
    pub fn config(&self) -> &MeshConfig {
        &self.config
    }

    fn index(&self, node: NodeId) -> usize {
        debug_assert!(node.x < self.config.width && node.y < self.config.height);
        node.y * self.config.width + node.x
    }

    /// XY route: which output port does a packet at `here` take toward
    /// `dest`? `LOCAL` means deliver.
    fn route(here: NodeId, dest: NodeId) -> usize {
        if dest.x > here.x {
            EAST
        } else if dest.x < here.x {
            WEST
        } else if dest.y > here.y {
            SOUTH
        } else if dest.y < here.y {
            NORTH
        } else {
            LOCAL
        }
    }

    fn neighbour(&self, node: NodeId, port: usize) -> NodeId {
        match port {
            NORTH => NodeId::new(node.x, node.y - 1),
            SOUTH => NodeId::new(node.x, node.y + 1),
            EAST => NodeId::new(node.x + 1, node.y),
            WEST => NodeId::new(node.x - 1, node.y),
            _ => node,
        }
    }

    /// Opposite port: a packet leaving east arrives at the neighbour's
    /// west input.
    fn arrival_port(port: usize) -> usize {
        match port {
            NORTH => SOUTH,
            SOUTH => NORTH,
            EAST => WEST,
            WEST => EAST,
            other => other,
        }
    }

    /// Offers a packet at `node`'s local injection port.
    ///
    /// # Errors
    ///
    /// Returns the packet back when the local buffer is full.
    ///
    /// # Panics
    ///
    /// Panics if `node` or the packet's destination is outside the mesh.
    pub fn inject(&mut self, node: NodeId, packet: Packet<T>) -> Result<(), Packet<T>> {
        assert!(
            packet.dest.x < self.config.width && packet.dest.y < self.config.height,
            "destination outside the mesh"
        );
        let capacity = self.config.buffer_capacity;
        let idx = self.index(node);
        let local = &mut self.routers[idx].inputs[LOCAL];
        if local.len() == capacity {
            Err(packet)
        } else {
            local.push_back(packet);
            Ok(())
        }
    }

    /// Removes one packet delivered at `node`'s local output.
    pub fn take_delivered(&mut self, node: NodeId) -> Option<Packet<T>> {
        let idx = self.index(node);
        self.routers[idx].delivered.pop_front()
    }

    /// Packets currently anywhere inside the mesh (including delivered
    /// but not yet taken).
    pub fn occupancy(&self) -> usize {
        self.routers.iter().map(Router::occupancy).sum()
    }

    /// Advances the mesh one cycle: every router forwards at most one
    /// packet per output link, round-robin over contending inputs, with
    /// backpressure against full downstream buffers.
    pub fn step(&mut self) {
        let width = self.config.width;
        let height = self.config.height;
        let capacity = self.config.buffer_capacity;
        // Phase 1: select moves using pre-move occupancies.
        struct Move {
            src_router: usize,
            src_port: usize,
            dst_router: usize,
            dst_port: usize, // PORTS == deliver
            deliver: bool,
        }
        let mut moves: Vec<Move> = Vec::new();
        // Reserved space per (router, port) this cycle, so two routers do
        // not overfill the same downstream buffer.
        let mut reserved = vec![[0usize; PORTS + 1]; self.routers.len()];
        for y in 0..height {
            for x in 0..width {
                let here = NodeId::new(x, y);
                let r_idx = self.index(here);
                let mut outputs_used = [false; PORTS + 1];
                let start = self.routers[r_idx].round_robin;
                for k in 0..PORTS {
                    let port = (start + k) % PORTS;
                    let Some(head) = self.routers[r_idx].inputs[port].front() else {
                        continue;
                    };
                    let out = Self::route(here, head.dest);
                    if outputs_used[out] {
                        continue; // output link already granted this cycle
                    }
                    if out == LOCAL {
                        // Delivery has no capacity limit (the endpoint
                        // consumes).
                        outputs_used[out] = true;
                        moves.push(Move {
                            src_router: r_idx,
                            src_port: port,
                            dst_router: r_idx,
                            dst_port: PORTS,
                            deliver: true,
                        });
                        continue;
                    }
                    let dst = self.neighbour(here, out);
                    let dst_idx = self.index(dst);
                    let dst_port = Self::arrival_port(out);
                    let occupied =
                        self.routers[dst_idx].inputs[dst_port].len() + reserved[dst_idx][dst_port];
                    if occupied < capacity {
                        outputs_used[out] = true;
                        reserved[dst_idx][dst_port] += 1;
                        moves.push(Move {
                            src_router: r_idx,
                            src_port: port,
                            dst_router: dst_idx,
                            dst_port,
                            deliver: false,
                        });
                    }
                }
                self.routers[r_idx].round_robin = (start + 1) % PORTS;
            }
        }
        // Phase 2: apply.
        for m in moves {
            let packet = self.routers[m.src_router].inputs[m.src_port]
                .pop_front()
                .expect("selected head exists");
            if m.deliver {
                self.routers[m.dst_router].delivered.push_back(packet);
            } else {
                self.routers[m.dst_router].inputs[m.dst_port].push_back(packet);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh(side: usize) -> Mesh<u64> {
        Mesh::new(MeshConfig {
            width: side,
            height: side,
            buffer_capacity: 4,
        })
    }

    fn pkt(dest: NodeId, payload: u64) -> Packet<u64> {
        Packet { dest, payload }
    }

    #[test]
    fn square_for_sizes() {
        assert_eq!(MeshConfig::square_for(1).width, 1);
        assert_eq!(MeshConfig::square_for(4).width, 2);
        assert_eq!(MeshConfig::square_for(17).width, 5);
        assert_eq!(MeshConfig::square_for(65).width, 9); // the paper's 9×9
        assert_eq!(MeshConfig::square_for(81).width, 9);
    }

    #[test]
    fn local_delivery_without_hops() {
        let mut m = mesh(3);
        m.inject(NodeId::new(1, 1), pkt(NodeId::new(1, 1), 9))
            .unwrap();
        m.step();
        assert_eq!(m.take_delivered(NodeId::new(1, 1)).unwrap().payload, 9);
    }

    #[test]
    fn xy_route_takes_manhattan_hops() {
        let mut m = mesh(5);
        m.inject(NodeId::new(4, 4), pkt(NodeId::new(0, 0), 1))
            .unwrap();
        // 8 hops + 1 delivery cycle: must NOT arrive before 9 steps.
        for _ in 0..8 {
            m.step();
            assert!(m.take_delivered(NodeId::new(0, 0)).is_none());
        }
        m.step();
        assert_eq!(m.take_delivered(NodeId::new(0, 0)).unwrap().payload, 1);
    }

    #[test]
    fn all_to_one_converges() {
        let mut m = mesh(4);
        let sink = NodeId::new(0, 0);
        let mut injected = 0;
        for x in 0..4 {
            for y in 0..4 {
                if (x, y) != (0, 0) {
                    m.inject(NodeId::new(x, y), pkt(sink, (x * 4 + y) as u64))
                        .unwrap();
                    injected += 1;
                }
            }
        }
        let mut got = Vec::new();
        for _ in 0..200 {
            m.step();
            while let Some(p) = m.take_delivered(sink) {
                got.push(p.payload);
            }
        }
        got.sort_unstable();
        got.dedup();
        assert_eq!(got.len(), injected, "every packet arrives exactly once");
        assert_eq!(m.occupancy(), 0);
    }

    #[test]
    fn backpressure_on_full_local_buffer() {
        let mut m = mesh(2);
        let node = NodeId::new(1, 1);
        for i in 0..4 {
            m.inject(node, pkt(NodeId::new(0, 0), i)).unwrap();
        }
        assert!(m.inject(node, pkt(NodeId::new(0, 0), 99)).is_err());
        m.step(); // drains one
        assert!(m.inject(node, pkt(NodeId::new(0, 0), 99)).is_ok());
    }

    #[test]
    fn one_packet_per_link_per_cycle() {
        // Two packets at the same router heading the same way: the second
        // must wait a cycle.
        let mut m = mesh(3);
        let src = NodeId::new(2, 0);
        let dst = NodeId::new(0, 0);
        m.inject(src, pkt(dst, 1)).unwrap();
        m.inject(src, pkt(dst, 2)).unwrap();
        let mut arrivals = Vec::new();
        for step in 0..10 {
            m.step();
            while let Some(p) = m.take_delivered(dst) {
                arrivals.push((step, p.payload));
            }
        }
        assert_eq!(arrivals.len(), 2);
        assert!(
            arrivals[1].0 > arrivals[0].0,
            "packets sharing links must serialize"
        );
    }

    #[test]
    fn crossing_traffic_uses_distinct_links_in_parallel() {
        // East-bound and west-bound packets on the same row use opposite
        // links and must not block each other.
        let mut m = mesh(3);
        m.inject(NodeId::new(0, 1), pkt(NodeId::new(2, 1), 1))
            .unwrap();
        m.inject(NodeId::new(2, 1), pkt(NodeId::new(0, 1), 2))
            .unwrap();
        let mut steps_to_done = None;
        let mut got = 0;
        for step in 0..10 {
            m.step();
            if m.take_delivered(NodeId::new(2, 1)).is_some() {
                got += 1;
            }
            if m.take_delivered(NodeId::new(0, 1)).is_some() {
                got += 1;
            }
            if got == 2 {
                steps_to_done = Some(step);
                break;
            }
        }
        // Both need 2 hops + delivery = 3 steps; parallel, so both done
        // by step index 2 (0-based).
        assert_eq!(steps_to_done, Some(2));
    }

    #[test]
    #[should_panic(expected = "destination outside")]
    fn destination_outside_mesh_panics() {
        let mut m = mesh(2);
        let _ = m.inject(NodeId::new(0, 0), pkt(NodeId::new(5, 5), 1));
    }
}
