//! Streaming-telemetry smoke check for `scripts/check.sh`: a live daemon
//! with the telemetry pipeline enabled, eight tenants admitted over
//! loopback, two of them subscribed to their own SLO stream — all while
//! dropped-response faults force the admission retry path.
//!
//! Asserts, loudly:
//! * **own-tenant, monotone delivery** — every pushed update carries the
//!   subscriber's tenant id and a strictly increasing epoch; both
//!   subscribers receive live updates while churn traffic runs;
//! * **shed, never backpressure** — a deliberately slow subscriber (tiny
//!   channel depth + per-frame write delay) drives `SubscriberLagged`
//!   above zero while concurrent admission requests keep completing and
//!   the surviving stream stays monotone;
//! * **request conservation** — after graceful shutdown every admission
//!   request still has exactly one verdict, and the JSONL mirror written
//!   by the daemon folds cleanly (schema v1 parses end to end).

use bluescale_ctl::client::{CtlClient, RetryPolicy};
use bluescale_ctl::proto::{Response, TaskSpec, TenantClass};
use bluescale_ctl::server::{Daemon, DaemonConfig, TelemetryConfig};
use bluescale_sim::metrics::Counter;
use bluescale_telemetry::jsonl::fold_jsonl;
use std::time::{Duration, Instant};

const TENANTS: u64 = 8;
const SUBSCRIBERS: u64 = 2;
const UPDATES_PER_SUBSCRIBER: usize = 4;
const CHURN_ROUNDS: usize = 3;

fn spec(period: u64, wcet: u64) -> TaskSpec {
    TaskSpec { period, wcet }
}

fn base_config(telemetry: TelemetryConfig) -> DaemonConfig {
    DaemonConfig {
        capacity: 32,
        queue_depth: 64,
        batch_max: 16,
        sim_cycles_per_batch: 32,
        queue_deadline: Duration::from_secs(2),
        telemetry: Some(telemetry),
        ..DaemonConfig::default()
    }
}

fn faulty_policy() -> RetryPolicy {
    RetryPolicy {
        // Every 2nd frame's response is lost in flight.
        drop_after_send_every: Some(2),
        max_attempts: 8,
        deadline: Duration::from_secs(10),
        ..RetryPolicy::default()
    }
}

/// Drain updates from one subscription, asserting own-tenant stamping
/// and strict epoch monotonicity. Returns the number of updates seen.
fn drain_updates(
    sub: &mut bluescale_ctl::client::TelemetrySubscription,
    tenant: u64,
    want: usize,
    budget: Duration,
) -> usize {
    let start = Instant::now();
    let mut last_epoch: Option<u64> = None;
    let mut seen = 0usize;
    while seen < want && start.elapsed() < budget {
        match sub.next_update(Duration::from_millis(500)) {
            Ok(Some(update)) => {
                assert_eq!(
                    update.tenant, tenant,
                    "subscriber for tenant {tenant} received a foreign update"
                );
                if let Some(prev) = last_epoch {
                    assert!(
                        update.epoch > prev,
                        "epochs must be strictly monotone: {prev} then {}",
                        update.epoch
                    );
                }
                last_epoch = Some(update.epoch);
                seen += 1;
            }
            Ok(None) => {}
            Err(e) => panic!("subscription for tenant {tenant} failed: {e}"),
        }
    }
    seen
}

/// Phase 1: live streaming under admission faults. Eight tenants join,
/// two subscribe; churn traffic with dropped responses runs alongside.
fn phase_live(dir: &std::path::Path) {
    let jsonl = dir.join("telemetry.jsonl");
    let config = base_config(TelemetryConfig {
        period: 64,
        jsonl_path: Some(jsonl.clone()),
        ..TelemetryConfig::default()
    });
    let daemon = Daemon::start(dir, config).expect("daemon start");
    let addr = daemon.addr();

    let mut admit = CtlClient::new(addr, faulty_policy(), 0x7E1E_0001);
    for t in 0..TENANTS {
        let class = if t % 2 == 0 {
            TenantClass::Guaranteed
        } else {
            TenantClass::BestEffort
        };
        let resp = admit.join(t, class, vec![spec(64, 1)]).expect("join io");
        assert!(
            matches!(resp, Response::Admitted { .. }),
            "tenant {t} must admit into an empty daemon, got {resp:?}"
        );
    }

    std::thread::scope(|scope| {
        for t in 0..SUBSCRIBERS {
            scope.spawn(move || {
                let mut client = CtlClient::new(addr, RetryPolicy::default(), 0x7E1E_1000 + t);
                let mut sub = client.subscribe(t).expect("subscribe");
                let seen =
                    drain_updates(&mut sub, t, UPDATES_PER_SUBSCRIBER, Duration::from_secs(20));
                assert!(
                    seen >= UPDATES_PER_SUBSCRIBER,
                    "tenant {t} subscriber saw only {seen} updates"
                );
            });
        }
        // Concurrent churn with dropped responses: admission must stay
        // live (and retried) while subscriptions stream.
        scope.spawn(move || {
            let mut client = CtlClient::new(addr, faulty_policy(), 0x7E1E_2000);
            for round in 0..CHURN_ROUNDS {
                for t in TENANTS..TENANTS + 4 {
                    let _ = client.join(t, TenantClass::BestEffort, vec![spec(64, 1)]);
                    let _ = client.renegotiate(t, vec![spec(48 + round as u64, 1)]);
                    let _ = client.leave(t);
                }
            }
        });
    });

    let retries = daemon.sim_counter(Counter::Retries);
    assert!(retries > 0, "fault injection was inert: no retries forced");
    let stats = daemon.shutdown();
    assert!(
        stats.conservation_holds(),
        "request conservation violated: {stats:?}"
    );

    let stream = std::fs::read_to_string(&jsonl).expect("read daemon jsonl mirror");
    assert!(!stream.is_empty(), "daemon wrote no telemetry epochs");
    let folded = fold_jsonl(&stream).expect("daemon jsonl stream must fold");
    assert!(
        folded.epochs > 1,
        "daemon stream must cross several flush boundaries"
    );
    println!(
        "telemetry smoke (live): {TENANTS} tenants, {SUBSCRIBERS} subscribers x \
         {UPDATES_PER_SUBSCRIBER}+ monotone own-tenant updates, {retries} retries, \
         {} received / {} admitted, {} jsonl epochs folded",
        stats.received, stats.admitted, folded.epochs
    );
}

/// Phase 2: a subscriber that cannot keep up. Channel depth 1 plus an
/// artificial per-frame write delay back the push channel up; the daemon
/// must shed (counting `SubscriberLagged`) instead of backpressuring
/// flushes or admission.
fn phase_slow_subscriber(dir: &std::path::Path) {
    let config = base_config(TelemetryConfig {
        period: 32,
        subscriber_depth: 1,
        slow_subscriber_writes: Some(Duration::from_millis(50)),
        ..TelemetryConfig::default()
    });
    let daemon = Daemon::start(dir, config).expect("daemon start");
    let addr = daemon.addr();
    let daemon_ref = &daemon;

    let mut admit = CtlClient::new(addr, RetryPolicy::default(), 0x7E1E_0002);
    let resp = admit
        .join(0, TenantClass::Guaranteed, vec![spec(64, 1)])
        .expect("join io");
    assert!(matches!(resp, Response::Admitted { .. }));

    std::thread::scope(|scope| {
        // The slow reader: the server sleeps before every pushed frame,
        // so its depth-1 channel overflows regardless of how fast we
        // drain here. Surviving epochs must still be monotone.
        scope.spawn(move || {
            let mut client = CtlClient::new(addr, RetryPolicy::default(), 0x7E1E_3000);
            let mut sub = client.subscribe(0).expect("subscribe");
            let seen = drain_updates(&mut sub, 0, usize::MAX, Duration::from_secs(4));
            assert!(seen > 0, "slow subscriber received nothing at all");
        });
        // Admission must not stall behind the lagging subscriber.
        scope.spawn(move || {
            let mut client = CtlClient::new(addr, RetryPolicy::default(), 0x7E1E_4000);
            for t in 1..5u64 {
                let start = Instant::now();
                let resp = client
                    .join(t, TenantClass::BestEffort, vec![spec(64, 1)])
                    .expect("join io");
                assert!(
                    matches!(resp, Response::Admitted { .. }),
                    "tenant {t} join refused while subscriber lagged: {resp:?}"
                );
                client.leave(t).expect("leave io");
                assert!(
                    start.elapsed() < Duration::from_secs(5),
                    "admission stalled behind a lagging subscriber"
                );
            }
        });
        // Wait for the shed counter to fire while both threads run.
        scope.spawn(move || {
            let start = Instant::now();
            while daemon_ref.sim_counter(Counter::SubscriberLagged) == 0 {
                assert!(
                    start.elapsed() < Duration::from_secs(10),
                    "SubscriberLagged never fired under a slow reader"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
        });
    });

    let lagged = daemon.sim_counter(Counter::SubscriberLagged);
    assert!(lagged > 0, "slow subscriber was never shed");
    let stats = daemon.shutdown();
    assert!(
        stats.conservation_holds(),
        "request conservation violated under shedding: {stats:?}"
    );
    println!(
        "telemetry smoke (slow subscriber): {lagged} updates shed, admission live, \
         {} received / {} admitted, conservation OK",
        stats.received, stats.admitted
    );
}

fn main() {
    let root =
        std::env::temp_dir().join(format!("bluescale-telemetry-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let live_dir = root.join("live");
    phase_live(&live_dir);

    let slow_dir = root.join("slow");
    phase_slow_subscriber(&slow_dir);

    let _ = std::fs::remove_dir_all(&root);
    println!("telemetry smoke: all invariants hold");
}
