//! Smoke check: the observability layer must be near-free when detail is
//! off and must never change simulation results.
//!
//! Four configurations drive identical BlueScale traffic (fig6-style
//! synthetic task sets, fixed seed):
//!
//! 1. **baseline** — a hand-rolled client/interconnect loop with no
//!    harness registry at all (the pre-observability cost floor),
//! 2. **disabled** — the `System` harness with detail recording off (the
//!    default for every experiment),
//! 3. **detail** — the harness with typed events + request lifecycles on,
//!    and
//! 4. **streaming** — the harness with a live telemetry pipeline flushing
//!    delta epochs (SLO derivation + JSONL to a temp file) every 1024
//!    cycles.
//!
//! The check asserts bit-identical completion counts across all four and
//! that both the disabled-metrics harness and the streaming harness stay
//! within generous noise bounds of the baseline — the streaming bound
//! pins the invariant that telemetry flushes run between simulation
//! spans, never inside the per-cycle hot loop. Run via
//! `scripts/check.sh`; exits non-zero on failure.
//!
//! Usage: `cargo run --release -p bluescale-bench --bin metrics_overhead -- [--horizon N] [--reps N]`

use bluescale_bench::runner::{build, InterconnectKind};
use bluescale_bench::{arg_u64, arg_usize};
use bluescale_interconnect::client::TrafficGenerator;
use bluescale_interconnect::system::System;
use bluescale_sim::rng::SimRng;
use bluescale_sim::Cycle;
use bluescale_telemetry::{JsonlSink, Pipeline, SloConfig};
use bluescale_workload::synthetic::{generate, SyntheticConfig};
use std::time::Instant;

/// Allowed slowdown of the disabled-metrics harness over the hand-rolled
/// baseline. The harness also keeps the service log and blocking-window
/// accounting the baseline skips, so this is a noise bound, not a tight
/// one; regressions that make counters hot show up far above it.
const MAX_DISABLED_SLOWDOWN: f64 = 3.0;

/// Allowed slowdown of the streaming-telemetry harness over the same
/// baseline. Streaming adds delta extraction + SLO derivation + JSONL
/// serialization at every flush boundary — bounded work per epoch, never
/// per cycle — so it must stay within noise of the detail-off harness.
const MAX_STREAMING_SLOWDOWN: f64 = 4.0;

fn task_sets(clients: usize) -> Vec<bluescale_rt::task::TaskSet> {
    let mut rng = SimRng::seed_from(0x00BE_5EAD);
    generate(&SyntheticConfig::fig6(clients), &mut rng)
}

/// The cost floor: clients + interconnect with no registry, no service
/// log, no response accounting beyond a completion count.
fn run_baseline(horizon: Cycle) -> u64 {
    let sets = task_sets(16);
    let mut ic = build(InterconnectKind::BlueScale, &sets);
    let mut clients: Vec<TrafficGenerator> = sets
        .iter()
        .enumerate()
        .map(|(i, set)| TrafficGenerator::new(i as u32, set))
        .collect();
    let mut completed = 0u64;
    for now in 0..horizon {
        for client in &mut clients {
            client.on_cycle(now);
            if let Some(req) = client.take() {
                if let Err(rejected) = ic.inject(req, now) {
                    client.give_back(rejected);
                }
            }
        }
        ic.step(now);
        while ic.pop_service_event().is_some() {}
        while ic.pop_response().is_some() {
            completed += 1;
        }
    }
    completed
}

fn run_harness(horizon: Cycle, detail: bool) -> u64 {
    let sets = task_sets(16);
    let ic = build(InterconnectKind::BlueScale, &sets);
    let mut system = System::new(ic, &sets);
    if detail {
        system.enable_detail();
    }
    let m = system.run(horizon);
    m.completed()
}

/// The harness with a live telemetry pipeline: 1024-cycle flush period,
/// SLO derivation and a JSONL sink writing to a temp file.
fn run_streaming(horizon: Cycle, path: &std::path::Path) -> u64 {
    let sets = task_sets(16);
    let ic = build(InterconnectKind::BlueScale, &sets);
    let mut system = System::new(ic, &sets);
    let mut pipe = Pipeline::new(1_024, SloConfig::default());
    pipe.add_sink(JsonlSink::create(path).expect("create jsonl sink"));
    system.attach_telemetry(pipe);
    let m = system.run(horizon);
    system.finish_telemetry();
    m.completed()
}

/// Minimum wall time over `reps` runs (the usual noise-robust estimator).
fn min_time<F: FnMut() -> u64>(reps: usize, mut f: F) -> (f64, u64) {
    let mut best = f64::INFINITY;
    let mut result = 0;
    for _ in 0..reps {
        let start = Instant::now();
        result = f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    (best, result)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let horizon = arg_u64(&args, "--horizon", 40_000);
    let reps = arg_usize(&args, "--reps", 5);

    let (t_base, c_base) = min_time(reps, || run_baseline(horizon));
    let (t_off, c_off) = min_time(reps, || run_harness(horizon, false));
    let (t_on, c_on) = min_time(reps, || run_harness(horizon, true));
    let jsonl = std::env::temp_dir().join(format!(
        "bluescale-metrics-overhead-{}.jsonl",
        std::process::id()
    ));
    let (t_stream, c_stream) = min_time(reps, || run_streaming(horizon, &jsonl));
    let _ = std::fs::remove_file(&jsonl);

    println!("# Metrics overhead smoke check ({horizon} cycles, min of {reps} runs)\n");
    println!("| Configuration | Completed | Time (ms) | vs baseline |");
    println!("|---|---:|---:|---:|");
    println!(
        "| hand-rolled baseline | {c_base} | {:.2} | 1.00x |",
        t_base * 1e3
    );
    println!(
        "| harness, detail off | {c_off} | {:.2} | {:.2}x |",
        t_off * 1e3,
        t_off / t_base
    );
    println!(
        "| harness, detail on | {c_on} | {:.2} | {:.2}x |",
        t_on * 1e3,
        t_on / t_base
    );
    println!(
        "| harness, streaming telemetry | {c_stream} | {:.2} | {:.2}x |",
        t_stream * 1e3,
        t_stream / t_base
    );

    let mut failed = false;
    if c_base != c_off || c_off != c_on || c_on != c_stream {
        eprintln!("FAIL: completion counts diverge: {c_base} / {c_off} / {c_on} / {c_stream}");
        failed = true;
    }
    if t_off > t_base * MAX_DISABLED_SLOWDOWN {
        eprintln!(
            "FAIL: disabled-metrics harness {:.2}x over baseline (bound {MAX_DISABLED_SLOWDOWN}x)",
            t_off / t_base
        );
        failed = true;
    }
    if t_stream > t_base * MAX_STREAMING_SLOWDOWN {
        eprintln!(
            "FAIL: streaming harness {:.2}x over baseline (bound {MAX_STREAMING_SLOWDOWN}x)",
            t_stream / t_base
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("\nok: metrics and streaming are observation-only and within noise bounds");
}
