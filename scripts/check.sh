#!/usr/bin/env bash
# Repository check: formatting, lints, and the tier-1 build + test gate.
# Run from the repository root: ./scripts/check.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (root package, tier-1)"
cargo test -q

echo "==> cargo test -q --workspace"
cargo test -q --workspace

echo "==> metrics overhead smoke check"
cargo run --release -q -p bluescale-bench --bin metrics_overhead

echo "==> fault injection smoke check (request conservation)"
cargo run --release -q -p bluescale-bench --bin fault_smoke

echo "==> admission control smoke check (join/update/leave/reject + quarantine)"
cargo run --release -q -p bluescale-bench --bin admission_smoke

echo "==> SoA hot-core smoke check (bit-identical under churn and faults)"
cargo run --release -q -p bluescale-bench --bin soa_smoke

echo "==> sharded-execution smoke check (4 workers, conservation + serial oracle)"
cargo run --release -q -p bluescale-bench --bin shard_smoke

echo "==> control-plane smoke check (faulted clients, conservation + recovery)"
cargo run --release -q -p bluescale-bench --bin ctl_smoke

echo "==> memory-policy smoke check (conservation under deferral, regulated isolation)"
cargo run --release -q -p bluescale-bench --bin mem_policy_smoke

echo "==> streaming-telemetry smoke check (live subscribers, shed-not-backpressure)"
cargo run --release -q -p bluescale-bench --bin telemetry_smoke

echo "==> churn differential (empty-plan inertness, zero disturbance)"
cargo test -q --release --test churn_differential

echo "==> fast-forward differential (bit-identical to per-cycle stepping)"
cargo test -q --release --test fastforward_differential

echo "==> SoA differential (arena engine bit-identical to legacy)"
cargo test -q --release --test soa_differential

echo "==> scalability smoke (both stepping modes, small sweep points)"
cargo test -q --release --test scalability_smoke

echo "==> shard differential (1/2/4/8 workers bit-identical to serial)"
RUST_BACKTRACE=1 cargo test -q --release --test shard_differential -- --test-threads=1

echo "==> memory-policy differential (Unregulated bit-identical; active policies agree)"
RUST_BACKTRACE=1 cargo test -q --release --test mem_policy_differential -- --test-threads=1

echo "==> telemetry differential (streaming invisible + JSONL fold lossless)"
RUST_BACKTRACE=1 cargo test -q --release --test telemetry_differential -- --test-threads=1

echo "All checks passed."
