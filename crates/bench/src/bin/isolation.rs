//! Runs the temporal-isolation extension (rogue client flooding).
//!
//! Usage:
//! `cargo run --release -p bluescale-bench --bin isolation -- [--clients N] [--trials N] [--factor N] [--json DIR]`
//!
//! With `--json DIR`, a metrics snapshot `isolation_metrics.json` is
//! written (series indices follow `InterconnectKind::ALL` order).

use bluescale_bench::isolation::{render, run_with_registry, IsolationConfig};
use bluescale_bench::{arg_u64, arg_usize, arg_value, export};
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = IsolationConfig::default();
    config.clients = arg_usize(&args, "--clients", config.clients);
    config.trials = arg_u64(&args, "--trials", config.trials);
    config.horizon = arg_u64(&args, "--horizon", config.horizon);
    config.misbehaviour_factor = arg_u64(&args, "--factor", config.misbehaviour_factor);
    let (rows, mut registry) = run_with_registry(&config);
    println!("{}", render(&config, &rows));
    if let Some(dir) = arg_value(&args, "--json") {
        let path = Path::new(&dir).join("isolation_metrics.json");
        match export::write_snapshot(&path, &mut registry) {
            Ok(()) => eprintln!("wrote {}", path.display()),
            Err(e) => eprintln!("failed to write {}: {e}", path.display()),
        }
    }
}
