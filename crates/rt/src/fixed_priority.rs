//! Fixed-priority schedulability on a periodic resource.
//!
//! The paper's clients schedule their requests with (G)EDF, but many
//! real-time stacks run fixed-priority (rate-/deadline-monotonic)
//! schedulers. This module provides the FP counterpart of the EDF
//! analysis in [`crate::schedulability`], following Shin & Lee's
//! compositional framework: task `τᵢ` is schedulable on a VE iff some
//! `t ≤ Dᵢ` satisfies `rbfᵢ(t) ≤ sbf(t)`, where the *request bound
//! function*
//!
//! ```text
//! rbfᵢ(t) = Cᵢ + Σ_{j ∈ hp(i)} ⌈t/Tⱼ⌉ · Cⱼ
//! ```
//!
//! counts the task's own work plus all higher-priority interference
//! released in `[0, t)`. Priorities are deadline-monotonic (optimal among
//! fixed-priority assignments for constrained deadlines).

use crate::interface::MAX_PERIOD_CANDIDATES;
use crate::supply::PeriodicResource;
use crate::task::{Task, TaskSet};
use crate::{Error, Time};

/// The Liu & Layland utilization bound for `n` tasks under rate-monotonic
/// priorities on a dedicated processor: `n(2^{1/n} − 1)`. Any implicit-
/// deadline set with `U ≤ bound` is RM-schedulable (sufficient only).
///
/// # Example
///
/// ```
/// use bluescale_rt::fixed_priority::liu_layland_bound;
///
/// assert_eq!(liu_layland_bound(1), 1.0);
/// assert!((liu_layland_bound(2) - 0.8284).abs() < 1e-3);
/// // The bound decreases toward ln 2 ≈ 0.693.
/// assert!(liu_layland_bound(100) > 0.69);
/// ```
pub fn liu_layland_bound(n: usize) -> f64 {
    if n == 0 {
        return 1.0;
    }
    let n = n as f64;
    n * (2f64.powf(1.0 / n) - 1.0)
}

/// Tasks of `set` ordered by deadline-monotonic priority (shorter relative
/// deadline = higher priority; ties broken by id for determinism).
pub fn deadline_monotonic_order(set: &TaskSet) -> Vec<Task> {
    let mut tasks: Vec<Task> = set.iter().copied().collect();
    tasks.sort_by_key(|t| (t.deadline(), t.id()));
    tasks
}

/// Request bound function of the task at `index` in a priority-ordered
/// slice: its own WCET plus all higher-priority releases in `[0, t)`.
///
/// # Panics
///
/// Panics if `index` is out of bounds.
pub fn rbf(ordered: &[Task], index: usize, t: Time) -> Time {
    let own = ordered[index].wcet();
    let interference: Time = ordered[..index]
        .iter()
        .map(|hp| t.div_ceil(hp.period()) * hp.wcet())
        .sum();
    own + interference
}

/// Worst-case response time of the task at `index` under deadline-monotonic
/// fixed priorities on `resource`: the smallest `t` with
/// `rbfᵢ(t) ≤ sbf(t)`, or `None` if no such `t ≤ Dᵢ` exists (deadline
/// miss).
pub fn response_time(ordered: &[Task], index: usize, resource: &PeriodicResource) -> Option<Time> {
    let deadline = ordered[index].deadline();
    // Discrete time: the response time is the first instant at which the
    // guaranteed supply covers the accumulated demand. rbf changes only at
    // higher-priority release instants, but the supply grows between them,
    // so scan every integer t (deadlines are small in this model).
    (1..=deadline).find(|&t| rbf(ordered, index, t) <= resource.sbf(t))
}

/// Whether `set` is schedulable under deadline-monotonic fixed priorities
/// on `resource`.
///
/// # Example
///
/// ```
/// use bluescale_rt::task::{Task, TaskSet};
/// use bluescale_rt::supply::PeriodicResource;
/// use bluescale_rt::fixed_priority::is_schedulable_fp;
///
/// let set = TaskSet::new(vec![Task::new(0, 20, 2)?, Task::new(1, 50, 5)?])?;
/// assert!(is_schedulable_fp(&set, &PeriodicResource::new(4, 2).expect("valid")));
/// assert!(!is_schedulable_fp(&set, &PeriodicResource::new(40, 10).expect("valid")));
/// # Ok::<(), bluescale_rt::Error>(())
/// ```
pub fn is_schedulable_fp(set: &TaskSet, resource: &PeriodicResource) -> bool {
    let ordered = deadline_monotonic_order(set);
    (0..ordered.len()).all(|i| response_time(&ordered, i, resource).is_some())
}

/// Minimum budget `Θ` making `set` FP-schedulable on `period`; `None` if
/// even the dedicated budget fails.
pub fn min_budget_for_period_fp(set: &TaskSet, period: Time) -> Option<Time> {
    let full = PeriodicResource::new(period, period).expect("Θ=Π is valid");
    if !is_schedulable_fp(set, &full) {
        return None;
    }
    let mut lo = ((set.utilization() * period as f64).ceil() as Time).max(1);
    let mut hi = period;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        let r = PeriodicResource::new(period, mid).expect("1 ≤ mid ≤ Π");
        if is_schedulable_fp(set, &r) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Some(lo)
}

/// Minimum-bandwidth interface for a VE whose tasks run under
/// deadline-monotonic fixed priorities — the FP counterpart of
/// [`crate::interface::select_interface`].
///
/// # Errors
///
/// Returns [`Error::NoFeasibleInterface`] for an empty set or when no
/// candidate period admits the set.
pub fn select_interface_fp(set: &TaskSet) -> Result<PeriodicResource, Error> {
    if set.is_empty() {
        return Err(Error::NoFeasibleInterface);
    }
    let max_period = set
        .min_deadline()
        .expect("non-empty set")
        .clamp(1, MAX_PERIOD_CANDIDATES);
    let mut best: Option<PeriodicResource> = None;
    for period in 1..=max_period {
        let Some(budget) = min_budget_for_period_fp(set, period) else {
            continue;
        };
        let candidate = PeriodicResource::new(period, budget).expect("budget ≤ period");
        best = match best {
            None => Some(candidate),
            Some(b) if candidate.bandwidth_lt(&b) => Some(candidate),
            Some(b) => Some(b),
        };
    }
    best.ok_or(Error::NoFeasibleInterface)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedulability::is_schedulable;

    fn set(specs: &[(u64, u64)]) -> TaskSet {
        TaskSet::new(
            specs
                .iter()
                .enumerate()
                .map(|(i, &(t, c))| Task::new(i as u32, t, c).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn dm_order_sorts_by_deadline() {
        let s = TaskSet::new(vec![
            Task::new(0, 50, 1).unwrap(),
            Task::with_deadline(1, 100, 20, 2).unwrap(),
            Task::new(2, 30, 1).unwrap(),
        ])
        .unwrap();
        let ordered = deadline_monotonic_order(&s);
        let ids: Vec<u32> = ordered.iter().map(Task::id).collect();
        assert_eq!(ids, vec![1, 2, 0]); // deadlines 20, 30, 50
    }

    #[test]
    fn rbf_counts_own_plus_interference() {
        let s = set(&[(10, 2), (50, 5)]);
        let ordered = deadline_monotonic_order(&s);
        // Highest priority (T=10, C=2): rbf = 2 regardless of t.
        assert_eq!(rbf(&ordered, 0, 1), 2);
        assert_eq!(rbf(&ordered, 0, 100), 2);
        // Lower priority (T=50, C=5): own 5 + ⌈t/10⌉·2.
        assert_eq!(rbf(&ordered, 1, 1), 5 + 2);
        assert_eq!(rbf(&ordered, 1, 10), 5 + 2);
        assert_eq!(rbf(&ordered, 1, 11), 5 + 4);
        assert_eq!(rbf(&ordered, 1, 50), 5 + 10);
    }

    #[test]
    fn response_time_on_dedicated_resource() {
        // Classic single-processor response times.
        let s = set(&[(10, 2), (50, 5)]);
        let ordered = deadline_monotonic_order(&s);
        let r = PeriodicResource::dedicated(1);
        assert_eq!(response_time(&ordered, 0, &r), Some(2));
        // Low task: 5 own + 2 interference = 7 by t = 7 (one hp release).
        assert_eq!(response_time(&ordered, 1, &r), Some(7));
    }

    #[test]
    fn response_time_accounts_for_blackout() {
        let s = set(&[(20, 2)]);
        let ordered = deadline_monotonic_order(&s);
        // Π=8, Θ=4: worst blackout 2(Π−Θ) = 8; sbf first reaches 2 at…
        let r = PeriodicResource::new(8, 4).unwrap();
        let rt = response_time(&ordered, 0, &r).expect("schedulable");
        assert!(rt > 2, "resource blackout must delay completion");
        assert!(rt <= 20);
        assert_eq!(r.sbf(rt), 2);
    }

    #[test]
    fn fp_never_beats_edf_admission() {
        // EDF is optimal: anything FP admits, EDF admits too.
        let sets = [
            set(&[(10, 2), (25, 4)]),
            set(&[(8, 1), (12, 3), (30, 5)]),
            set(&[(5, 2)]),
        ];
        let resources = [
            PeriodicResource::new(2, 1).unwrap(),
            PeriodicResource::new(5, 3).unwrap(),
            PeriodicResource::new(10, 7).unwrap(),
        ];
        for s in &sets {
            for r in &resources {
                if is_schedulable_fp(s, r) {
                    assert!(
                        is_schedulable(s, r),
                        "FP admitted {s:?} on {r:?} but EDF rejected"
                    );
                }
            }
        }
    }

    #[test]
    fn fp_rejects_what_edf_accepts_sometimes() {
        // A classic EDF-yes/FP-no instance (non-harmonic, U ≈ 0.97):
        // under EDF on a dedicated CPU it is schedulable; under DM the
        // low-priority task misses (rbf(7) = 4 + 2·2 = 8 > 7).
        let s = set(&[(5, 2), (7, 4)]);
        let r = PeriodicResource::dedicated(1);
        assert!(is_schedulable(&s, &r));
        assert!(!is_schedulable_fp(&s, &r));
    }

    #[test]
    fn min_budget_fp_is_minimal() {
        let s = set(&[(20, 2), (60, 6)]);
        let b = min_budget_for_period_fp(&s, 6).expect("feasible");
        let chosen = PeriodicResource::new(6, b).unwrap();
        assert!(is_schedulable_fp(&s, &chosen));
        if b > 1 {
            let smaller = PeriodicResource::new(6, b - 1).unwrap();
            assert!(!is_schedulable_fp(&s, &smaller));
        }
    }

    #[test]
    fn select_interface_fp_covers_utilization() {
        let s = set(&[(40, 4), (100, 10)]);
        let iface = select_interface_fp(&s).expect("feasible");
        assert!(iface.bandwidth() >= s.utilization() - 1e-12);
        assert!(is_schedulable_fp(&s, &iface));
        // And costs at least as much bandwidth as the EDF interface.
        let edf = crate::interface::select_interface(
            &s,
            &crate::interface::SelectionContext::isolated(&s),
        )
        .expect("feasible");
        assert!(
            edf.bandwidth() <= iface.bandwidth() + 1e-12,
            "EDF {} vs FP {}",
            edf.bandwidth(),
            iface.bandwidth()
        );
    }

    #[test]
    fn liu_layland_implies_rta_admission() {
        // Any implicit-deadline set under the LL bound must pass the
        // response-time analysis on a dedicated resource.
        let s = set(&[(10, 2), (20, 4), (40, 4)]); // U = 0.5 ≤ LL(3)
        assert!(s.utilization() <= liu_layland_bound(3));
        assert!(is_schedulable_fp(&s, &PeriodicResource::dedicated(1)));
    }

    #[test]
    fn liu_layland_limits() {
        assert!((liu_layland_bound(1) - 1.0).abs() < 1e-12);
        let mut prev = 1.0;
        for n in 2..50 {
            let b = liu_layland_bound(n);
            assert!(b < prev, "bound must decrease");
            assert!(b > std::f64::consts::LN_2, "bound stays above ln 2");
            prev = b;
        }
    }

    #[test]
    fn empty_set_has_no_interface() {
        assert_eq!(
            select_interface_fp(&TaskSet::empty()).unwrap_err(),
            Error::NoFeasibleInterface
        );
    }
}
